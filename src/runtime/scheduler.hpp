// The sagesim task-graph runtime: one work-stealing scheduler under every
// execution layer in the repo.
//
//  * gpusim::Executor::parallel_for submits chunk tasks here and waits on a
//    condition variable;
//  * dflow::Cluster owns a rank-pinned instance (one lane per simulated
//    GPU) and routes submit/map/run_on_all through it;
//  * core::Workflow schedules DAG stages on the process-shared instance.
//
// Scheduling model: dependency counting (a task becomes *ready* only when
// every dependency has completed — workers never block on dependencies),
// then placement:
//
//  * lane >= 0  — pinned: only worker `lane` executes it, FIFO per lane.
//    Pinned tasks model rank/device affinity (dflow semantics) and are
//    never stolen.
//  * lane == -1 — stealable: lands on the submitting worker's local deque
//    (or round-robin when submitted from outside the pool); idle workers
//    first drain their own deque front-to-back, then steal from the *back*
//    of a victim's deque.
//
// Dependency failures propagate without running the dependent; cancellation
// completes a not-yet-running task with TaskCancelled.  Every named task
// emits a host-time trace span into the scheduler's prof::Timeline.
#pragma once

#include <any>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "prof/trace.hpp"
#include "runtime/fault.hpp"
#include "runtime/future.hpp"

namespace sagesim::runtime {

struct SubmitOptions {
  std::string name;                ///< trace/span label ("" = untraced)
  int lane{-1};                    ///< pinned worker, -1 == stealable
  std::vector<AnyFuture> deps;     ///< must complete before the task runs
  /// Wall-clock budget from submission; a task popped past its deadline
  /// fails with DeadlineExceeded (retryable) without running.  0 == none.
  double timeout_s{0.0};
};

/// Resolves a requested worker count: @p requested if > 0, else the
/// SAGESIM_WORKERS environment variable if set and positive, else
/// std::thread::hardware_concurrency() (at least 1).
unsigned resolve_worker_count(unsigned requested);

class Scheduler {
 public:
  /// Creates a pool with resolve_worker_count(@p workers) threads.
  explicit Scheduler(unsigned workers = 0);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  unsigned worker_count() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Process-shared pool (sized by SAGESIM_WORKERS / hardware).
  static Scheduler& shared();

  /// Index of the calling thread within *this* scheduler's pool, or -1 when
  /// called from outside it.
  int current_worker() const;

  /// Submits a type-erased task; returns its future.  Throws
  /// std::out_of_range when opts.lane >= worker_count().
  AnyFuture submit_any(SubmitOptions opts, std::function<std::any()> fn);

  /// Typed submit: wraps @p fn (no arguments) and returns Future<R>.
  template <typename F>
  auto submit(std::string name, F&& fn, std::vector<AnyFuture> deps = {},
              int lane = -1, double timeout_s = 0.0) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    SubmitOptions opts;
    opts.name = std::move(name);
    opts.lane = lane;
    opts.deps = std::move(deps);
    opts.timeout_s = timeout_s;
    if constexpr (std::is_void_v<R>) {
      return Future<void>(submit_any(
          std::move(opts),
          [f = std::forward<F>(fn)]() mutable -> std::any {
            f();
            return {};
          }));
    } else {
      return Future<R>(submit_any(
          std::move(opts),
          [f = std::forward<F>(fn)]() mutable -> std::any {
            return std::any(f());
          }));
    }
  }

  /// Blocks until every task submitted so far has completed.
  void wait_idle();

  /// Tasks that have reached a terminal state (ran, failed, dep-skipped or
  /// cancelled).
  std::size_t tasks_completed() const {
    std::lock_guard lock(mutex_);
    return completed_;
  }

  /// Host-time spans of executed named tasks (kind kScheduler, counter
  /// "worker"); timestamps are seconds since scheduler construction.
  prof::Timeline& timeline() { return timeline_; }

  /// Attaches (or detaches, with nullptr) a fault injector.  Each subsequent
  /// submit consults injector->plan() in submission order; the decision is
  /// baked into the task, so execution-time interleaving cannot perturb a
  /// seeded fault pattern.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector) {
    std::lock_guard lock(mutex_);
    fault_injector_ = std::move(injector);
  }
  std::shared_ptr<FaultInjector> fault_injector() const {
    std::lock_guard lock(mutex_);
    return fault_injector_;
  }

 private:
  friend void detail::complete_task(std::shared_ptr<detail::TaskState>,
                                    std::any, std::exception_ptr);

  struct Worker {
    std::deque<std::shared_ptr<detail::TaskState>> pinned;  ///< owner-only
    std::deque<std::shared_ptr<detail::TaskState>> local;   ///< stealable
  };

  void worker_loop(unsigned id);
  bool try_pop(unsigned id, std::shared_ptr<detail::TaskState>& out);
  void run_task(const std::shared_ptr<detail::TaskState>& task, unsigned id);

  /// Called by the dependency machinery when @p task's last dependency
  /// resolved; enqueues it (or finishes it immediately on dep failure or
  /// cancellation).
  void make_ready(const std::shared_ptr<detail::TaskState>& task);

  /// Bookkeeping when an owned task reaches a terminal state.
  void on_task_finished();

  mutable std::mutex mutex_;
  std::condition_variable cv_;       ///< workers sleep here
  std::condition_variable idle_cv_;  ///< wait_idle sleeps here
  std::vector<Worker> workers_;      ///< queues, guarded by mutex_
  std::vector<std::thread> threads_;
  bool stop_{false};
  std::size_t pending_{0};    ///< submitted, not yet terminal
  std::size_t completed_{0};  ///< reached a terminal state
  std::size_t next_spot_{0};  ///< round-robin for external submits
  std::shared_ptr<FaultInjector> fault_injector_;  ///< guarded by mutex_

  prof::Timeline timeline_;
  std::chrono::steady_clock::time_point epoch_{
      std::chrono::steady_clock::now()};
};

/// Future that completes once every input completes, carrying their values
/// as std::vector<std::any> (in input order).  Fails with the first
/// dependency failure.  The join task is stealable and runs on @p sched.
Future<std::vector<std::any>> when_all(Scheduler& sched,
                                       std::vector<AnyFuture> futures,
                                       std::string name = "when_all");

// --- Future<T>::then — declared in future.hpp, needs Scheduler ------------

namespace detail {
/// Owner scheduler of @p f's task, or the process-shared pool for bare
/// futures.
inline Scheduler& continuation_scheduler(const AnyFuture& f) {
  Scheduler* owner = f.state()->owner;
  return owner != nullptr ? *owner : Scheduler::shared();
}
}  // namespace detail

template <typename T>
template <typename F>
auto Future<T>::then(std::string name, F&& fn) const {
  auto& sched = detail::continuation_scheduler(erased_);
  return sched.submit(
      std::move(name),
      [self = erased_, f = std::forward<F>(fn)]() mutable {
        return f(std::any_cast<T>(self.get_any()));
      },
      {erased_});
}

template <typename F>
auto Future<void>::then(std::string name, F&& fn) const {
  auto& sched = detail::continuation_scheduler(erased_);
  return sched.submit(
      std::move(name),
      [f = std::forward<F>(fn)]() mutable { return f(); }, {erased_});
}

}  // namespace sagesim::runtime
