#include "runtime/job_control.hpp"

#include <algorithm>
#include <utility>

namespace sagesim::runtime {

void JobControl::attach(const AnyFuture& f) {
  bool cancel_now = false;
  {
    std::lock_guard lock(mutex_);
    if (cancelled_) {
      cancel_now = true;
    } else {
      // Compact completed futures so a long-lived job's control holds only
      // in-flight work, not its whole history.
      if (attached_.size() >= 64 && attached_.size() % 64 == 0) {
        attached_.erase(std::remove_if(attached_.begin(), attached_.end(),
                                       [](const AnyFuture& a) {
                                         return a.ready();
                                       }),
                        attached_.end());
      }
      attached_.push_back(f);
    }
  }
  if (cancel_now) AnyFuture(f).cancel();
}

std::size_t JobControl::cancel(std::string reason) {
  std::vector<AnyFuture> to_cancel;
  {
    std::lock_guard lock(mutex_);
    if (!cancelled_) {
      cancelled_ = true;
      reason_ = std::move(reason);
    }
    to_cancel.swap(attached_);
  }
  std::size_t observed = 0;
  for (auto& f : to_cancel)
    if (f.cancel().ok()) ++observed;
  return observed;
}

bool JobControl::cancel_requested() const {
  std::lock_guard lock(mutex_);
  return cancelled_;
}

std::string JobControl::cancel_reason() const {
  std::lock_guard lock(mutex_);
  return reason_;
}

void JobControl::set_deadline_s(double seconds) {
  std::lock_guard lock(mutex_);
  deadline_s_ = seconds > 0.0 ? seconds : 0.0;
}

double JobControl::deadline_s() const {
  std::lock_guard lock(mutex_);
  return deadline_s_;
}

double JobControl::effective_timeout_s(double task_timeout_s) const {
  const double job = deadline_s();
  if (job <= 0.0) return task_timeout_s;
  if (task_timeout_s <= 0.0) return job;
  return std::min(task_timeout_s, job);
}

void JobControl::route_fault(const Status& status) {
  if (status.ok()) return;
  std::lock_guard lock(mutex_);
  if (status.retryable()) {
    ++retryable_faults_;
    return;
  }
  if (terminal_fault_.ok()) terminal_fault_ = status;
}

Status JobControl::terminal_fault() const {
  std::lock_guard lock(mutex_);
  return terminal_fault_;
}

std::size_t JobControl::retryable_faults() const {
  std::lock_guard lock(mutex_);
  return retryable_faults_;
}

std::size_t JobControl::attached_count() const {
  std::lock_guard lock(mutex_);
  return attached_.size();
}

}  // namespace sagesim::runtime
