#include "runtime/fault.hpp"

#include <cstdlib>

namespace sagesim::runtime {

FaultConfig FaultConfig::from_env() {
  FaultConfig cfg;
  const char* seed = std::getenv("SAGESIM_FAULT_SEED");
  if (seed == nullptr) return cfg;
  char* end = nullptr;
  cfg.seed = std::strtoull(seed, &end, 10);
  if (end == seed) return cfg;  // unparsable: leave faults off
  cfg.preempt_probability = 0.05;
  if (const char* rate = std::getenv("SAGESIM_FAULT_RATE")) {
    char* rate_end = nullptr;
    const double parsed = std::strtod(rate, &rate_end);
    if (rate_end != rate && parsed >= 0.0 && parsed <= 1.0)
      cfg.preempt_probability = parsed;
  }
  return cfg;
}

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)), engine_(config_.seed) {}

FaultDecision FaultInjector::plan(const std::string& task_name) {
  FaultDecision decision;
  if (!config_.name_filter.empty() &&
      task_name.find(config_.name_filter) == std::string::npos)
    return decision;

  std::lock_guard lock(mutex_);
  // One draw per matching task: [0, p) preempts, [p, p+q) delays.  A single
  // uniform keeps the decision sequence stable when probabilities change.
  const double u =
      std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  if (u < config_.preempt_probability &&
      preemptions_ < config_.max_preemptions) {
    decision.preempt = true;
    ++preemptions_;
  } else if (u < config_.preempt_probability + config_.delay_probability) {
    decision.delay_ms = config_.delay_ms;
    ++delays_;
  }
  return decision;
}

std::size_t FaultInjector::preemptions() const {
  std::lock_guard lock(mutex_);
  return preemptions_;
}

std::size_t FaultInjector::delays() const {
  std::lock_guard lock(mutex_);
  return delays_;
}

}  // namespace sagesim::runtime
