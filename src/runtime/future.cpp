#include "runtime/future.hpp"

// complete_task lives in scheduler.cpp (it drives scheduler bookkeeping);
// this TU anchors the header and keeps it compiling standalone.
