#include "graph/prefetch.hpp"

#include <stdexcept>
#include <utility>

#include "gpusim/device.hpp"
#include "runtime/scheduler.hpp"

namespace sagesim::graph {

PrefetchPipeline::PrefetchPipeline(NeighborSampler& sampler, SeedFn seeds,
                                   std::uint64_t epochs,
                                   std::uint64_t batches_per_epoch,
                                   std::uint64_t start_batch,
                                   gpu::Device* device,
                                   runtime::Scheduler& scheduler,
                                   PrefetchOptions options)
    : sampler_(&sampler),
      seeds_(std::move(seeds)),
      batches_per_epoch_(batches_per_epoch),
      total_(epochs * batches_per_epoch),
      device_(device),
      scheduler_(&scheduler),
      options_(options),
      next_submit_(start_batch),
      next_out_(start_batch) {
  if (options_.depth == 0)
    throw std::invalid_argument("PrefetchPipeline: depth must be >= 1");
  if (!seeds_)
    throw std::invalid_argument("PrefetchPipeline: seed function must be set");
  if (start_batch > total_)
    throw std::invalid_argument("PrefetchPipeline: start_batch out of range");
  if (device_ != nullptr && options_.enabled)
    transfer_stream_ = device_->create_stream();
  if (options_.enabled) fill();
}

PrefetchPipeline::~PrefetchPipeline() {
  for (auto& slot : in_flight_) slot.wait();
}

Expected<StagedBatch> PrefetchPipeline::produce(std::uint64_t flat) {
  const std::uint64_t epoch = flat / batches_per_epoch_;
  const std::uint64_t index = flat % batches_per_epoch_;
  Expected<MiniBatch> batch =
      sampler_->sample(epoch, index, seeds_(epoch, index));
  if (!batch) return batch.status();
  StagedBatch staged;
  staged.batch = std::move(*batch);
  if (device_ != nullptr) {
    // Lookahead staging rides the dedicated transfer stream so the PCIe
    // engine runs concurrently with stream-0 kernels; the synchronous
    // control stages on stream 0, serializing copy after compute.
    const int stream = options_.enabled ? transfer_stream_ : 0;
    const Status s = staged.batch.to_device(*device_, stream);
    if (!s.ok()) return s;
    staged.on_device = true;
    if (options_.enabled) staged.ready = device_->record_event(stream);
  }
  return staged;
}

void PrefetchPipeline::fill() {
  while (in_flight_.size() < options_.depth && next_submit_ < total_) {
    const std::uint64_t flat = next_submit_++;
    in_flight_.push_back(scheduler_->submit(
        "prefetch_batch",
        [this, flat]() -> std::shared_ptr<Expected<StagedBatch>> {
          return std::make_shared<Expected<StagedBatch>>(produce(flat));
        }));
  }
}

Expected<StagedBatch> PrefetchPipeline::next() {
  if (next_out_ >= total_)
    return Status::out_of_range("PrefetchPipeline: schedule exhausted");
  if (!options_.enabled) {
    // Synchronous control: sample and stage inline, nothing in flight.
    const std::uint64_t flat = next_out_++;
    return produce(flat);
  }
  Slot slot = std::move(in_flight_.front());
  in_flight_.pop_front();
  ++next_out_;
  fill();  // top the pipeline back up before blocking on the head
  const Status s = slot.wait_status();
  if (!s.ok()) return s;
  return std::move(*slot.get());
}

}  // namespace sagesim::graph
