#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace sagesim::graph {

namespace {

/// Draws @p count distinct node pairs via @p draw_pair (rejection on
/// duplicates and self-loops), appending to @p edges.
template <typename DrawPair>
void sample_distinct_pairs(std::size_t count,
                           std::vector<std::pair<NodeId, NodeId>>& edges,
                           std::set<std::pair<NodeId, NodeId>>& seen,
                           DrawPair&& draw_pair) {
  std::size_t added = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = count * 20 + 100;
  while (added < count && attempts < max_attempts) {
    ++attempts;
    auto [u, v] = draw_pair();
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!seen.insert({u, v}).second) continue;
    edges.emplace_back(u, v);
    ++added;
  }
}

}  // namespace

Dataset planted_partition(const PlantedPartitionParams& params,
                          stats::Rng& rng) {
  if (params.num_classes < 2)
    throw std::invalid_argument("planted_partition: need >= 2 classes");
  if (params.num_nodes < static_cast<std::size_t>(params.num_classes))
    throw std::invalid_argument("planted_partition: fewer nodes than classes");

  const std::size_t n = params.num_nodes;
  const int k = params.num_classes;

  Dataset ds;
  ds.num_classes = k;
  ds.labels.resize(n);

  // Community assignment: balanced, then shuffled so node ids carry no
  // community information (matters for the random-partition baseline).
  const auto perm = rng.permutation(n);
  std::vector<std::vector<NodeId>> members(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < n; ++i) {
    const int c = static_cast<int>(i % static_cast<std::size_t>(k));
    ds.labels[perm[i]] = c;
    members[static_cast<std::size_t>(c)].push_back(
        static_cast<NodeId>(perm[i]));
  }

  // Edge sampling by expected count per block pair (G(n, m)-style SBM).
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::set<std::pair<NodeId, NodeId>> seen;
  for (int c = 0; c < k; ++c) {
    const auto& m = members[static_cast<std::size_t>(c)];
    const double pairs =
        0.5 * static_cast<double>(m.size()) * (static_cast<double>(m.size()) - 1.0);
    const auto count =
        static_cast<std::size_t>(pairs * params.intra_edge_prob + 0.5);
    sample_distinct_pairs(count, edges, seen, [&] {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(m.size()) - 1));
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(m.size()) - 1));
      return std::pair<NodeId, NodeId>{m[i], m[j]};
    });
  }
  for (int c1 = 0; c1 < k; ++c1) {
    for (int c2 = c1 + 1; c2 < k; ++c2) {
      const auto& ma = members[static_cast<std::size_t>(c1)];
      const auto& mb = members[static_cast<std::size_t>(c2)];
      const double pairs =
          static_cast<double>(ma.size()) * static_cast<double>(mb.size());
      const auto count =
          static_cast<std::size_t>(pairs * params.inter_edge_prob + 0.5);
      sample_distinct_pairs(count, edges, seen, [&] {
        const auto i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ma.size()) - 1));
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(mb.size()) - 1));
        return std::pair<NodeId, NodeId>{ma[i], mb[j]};
      });
    }
  }
  ds.graph = CsrGraph::from_edges(n, edges);

  // Features: noisy community signature.  Each class owns a contiguous slice
  // of the feature vector; members get +1 on their slice plus Gaussian noise
  // everywhere.
  ds.features = tensor::Tensor(n, params.feature_dim);
  const std::size_t slice =
      std::max<std::size_t>(1, params.feature_dim / static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(ds.labels[i]);
    for (std::size_t f = 0; f < params.feature_dim; ++f) {
      double v = rng.normal(0.0, params.feature_noise_sd);
      if (f >= c * slice && f < (c + 1) * slice) v += 1.0;
      ds.features.at(i, f) = static_cast<float>(v);
    }
  }

  // Train/test split.
  const auto split_perm = rng.permutation(n);
  const auto train_count =
      static_cast<std::size_t>(params.train_fraction * static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    if (i < train_count)
      ds.train_nodes.push_back(static_cast<NodeId>(split_perm[i]));
    else
      ds.test_nodes.push_back(static_cast<NodeId>(split_perm[i]));
  }
  return ds;
}

Dataset pubmed_like(stats::Rng& rng, double scale) {
  if (scale <= 0.0) throw std::invalid_argument("pubmed_like: scale <= 0");
  PlantedPartitionParams p;
  p.num_nodes = static_cast<std::size_t>(19717.0 * scale);
  p.num_classes = 3;
  p.feature_dim = 500;
  // Target mean degree ~4.5 (Sen et al. 2008): 85% of edges intra-community.
  const double n = static_cast<double>(p.num_nodes);
  const double nc = n / 3.0;
  const double target_edges = 4.5 * n / 2.0;
  p.intra_edge_prob = (0.85 * target_edges / 3.0) / (0.5 * nc * (nc - 1.0));
  p.inter_edge_prob = (0.15 * target_edges / 3.0) / (nc * nc);
  p.feature_noise_sd = 1.0;
  p.train_fraction = 0.6;
  return planted_partition(p, rng);
}

Dataset reddit_like(stats::Rng& rng, double scale) {
  if (scale <= 0.0) throw std::invalid_argument("reddit_like: scale <= 0");
  PlantedPartitionParams p;
  p.num_nodes = static_cast<std::size_t>(232965.0 * scale);
  p.num_classes = 41;
  if (p.num_nodes < static_cast<std::size_t>(2 * p.num_classes))
    throw std::invalid_argument(
        "reddit_like: scale too small for 41 communities");
  p.feature_dim = 602;
  // Mean degree ~100 in the original; keep ~80% of edges intra-community.
  const double n = static_cast<double>(p.num_nodes);
  const double nc = n / 41.0;
  const double target_edges = 100.0 * n / 2.0;
  p.intra_edge_prob = (0.8 * target_edges / 41.0) / (0.5 * nc * (nc - 1.0));
  p.inter_edge_prob =
      (0.2 * target_edges) / (0.5 * 41.0 * 40.0 * nc * nc);
  p.feature_noise_sd = 1.0;
  p.train_fraction = 0.65;
  return planted_partition(p, rng);
}

CsrGraph rmat(std::size_t scale, std::size_t edge_factor, stats::Rng& rng,
              double a, double b, double c) {
  if (scale == 0 || scale > 24)
    throw std::invalid_argument("rmat: scale must be in [1, 24]");
  const double d = 1.0 - a - b - c;
  if (d < 0.0) throw std::invalid_argument("rmat: a + b + c must be <= 1");
  const std::size_t n = 1ull << scale;
  const std::size_t target = n * edge_factor;

  std::vector<std::pair<NodeId, NodeId>> edges;
  std::set<std::pair<NodeId, NodeId>> seen;
  sample_distinct_pairs(target, edges, seen, [&] {
    NodeId u = 0, v = 0;
    for (std::size_t bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // upper-left: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    return std::pair<NodeId, NodeId>{u, v};
  });
  return CsrGraph::from_edges(n, edges);
}

CsrGraph grid_2d(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("grid_2d: empty grid");
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return CsrGraph::from_edges(rows * cols, edges);
}

CsrGraph erdos_renyi(std::size_t n, double p, stats::Rng& rng) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("erdos_renyi: p outside [0, 1]");
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (rng.bernoulli(p)) edges.emplace_back(u, v);
  return CsrGraph::from_edges(n, edges);
}

}  // namespace sagesim::graph
