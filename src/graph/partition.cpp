#include "graph/partition.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sagesim::graph {

std::vector<std::vector<NodeId>> Partition::part_nodes() const {
  std::vector<std::vector<NodeId>> parts(static_cast<std::size_t>(num_parts));
  for (NodeId v = 0; v < assignment.size(); ++v) {
    const int p = assignment[v];
    if (p < 0 || p >= num_parts)
      throw std::logic_error("Partition: assignment outside [0, k)");
    parts[static_cast<std::size_t>(p)].push_back(v);
  }
  return parts;
}

PartitionQuality evaluate_partition(const CsrGraph& g, const Partition& p) {
  if (p.assignment.size() != g.num_nodes())
    throw std::invalid_argument(
        "evaluate_partition: assignment size != node count");
  if (p.num_parts <= 0)
    throw std::invalid_argument("evaluate_partition: num_parts <= 0");

  PartitionQuality q;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (NodeId v : g.neighbors(u))
      if (u < v && p.assignment[u] != p.assignment[v]) ++q.edge_cut;
  q.cut_fraction = g.num_edges() > 0
                       ? static_cast<double>(q.edge_cut) /
                             static_cast<double>(g.num_edges())
                       : 0.0;

  std::vector<std::size_t> sizes(static_cast<std::size_t>(p.num_parts), 0);
  for (int a : p.assignment) ++sizes[static_cast<std::size_t>(a)];
  q.largest_part = *std::max_element(sizes.begin(), sizes.end());
  q.smallest_part = *std::min_element(sizes.begin(), sizes.end());
  const double ideal = static_cast<double>(g.num_nodes()) /
                       static_cast<double>(p.num_parts);
  q.balance = ideal > 0.0 ? static_cast<double>(q.largest_part) / ideal : 1.0;
  return q;
}

Partition random_partition(const CsrGraph& g, int k, stats::Rng& rng) {
  if (k <= 0) throw std::invalid_argument("random_partition: k <= 0");
  Partition p;
  p.num_parts = k;
  p.assignment.resize(g.num_nodes());
  // Balanced random: shuffle then deal round-robin.
  const auto perm = rng.permutation(g.num_nodes());
  for (std::size_t i = 0; i < perm.size(); ++i)
    p.assignment[perm[i]] = static_cast<int>(i % static_cast<std::size_t>(k));
  return p;
}

Partition block_partition(const CsrGraph& g, int k) {
  if (k <= 0) throw std::invalid_argument("block_partition: k <= 0");
  Partition p;
  p.num_parts = k;
  p.assignment.resize(g.num_nodes());
  const std::size_t n = g.num_nodes();
  for (std::size_t v = 0; v < n; ++v)
    p.assignment[v] = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(k) - 1,
                              v * static_cast<std::size_t>(k) / n));
  return p;
}

std::string to_text(const PartitionQuality& q) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4);
  os << "edge_cut=" << q.edge_cut << " cut_fraction=" << q.cut_fraction
     << " balance=" << std::setprecision(3) << q.balance << " parts=["
     << q.smallest_part << ".." << q.largest_part << "]";
  return os.str();
}

}  // namespace sagesim::graph
