#include "graph/ooc.hpp"

#include <algorithm>
#include <bit>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "prof/counters.hpp"
#include "stats/rng.hpp"
#include "tensor/tensor.hpp"

namespace fs = std::filesystem;

namespace sagesim::graph {

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  std::uint64_t x = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t permuted_index(std::uint64_t i, std::uint64_t n,
                             std::uint64_t key) {
  if (n <= 1) return 0;
  // Feistel over the next even bit width >= log2(n), cycle-walking values
  // that land outside [0, n) back through the cipher.  The walk terminates:
  // the cipher is a bijection on a domain at most 4n wide.
  int bits = 64 - std::countl_zero(n - 1);
  if (bits < 2) bits = 2;
  if (bits & 1) ++bits;
  const int half = bits / 2;
  const std::uint64_t mask = (std::uint64_t{1} << half) - 1;
  std::uint64_t x = i;
  do {
    std::uint64_t l = x >> half;
    std::uint64_t r = x & mask;
    for (std::uint64_t round = 0; round < 4; ++round) {
      const std::uint64_t f = mix64(key, (r << 3) | round) & mask;
      const std::uint64_t nl = r;
      r = l ^ f;
      l = nl;
    }
    x = (l << half) | r;
  } while (x >= n);
  return x;
}

namespace {

constexpr std::uint64_t kShardMagic = 0x3153475348415244ULL;  // "DRAHSGS1"
constexpr std::size_t kSpillBufEdges = 64 * 1024;

using Edge = std::pair<NodeId, NodeId>;
static_assert(sizeof(Edge) == 2 * sizeof(NodeId),
              "spill format assumes packed NodeId pairs");

struct ShardHeader {
  std::uint64_t magic{0};
  std::uint64_t index{0};
  std::uint64_t first_node{0};
  std::uint64_t num_nodes{0};
  std::uint64_t num_edges{0};
};

std::string shard_path(const std::string& dir, std::size_t shard) {
  return (fs::path(dir) / ("shard_" + std::to_string(shard) + ".bin"))
      .string();
}

std::string spill_path(const std::string& dir, std::size_t shard) {
  return (fs::path(dir) / ("spill_" + std::to_string(shard) + ".bin"))
      .string();
}

std::string degrees_path(const std::string& dir) {
  return (fs::path(dir) / "degrees.bin").string();
}

std::string meta_path(const std::string& dir) {
  return (fs::path(dir) / "meta.txt").string();
}

Status write_bytes(std::ofstream& out, const void* data, std::size_t bytes,
                   const std::string& what) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out) return Status::data_loss("ooc: short write to " + what);
  return {};
}

Status read_bytes(std::ifstream& in, void* data, std::size_t bytes,
                  const std::string& what) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (in.gcount() != static_cast<std::streamsize>(bytes))
    return Status::data_loss("ooc: short read from " + what);
  return {};
}

/// Buffered append-only writer for one shard's spill file.
struct SpillWriter {
  std::ofstream out;
  std::vector<Edge> buf;

  Status flush(const std::string& what) {
    if (buf.empty()) return {};
    const Status s = write_bytes(out, buf.data(), buf.size() * sizeof(Edge),
                                 what);
    buf.clear();
    return s;
  }
};

}  // namespace

EdgeIdx OocGraphMeta::full_csr_bytes() const {
  return static_cast<EdgeIdx>(num_nodes + 1) * sizeof(std::size_t) +
         num_directed_edges * sizeof(NodeId);
}

Expected<OocGraphMeta> build_sharded_rmat(const OocRmatParams& params) {
  if (params.scale == 0 || params.scale > 28)
    throw std::invalid_argument("build_sharded_rmat: scale must be in [1, 28]");
  if (params.edge_factor == 0)
    throw std::invalid_argument("build_sharded_rmat: edge_factor must be >= 1");
  const double d = 1.0 - params.a - params.b - params.c;
  if (params.a < 0.0 || params.b < 0.0 || params.c < 0.0 || d < 0.0)
    throw std::invalid_argument(
        "build_sharded_rmat: quadrant probabilities must be >= 0 and sum <= 1");
  if (params.nodes_per_shard == 0 || params.block_edges == 0)
    throw std::invalid_argument(
        "build_sharded_rmat: nodes_per_shard and block_edges must be >= 1");
  if (params.dir.empty())
    throw std::invalid_argument("build_sharded_rmat: dir must be set");

  std::error_code ec;
  fs::create_directories(params.dir, ec);
  if (ec)
    return Status::unavailable("build_sharded_rmat: cannot create " +
                               params.dir + ": " + ec.message());

  const std::size_t n = params.num_nodes();
  const std::size_t nps = params.nodes_per_shard;
  const std::size_t num_shards = (n + nps - 1) / nps;

  OocGraphMeta meta;
  meta.dir = params.dir;
  meta.num_nodes = n;
  meta.nodes_per_shard = nps;
  meta.num_shards = num_shards;
  meta.seed = params.seed;

  // --- Phase 1: stream edge blocks into per-shard spill files. -------------
  // Each block of draws is seeded by mix64(seed, block), so the edge stream
  // is a pure function of (seed, block index) — deterministic, and a future
  // parallel or resumed generator produces identical spills.  Every drawn
  // edge (u, v) lands twice: as (u, v) in u's shard and (v, u) in v's, which
  // makes the per-shard sort/dedupe below see both copies of any duplicate.
  {
    std::vector<SpillWriter> spill(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      spill[s].out.open(spill_path(params.dir, s),
                        std::ios::binary | std::ios::trunc);
      if (!spill[s].out)
        return Status::unavailable("build_sharded_rmat: cannot open " +
                                   spill_path(params.dir, s));
      spill[s].buf.reserve(kSpillBufEdges);
    }
    auto append = [&](std::size_t s, Edge e) -> Status {
      spill[s].buf.push_back(e);
      if (spill[s].buf.size() >= kSpillBufEdges)
        return spill[s].flush(spill_path(params.dir, s));
      return {};
    };

    const EdgeIdx target = params.target_edges();
    const double ab = params.a + params.b;
    const double abc = ab + params.c;
    for (EdgeIdx base = 0, block = 0; base < target;
         base += params.block_edges, ++block) {
      stats::Rng rng(mix64(params.seed, block));
      const EdgeIdx count =
          std::min<EdgeIdx>(params.block_edges, target - base);
      for (EdgeIdx e = 0; e < count; ++e) {
        NodeId u = 0, v = 0;
        for (std::size_t bit = 0; bit < params.scale; ++bit) {
          const double r = rng.uniform();
          u <<= 1;
          v <<= 1;
          if (r < params.a) {
            // upper-left: no bits set
          } else if (r < ab) {
            v |= 1;
          } else if (r < abc) {
            u |= 1;
          } else {
            u |= 1;
            v |= 1;
          }
        }
        if (u == v) continue;  // self-loops are rejected, as in CsrGraph
        Status s = append(meta.shard_of(u), {u, v});
        if (!s.ok()) return s;
        s = append(meta.shard_of(v), {v, u});
        if (!s.ok()) return s;
      }
    }
    for (std::size_t s = 0; s < num_shards; ++s) {
      const Status st = spill[s].flush(spill_path(params.dir, s));
      if (!st.ok()) return st;
      spill[s].out.close();
      if (spill[s].out.fail())
        return Status::data_loss("build_sharded_rmat: close failed for " +
                                 spill_path(params.dir, s));
    }
  }

  // --- Phase 2: one shard at a time, spill -> sorted/deduped local CSR. ----
  mem::TypedBuffer<std::uint32_t> degrees(n);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::string sp = spill_path(params.dir, s);
    std::vector<Edge> edges;
    {
      std::error_code fec;
      const auto size = fs::file_size(sp, fec);
      if (fec)
        return Status::unavailable("build_sharded_rmat: stat failed for " + sp);
      if (size % sizeof(Edge) != 0)
        return Status::data_loss("build_sharded_rmat: torn spill file " + sp);
      edges.resize(static_cast<std::size_t>(size / sizeof(Edge)));
      std::ifstream in(sp, std::ios::binary);
      if (!in)
        return Status::unavailable("build_sharded_rmat: cannot reopen " + sp);
      if (!edges.empty()) {
        const Status st = read_bytes(in, edges.data(),
                                     edges.size() * sizeof(Edge), sp);
        if (!st.ok()) return st;
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    const NodeId first = static_cast<NodeId>(s * nps);
    const std::size_t shard_nodes = std::min(nps, n - s * nps);

    GraphShard shard;
    shard.index = s;
    shard.first_node = first;
    shard.num_nodes = shard_nodes;
    shard.offsets = mem::TypedBuffer<EdgeIdx>(shard_nodes + 1);
    shard.adjacency = mem::TypedBuffer<NodeId>(edges.size());
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const std::size_t local = edges[e].first - first;
      ++shard.offsets[local + 1];
      shard.adjacency[e] = edges[e].second;
    }
    for (std::size_t i = 0; i < shard_nodes; ++i) {
      degrees[first + i] = static_cast<std::uint32_t>(shard.offsets[i + 1]);
      shard.offsets[i + 1] += shard.offsets[i];
    }
    meta.num_directed_edges += edges.size();

    const std::string path = shard_path(params.dir, s);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
      return Status::unavailable("build_sharded_rmat: cannot open " + path);
    ShardHeader hdr;
    hdr.magic = kShardMagic;
    hdr.index = s;
    hdr.first_node = first;
    hdr.num_nodes = shard_nodes;
    hdr.num_edges = edges.size();
    Status st = write_bytes(out, &hdr, sizeof(hdr), path);
    if (st.ok())
      st = write_bytes(out, shard.offsets.data(),
                       shard.offsets.size() * sizeof(EdgeIdx), path);
    if (st.ok() && !edges.empty())
      st = write_bytes(out, shard.adjacency.data(),
                       shard.adjacency.size() * sizeof(NodeId), path);
    if (!st.ok()) return st;
    out.close();
    if (out.fail())
      return Status::data_loss("build_sharded_rmat: close failed for " + path);
    fs::remove(sp, ec);  // spill served its purpose; ignore removal errors
  }

  // --- Phase 3: degree index + metadata. ------------------------------------
  {
    const std::string path = degrees_path(params.dir);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
      return Status::unavailable("build_sharded_rmat: cannot open " + path);
    const Status st = write_bytes(out, degrees.data(),
                                  degrees.size() * sizeof(std::uint32_t), path);
    if (!st.ok()) return st;
  }
  {
    const std::string path = meta_path(params.dir);
    std::ofstream out(path, std::ios::trunc);
    if (!out)
      return Status::unavailable("build_sharded_rmat: cannot open " + path);
    out << "num_nodes " << meta.num_nodes << '\n'
        << "nodes_per_shard " << meta.nodes_per_shard << '\n'
        << "num_shards " << meta.num_shards << '\n'
        << "num_directed_edges " << meta.num_directed_edges << '\n'
        << "seed " << meta.seed << '\n';
    if (!out) return Status::data_loss("build_sharded_rmat: meta write failed");
  }
  return meta;
}

Expected<OocGraphMeta> load_ooc_meta(const std::string& dir) {
  std::ifstream in(meta_path(dir));
  if (!in)
    return Status::unavailable("load_ooc_meta: no meta.txt under " + dir);
  OocGraphMeta meta;
  meta.dir = dir;
  std::string key;
  std::uint64_t value = 0;
  while (in >> key >> value) {
    if (key == "num_nodes") meta.num_nodes = value;
    else if (key == "nodes_per_shard") meta.nodes_per_shard = value;
    else if (key == "num_shards") meta.num_shards = value;
    else if (key == "num_directed_edges") meta.num_directed_edges = value;
    else if (key == "seed") meta.seed = value;
  }
  if (meta.num_nodes == 0 || meta.nodes_per_shard == 0 ||
      meta.num_shards == 0)
    return Status::data_loss("load_ooc_meta: malformed meta.txt under " + dir);
  return meta;
}

Expected<ShardStore> ShardStore::open(const OocGraphMeta& meta,
                                      std::size_t max_resident_shards) {
  if (max_resident_shards == 0)
    throw std::invalid_argument("ShardStore: max_resident_shards must be >= 1");
  ShardStore store;
  store.meta_ = meta;
  store.max_resident_ = max_resident_shards;
  store.degrees_ = mem::TypedBuffer<std::uint32_t>(meta.num_nodes);
  const std::string path = degrees_path(meta.dir);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::unavailable("ShardStore: cannot open " + path);
  const Status st =
      read_bytes(in, store.degrees_.data(),
                 store.degrees_.size() * sizeof(std::uint32_t), path);
  if (!st.ok()) return st;
  return store;
}

Expected<std::shared_ptr<const GraphShard>> ShardStore::acquire(
    std::size_t shard) {
  if (shard >= meta_.num_shards)
    throw std::out_of_range("ShardStore::acquire: shard out of range");
  std::lock_guard lock(*mutex_);
  if (auto it = cache_.find(shard); it != cache_.end()) {
    ++stats_.hits;
    it->second.tick = ++tick_;
    return it->second.shard;
  }

  const std::string path = shard_path(meta_.dir, shard);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::unavailable("ShardStore: cannot open " + path);
  ShardHeader hdr;
  Status st = read_bytes(in, &hdr, sizeof(hdr), path);
  if (!st.ok()) return st;
  if (hdr.magic != kShardMagic || hdr.index != shard)
    return Status::data_loss("ShardStore: corrupt header in " + path);

  auto loaded = std::make_shared<GraphShard>();
  loaded->index = shard;
  loaded->first_node = static_cast<NodeId>(hdr.first_node);
  loaded->num_nodes = static_cast<std::size_t>(hdr.num_nodes);
  loaded->offsets = mem::TypedBuffer<EdgeIdx>(loaded->num_nodes + 1);
  st = read_bytes(in, loaded->offsets.data(),
                  loaded->offsets.size() * sizeof(EdgeIdx), path);
  if (!st.ok()) return st;
  loaded->adjacency =
      mem::TypedBuffer<NodeId>(static_cast<std::size_t>(hdr.num_edges));
  if (hdr.num_edges != 0) {
    st = read_bytes(in, loaded->adjacency.data(),
                    loaded->adjacency.size() * sizeof(NodeId), path);
    if (!st.ok()) return st;
  }

  ++stats_.loads;
  prof::counter("graph.shard_loads").add();
  stats_.bytes_loaded += loaded->resident_bytes();
  stats_.resident_bytes += loaded->resident_bytes();
  stats_.resident_peak_bytes =
      std::max(stats_.resident_peak_bytes, stats_.resident_bytes);
  cache_.emplace(shard, Cached{loaded, ++tick_});

  // LRU eviction beyond the resident bound.  Dropping the cache reference
  // is enough: pinned readers keep the shard alive through their
  // shared_ptr, and the buffers return to the pool when the last pin dies.
  while (cache_.size() > max_resident_) {
    auto victim = cache_.begin();
    for (auto it = cache_.begin(); it != cache_.end(); ++it)
      if (it->second.tick < victim->second.tick) victim = it;
    stats_.resident_bytes -= victim->second.shard->resident_bytes();
    cache_.erase(victim);
    ++stats_.evictions;
    prof::counter("graph.shard_evictions").add();
  }
  return std::shared_ptr<const GraphShard>(std::move(loaded));
}

ShardStoreStats ShardStore::stats() const {
  std::lock_guard lock(*mutex_);
  return stats_;
}

int ooc_label(const OocFeatureSpec& spec, NodeId u) {
  const int classes = std::max(1, spec.num_classes);
  return static_cast<int>(mix64(spec.seed ^ 0x1abe1ULL, u) %
                          static_cast<std::uint64_t>(classes));
}

void ooc_fill_features(const OocFeatureSpec& spec,
                       std::span<const NodeId> nodes, tensor::Tensor& out) {
  if (out.rows() != nodes.size() || out.cols() != spec.dim)
    throw std::invalid_argument("ooc_fill_features: shape mismatch");
  const std::size_t dim = spec.dim;
  const std::size_t width =
      std::max<std::size_t>(1, dim / static_cast<std::size_t>(
                                         std::max(1, spec.num_classes)));
  float* x = out.data();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId u = nodes[i];
    const std::uint64_t h0 = mix64(spec.seed, u);
    float* row = x + i * dim;
    for (std::size_t f = 0; f < dim; ++f) {
      // Top 53 bits -> uniform in [0, 1) -> symmetric noise in [-1, 1).
      const double uf =
          static_cast<double>(mix64(h0, f) >> 11) * 0x1.0p-53;
      row[f] = spec.noise * static_cast<float>(2.0 * uf - 1.0);
    }
    const std::size_t base =
        static_cast<std::size_t>(ooc_label(spec, u)) * width;
    for (std::size_t j = 0; j < width; ++j)
      row[(base + j) % dim] += spec.signal;
  }
}

EdgeIdx full_materialization_bytes(const OocGraphMeta& meta,
                                   const OocFeatureSpec& spec) {
  const EdgeIdx n = meta.num_nodes;
  const EdgeIdx m = meta.num_directed_edges;
  const EdgeIdx csr = meta.full_csr_bytes();
  // normalized_adjacency adds self-loops: nnz = m + n, with float weights.
  const EdgeIdx norm = (n + 1) * sizeof(std::size_t) +
                       (m + n) * (sizeof(NodeId) + sizeof(float));
  const EdgeIdx features = n * spec.dim * sizeof(float);
  const EdgeIdx labels = n * sizeof(int);
  return csr + norm + features + labels;
}

std::vector<std::pair<NodeId, NodeId>> degree_balanced_ranges(
    std::span<const std::uint32_t> degrees, int parts) {
  const std::size_t n = degrees.size();
  if (parts < 1 || static_cast<std::size_t>(parts) > n)
    throw std::invalid_argument(
        "degree_balanced_ranges: need 1 <= parts <= num_nodes");
  // One streaming pass: each edge contributes its endpoint degree, +1 per
  // node for the self-loop the normalized operator will add, so the split
  // tracks the work a GCN layer actually does per range.
  std::uint64_t total = n;
  for (const std::uint32_t d : degrees) total += d;

  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(static_cast<std::size_t>(parts));
  std::uint64_t cum = 0;
  std::size_t pos = 0;
  for (int p = 0; p < parts; ++p) {
    const std::size_t begin = pos;
    const std::size_t end_max = n - (static_cast<std::size_t>(parts - p) - 1);
    const std::uint64_t want =
        total * static_cast<std::uint64_t>(p + 1) / static_cast<std::uint64_t>(parts);
    while (pos < end_max && (pos == begin || cum < want)) {
      cum += degrees[pos] + 1;
      ++pos;
    }
    if (p == parts - 1)
      while (pos < n) {
        cum += degrees[pos] + 1;
        ++pos;
      }
    out.emplace_back(static_cast<NodeId>(begin), static_cast<NodeId>(pos));
  }
  return out;
}

}  // namespace sagesim::graph
