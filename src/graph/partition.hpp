// Graph partitioning interfaces, baselines, and quality metrics — the
// substrate of Algorithm 1, line 3 ("Partition G into {G1..Gk} using METIS")
// and of the lab where students contrast METIS with random partitioning.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "stats/rng.hpp"

namespace sagesim::graph {

/// A k-way node partition: part[v] in [0, k).
struct Partition {
  std::vector<int> assignment;  ///< size num_nodes
  int num_parts{0};

  /// Node lists per part.
  std::vector<std::vector<NodeId>> part_nodes() const;
};

/// Quality metrics of a partition.
struct PartitionQuality {
  std::size_t edge_cut{0};       ///< undirected edges crossing parts
  double cut_fraction{0.0};      ///< edge_cut / total edges
  double balance{1.0};           ///< max part size / ideal part size
  std::size_t largest_part{0};
  std::size_t smallest_part{0};
};

/// Computes quality metrics; throws std::invalid_argument on size mismatch.
PartitionQuality evaluate_partition(const CsrGraph& g, const Partition& p);

/// Uniform random assignment — the baseline the students try first.
Partition random_partition(const CsrGraph& g, int k, stats::Rng& rng);

/// Contiguous block assignment by node id (what naive array chunking does).
Partition block_partition(const CsrGraph& g, int k);

/// Renders metrics in one line.
std::string to_text(const PartitionQuality& q);

}  // namespace sagesim::graph
