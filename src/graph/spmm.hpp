// Sparse (CSR) x dense multiply — the neighborhood-aggregation kernel at the
// heart of GCN layers: Y = Â X.
#pragma once

#include "compute/autotuner.hpp"
#include "gpusim/device.hpp"
#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace sagesim::graph {

/// Y = A X where A is a weighted CSR operator (e.g. the normalized
/// adjacency) and X is num_nodes x d.  Runs as a simulated row-parallel
/// kernel when @p dev is non-null; on the host it dispatches on
/// tensor::ops::host_backend() — the cache-blocked parallel kernel by
/// default, the serial reference row loop under kNaive.  Both host paths
/// and the device path are bit-identical (per-row edge order is fixed).
/// Shapes validated: X.rows() == A.num_nodes(), Y same shape as X.
void spmm(gpu::Device* dev, const NormalizedAdjacency& a,
          const tensor::Tensor& x, tensor::Tensor& y);

namespace detail {

/// Serial reference: one row at a time, edges ascending, all d columns per
/// edge.
void spmm_host_reference(const NormalizedAdjacency& a, const tensor::Tensor& x,
                         tensor::Tensor& y);

/// Cache-blocked parallel kernel: the row range is decomposed into
/// compute-plan row blocks (sized by the autotuned SpmmTiling) distributed
/// over the work-stealing pool with a min-grain floor, and the feature
/// dimension is tiled (width capped by the tiling) so the gathered slices
/// of X stay L1/L2-resident while a block's rows (which share neighbors
/// under any community structure) reuse them.  Per output element the edge
/// accumulation order is unchanged, so the result is bit-identical to the
/// reference at any worker count.  Consults compute::Autotuner for the
/// (nodes, nnz, d) shape key.
void spmm_host_blocked(const NormalizedAdjacency& a, const tensor::Tensor& x,
                       tensor::Tensor& y);

/// Same kernel with an explicit tiling — the entry point the autotuner's
/// search and the worker-sweep tests drive.
void spmm_host_blocked_tiled(const NormalizedAdjacency& a,
                             const tensor::Tensor& x, tensor::Tensor& y,
                             compute::SpmmTiling tiling);

}  // namespace detail
}  // namespace sagesim::graph
