// Sparse (CSR) x dense multiply — the neighborhood-aggregation kernel at the
// heart of GCN layers: Y = Â X.
#pragma once

#include "gpusim/device.hpp"
#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace sagesim::graph {

/// Y = A X where A is a weighted CSR operator (e.g. the normalized
/// adjacency) and X is num_nodes x d.  Runs as a simulated row-parallel
/// kernel when @p dev is non-null, host loops otherwise.
/// Shapes validated: X.rows() == A.num_nodes(), Y same shape as X.
void spmm(gpu::Device* dev, const NormalizedAdjacency& a,
          const tensor::Tensor& x, tensor::Tensor& y);

}  // namespace sagesim::graph
