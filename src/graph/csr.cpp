#include "graph/csr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace sagesim::graph {

CsrGraph CsrGraph::from_edges(
    std::size_t num_nodes,
    std::span<const std::pair<NodeId, NodeId>> edges) {
  // Collect both directions, validate, dedupe.
  std::vector<std::pair<NodeId, NodeId>> directed;
  directed.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    if (u >= num_nodes || v >= num_nodes)
      throw std::invalid_argument("CsrGraph: edge endpoint out of range");
    if (u == v)
      throw std::invalid_argument("CsrGraph: self-loop in input edge list");
    directed.emplace_back(u, v);
    directed.emplace_back(v, u);
  }
  std::sort(directed.begin(), directed.end());
  directed.erase(std::unique(directed.begin(), directed.end()),
                 directed.end());

  std::vector<std::size_t> offsets(num_nodes + 1, 0);
  for (const auto& [u, _] : directed) ++offsets[u + 1];
  for (std::size_t i = 1; i <= num_nodes; ++i) offsets[i] += offsets[i - 1];
  std::vector<NodeId> adjacency;
  adjacency.reserve(directed.size());
  for (const auto& [_, v] : directed) adjacency.push_back(v);

  CsrGraph g;
  g.offsets_ = mem::TypedBuffer<std::size_t>(offsets);
  g.adjacency_ = mem::TypedBuffer<NodeId>(adjacency);
  return g;
}

Status CsrGraph::to_device(gpu::Device& device, int stream) {
  if (Status s = offsets_.to_device(device, stream); !s.ok()) return s;
  return adjacency_.to_device(device, stream);
}

Status CsrGraph::to_host(int stream) {
  if (Status s = offsets_.to_host(stream); !s.ok()) return s;
  return adjacency_.to_host(stream);
}

std::span<const NodeId> CsrGraph::neighbors(NodeId u) const {
  if (u >= num_nodes())
    throw std::out_of_range("CsrGraph::neighbors: node out of range");
  return {adjacency_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
}

std::size_t CsrGraph::degree(NodeId u) const {
  if (u >= num_nodes())
    throw std::out_of_range("CsrGraph::degree: node out of range");
  return offsets_[u + 1] - offsets_[u];
}

bool CsrGraph::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> CsrGraph::edge_list() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u)
    for (NodeId v : neighbors(u))
      if (u < v) out.emplace_back(u, v);
  return out;
}

Status NormalizedAdjacency::to_device(gpu::Device& device, int stream) {
  if (Status s = offsets.to_device(device, stream); !s.ok()) return s;
  if (Status s = columns.to_device(device, stream); !s.ok()) return s;
  return values.to_device(device, stream);
}

Status NormalizedAdjacency::to_host(int stream) {
  if (Status s = offsets.to_host(stream); !s.ok()) return s;
  if (Status s = columns.to_host(stream); !s.ok()) return s;
  return values.to_host(stream);
}

NormalizedAdjacency normalized_adjacency(const CsrGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::size_t> offsets(n + 1, 0);

  // 64-bit loop counters throughout: `u + 1` in 32 bits wraps at the last
  // node of a 2^32-node graph, and the cumulative offsets themselves pass
  // 2^31 well before that (RMAT scale 22, edge factor 16+).
  std::vector<float> inv_sqrt_deg(n);
  for (std::size_t u = 0; u < n; ++u)
    inv_sqrt_deg[u] =
        1.0f /
        std::sqrt(static_cast<float>(g.degree(static_cast<NodeId>(u))) + 1.0f);

  for (std::size_t u = 0; u < n; ++u)
    offsets[u + 1] =
        offsets[u] + g.degree(static_cast<NodeId>(u)) + 1;  // +1 self-loop
  std::vector<NodeId> columns;
  std::vector<float> values;
  columns.reserve(offsets[n]);
  values.reserve(offsets[n]);

  for (std::size_t ui = 0; ui < n; ++ui) {
    const auto u = static_cast<NodeId>(ui);
    bool self_emitted = false;
    for (NodeId v : g.neighbors(u)) {
      if (!self_emitted && v > u) {
        columns.push_back(u);
        values.push_back(inv_sqrt_deg[u] * inv_sqrt_deg[u]);
        self_emitted = true;
      }
      columns.push_back(v);
      values.push_back(inv_sqrt_deg[u] * inv_sqrt_deg[v]);
    }
    if (!self_emitted) {
      columns.push_back(u);
      values.push_back(inv_sqrt_deg[u] * inv_sqrt_deg[u]);
    }
  }

  NormalizedAdjacency a;
  a.offsets = mem::TypedBuffer<std::size_t>(offsets);
  a.columns = mem::TypedBuffer<NodeId>(columns);
  a.values = mem::TypedBuffer<float>(values);
  return a;
}

Subgraph induced_subgraph(const CsrGraph& g, std::span<const NodeId> nodes) {
  Subgraph sub;
  sub.global_ids.assign(nodes.begin(), nodes.end());
  std::sort(sub.global_ids.begin(), sub.global_ids.end());
  sub.global_ids.erase(
      std::unique(sub.global_ids.begin(), sub.global_ids.end()),
      sub.global_ids.end());

  std::unordered_map<NodeId, NodeId> local_of;
  local_of.reserve(sub.global_ids.size());
  for (std::size_t i = 0; i < sub.global_ids.size(); ++i)
    local_of.emplace(sub.global_ids[i], static_cast<NodeId>(i));

  std::vector<std::pair<NodeId, NodeId>> edges;
  for (std::size_t li = 0; li < sub.global_ids.size(); ++li) {
    const auto lu = static_cast<NodeId>(li);
    const NodeId gu = sub.global_ids[li];
    for (NodeId gv : g.neighbors(gu)) {
      if (gv <= gu) continue;  // count each undirected edge once
      auto it = local_of.find(gv);
      if (it != local_of.end())
        edges.emplace_back(lu, it->second);
      else
        ++sub.cut_edges_dropped;
    }
  }
  sub.graph = CsrGraph::from_edges(sub.global_ids.size(), edges);
  return sub;
}

}  // namespace sagesim::graph
