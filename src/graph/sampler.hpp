// GraphSAGE-style seeded neighbor sampling over an out-of-core ShardStore:
// fixed-fanout frontier expansion producing self-contained mini-batch
// subgraphs (normalized CSR slice + gathered features on mem::Buffer) that
// a GCN trains on without ever touching the full graph.
//
// Randomness is counter-based: every neighbor pick hashes
// (seed, epoch, batch, node, layer, counter) through mix64, so the sampled
// batch sequence is a pure function of the configuration — bit-identical
// across worker counts, across prefetch on/off, and across a restart that
// re-enters the schedule at the same (epoch, batch) coordinates.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/ooc.hpp"
#include "runtime/status.hpp"
#include "tensor/tensor.hpp"

namespace sagesim::gpu {
class Device;
}

namespace sagesim::graph {

struct SamplerConfig {
  /// Neighbors sampled per node per layer, outermost hop first.  A node
  /// with degree <= fanout keeps all of its neighbors.
  std::vector<std::uint32_t> fanouts{10, 5};
  std::uint64_t seed{7};
};

/// One self-contained training batch: local node ids are positions in
/// `nodes` (seeds first), the operator is the symmetric-normalized
/// adjacency of the sampled subgraph, and features/labels are gathered
/// (hashed) rows for exactly the sampled nodes.
struct MiniBatch {
  std::uint64_t epoch{0};
  std::uint64_t index{0};
  std::vector<NodeId> nodes;  ///< local -> global, seeds occupy [0, num_seeds)
  std::size_t num_seeds{0};
  std::vector<std::uint32_t> seed_rows;  ///< loss mask: rows [0, num_seeds)
  NormalizedAdjacency adj;               ///< over local ids
  tensor::Tensor features;               ///< nodes.size() x feature dim
  std::vector<int> labels;               ///< per local node
  EdgeIdx sampled_edges{0};              ///< unique undirected subgraph edges
  std::size_t shard_misses{0};           ///< shard loads this batch caused

  /// Bytes the H2D staging of this batch moves (features + operator).
  std::size_t h2d_bytes() const {
    return features.rows() * features.cols() * sizeof(float) +
           adj.offsets.size() * sizeof(std::size_t) +
           adj.columns.size() * sizeof(NodeId) +
           adj.values.size() * sizeof(float);
  }

  /// Stages features and the operator onto @p device (accounted H2D on
  /// @p stream).  Labels and the loss mask stay host-side, like the
  /// full-batch trainer.
  Status to_device(gpu::Device& device, int stream = 0);
};

/// Stateless sampler over one ShardStore.  Thread-safe: concurrent sample()
/// calls (the prefetch pipeline's lookahead) share the store's lock-guarded
/// cache and hold shard pins for the duration of a batch.
class NeighborSampler {
 public:
  NeighborSampler(ShardStore& store, OocFeatureSpec features,
                  SamplerConfig config);

  const SamplerConfig& config() const { return config_; }
  const OocFeatureSpec& features() const { return features_; }
  ShardStore& store() { return *store_; }

  /// Samples the mini-batch rooted at @p seeds (global ids, unique).
  /// (epoch, index) only key the hash stream — the caller owns the seed
  /// schedule.  Operational failures (missing/corrupt shard files) come
  /// back as a Status; malformed seeds throw.
  Expected<MiniBatch> sample(std::uint64_t epoch, std::uint64_t index,
                             std::span<const NodeId> seeds);

 private:
  ShardStore* store_;
  OocFeatureSpec features_;
  SamplerConfig config_;
};

/// Number of full batches one epoch yields over the node range [begin, end)
/// (the remainder tail is dropped, so every epoch has identical shape).
std::size_t batches_per_epoch(NodeId begin, NodeId end,
                              std::size_t batch_size);

/// The seed nodes of batch @p index of @p epoch: a batch_size slice of the
/// keyed pseudo-shuffle (permuted_index) of [begin, end).  O(batch) time and
/// memory — no permutation array — and unique by construction.
std::vector<NodeId> schedule_seeds(NodeId begin, NodeId end,
                                   std::size_t batch_size, std::uint64_t seed,
                                   std::uint64_t epoch, std::uint64_t index);

}  // namespace sagesim::graph
