#include "graph/algorithms.hpp"

#include <deque>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sagesim::graph {

std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, NodeId source) {
  if (source >= g.num_nodes())
    throw std::out_of_range("bfs_distances: source out of range");
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::deque<NodeId> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] != kUnreachable) continue;
      dist[v] = dist[u] + 1;
      frontier.push_back(v);
    }
  }
  return dist;
}

Components connected_components(const CsrGraph& g) {
  Components c;
  c.label.assign(g.num_nodes(), -1);
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (c.label[start] != -1) continue;
    const int id = c.count++;
    std::size_t size = 0;
    std::deque<NodeId> frontier{start};
    c.label[start] = id;
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      ++size;
      for (const NodeId v : g.neighbors(u)) {
        if (c.label[v] != -1) continue;
        c.label[v] = id;
        frontier.push_back(v);
      }
    }
    c.sizes.push_back(size);
  }
  return c;
}

std::vector<std::size_t> degree_histogram(const CsrGraph& g) {
  std::size_t max_deg = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    max_deg = std::max(max_deg, g.degree(u));
  std::vector<std::size_t> counts(max_deg + 1, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) ++counts[g.degree(u)];
  return counts;
}

void write_edge_list(const CsrGraph& g, std::ostream& os) {
  os << g.num_nodes() << '\n';
  for (const auto& [u, v] : g.edge_list()) os << u << ' ' << v << '\n';
}

void write_edge_list(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_edge_list: cannot open " + path);
  write_edge_list(g, out);
}

CsrGraph read_edge_list(std::istream& is) {
  std::size_t n = 0;
  if (!(is >> n)) throw std::runtime_error("read_edge_list: missing header");
  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId u, v;
  while (is >> u >> v) edges.emplace_back(u, v);
  if (!is.eof() && is.fail())
    throw std::runtime_error("read_edge_list: malformed edge line");
  return CsrGraph::from_edges(n, edges);
}

CsrGraph read_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list: cannot open " + path);
  return read_edge_list(in);
}

}  // namespace sagesim::graph
