#include "graph/metis_like.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "prof/check.hpp"
#include "stats/rng.hpp"

namespace sagesim::graph {

namespace {

/// Weighted graph used internally across coarsening levels.
struct WGraph {
  // adj[u] = (neighbor, edge weight); symmetric.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> adj;
  std::vector<double> node_w;

  std::size_t size() const { return adj.size(); }
  double total_weight() const {
    double t = 0.0;
    for (double w : node_w) t += w;
    return t;
  }
};

WGraph from_csr(const CsrGraph& g) {
  WGraph w;
  w.adj.resize(g.num_nodes());
  w.node_w.assign(g.num_nodes(), 1.0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    w.adj[u].reserve(g.degree(u));
    for (NodeId v : g.neighbors(u)) w.adj[u].emplace_back(v, 1.0);
  }
  return w;
}

/// One coarsening level: heavy-edge matching then contraction.
/// Returns the coarse graph and the fine→coarse node map.
struct CoarseLevel {
  WGraph graph;
  std::vector<std::uint32_t> fine_to_coarse;
};

CoarseLevel coarsen(const WGraph& g, stats::Rng& rng) {
  const std::size_t n = g.size();
  constexpr std::uint32_t kUnmatched = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> match(n, kUnmatched);

  // Heavy-edge matching in random visit order.
  const auto order = rng.permutation(n);
  for (std::size_t idx = 0; idx < n; ++idx) {
    const auto u = static_cast<std::uint32_t>(order[idx]);
    if (match[u] != kUnmatched) continue;
    std::uint32_t best = kUnmatched;
    double best_w = -1.0;
    for (const auto& [v, w] : g.adj[u]) {
      if (match[v] != kUnmatched || v == u) continue;
      if (w > best_w) {
        best_w = w;
        best = v;
      }
    }
    if (best != kUnmatched) {
      match[u] = best;
      match[best] = u;
    } else {
      match[u] = u;  // stays single
    }
  }

  CoarseLevel level;
  level.fine_to_coarse.assign(n, kUnmatched);
  std::uint32_t next_id = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    if (level.fine_to_coarse[u] != kUnmatched) continue;
    level.fine_to_coarse[u] = next_id;
    if (match[u] != u) level.fine_to_coarse[match[u]] = next_id;
    ++next_id;
  }

  level.graph.adj.resize(next_id);
  level.graph.node_w.assign(next_id, 0.0);
  for (std::uint32_t u = 0; u < n; ++u)
    level.graph.node_w[level.fine_to_coarse[u]] += g.node_w[u];

  // Accumulate coarse edge weights.
  std::unordered_map<std::uint64_t, double> coarse_edges;
  for (std::uint32_t u = 0; u < n; ++u) {
    const std::uint32_t cu = level.fine_to_coarse[u];
    for (const auto& [v, w] : g.adj[u]) {
      const std::uint32_t cv = level.fine_to_coarse[v];
      if (cu >= cv) continue;  // each undirected coarse edge once
      coarse_edges[(static_cast<std::uint64_t>(cu) << 32) | cv] += w;
    }
  }
  for (const auto& [key, w] : coarse_edges) {
    const auto cu = static_cast<std::uint32_t>(key >> 32);
    const auto cv = static_cast<std::uint32_t>(key & 0xffffffffu);
    level.graph.adj[cu].emplace_back(cv, w);
    level.graph.adj[cv].emplace_back(cu, w);
  }
  return level;
}

/// Greedy region growing: grows k regions from high-degree seeds until each
/// reaches the ideal weight.
std::vector<int> initial_partition(const WGraph& g, int k, stats::Rng& rng) {
  const std::size_t n = g.size();
  const double ideal = g.total_weight() / static_cast<double>(k);
  std::vector<int> part(n, -1);

  auto weighted_degree = [&](std::uint32_t u) {
    double d = 0.0;
    for (const auto& [_, w] : g.adj[u]) d += w;
    return d;
  };

  const auto visit = rng.permutation(n);
  std::size_t cursor = 0;
  for (int p = 0; p + 1 < k; ++p) {
    // Seed: first unassigned node in random order with max weighted degree
    // among a small sample.
    std::uint32_t seed = std::numeric_limits<std::uint32_t>::max();
    double best = -1.0;
    std::size_t scanned = 0;
    for (std::size_t i = cursor; i < n && scanned < 32; ++i) {
      const auto u = static_cast<std::uint32_t>(visit[i]);
      if (part[u] != -1) continue;
      ++scanned;
      const double d = weighted_degree(u);
      if (d > best) {
        best = d;
        seed = u;
      }
    }
    if (seed == std::numeric_limits<std::uint32_t>::max()) {
      for (std::uint32_t u = 0; u < n; ++u)
        if (part[u] == -1) {
          seed = u;
          break;
        }
    }
    if (seed == std::numeric_limits<std::uint32_t>::max()) break;

    // BFS growth until the region reaches the ideal weight.
    double grown = 0.0;
    std::deque<std::uint32_t> frontier{seed};
    while (!frontier.empty() && grown < ideal) {
      const std::uint32_t u = frontier.front();
      frontier.pop_front();
      if (part[u] != -1) continue;
      part[u] = p;
      grown += g.node_w[u];
      for (const auto& [v, _] : g.adj[u])
        if (part[v] == -1) frontier.push_back(v);
    }
    // Region ran out of connected unassigned nodes: continue from any
    // unassigned node (disconnected graphs).
    while (grown < ideal) {
      std::uint32_t u = std::numeric_limits<std::uint32_t>::max();
      for (std::uint32_t c = 0; c < n; ++c)
        if (part[c] == -1) {
          u = c;
          break;
        }
      if (u == std::numeric_limits<std::uint32_t>::max()) break;
      part[u] = p;
      grown += g.node_w[u];
    }
  }
  // Remainder goes to the last part.
  for (std::uint32_t u = 0; u < n; ++u)
    if (part[u] == -1) part[u] = k - 1;
  return part;
}

/// FM-style boundary refinement: move nodes to the neighboring part with the
/// best positive gain, respecting the balance constraint.
void refine(const WGraph& g, std::vector<int>& part, int k,
            const MetisOptions& opts) {
  const std::size_t n = g.size();
  const double ideal = g.total_weight() / static_cast<double>(k);
  const double max_part = ideal * opts.imbalance;

  std::vector<double> part_w(static_cast<std::size_t>(k), 0.0);
  for (std::uint32_t u = 0; u < n; ++u)
    part_w[static_cast<std::size_t>(part[u])] += g.node_w[u];

  std::vector<double> conn(static_cast<std::size_t>(k), 0.0);
  for (int pass = 0; pass < opts.refine_passes; ++pass) {
    bool moved_any = false;
    for (std::uint32_t u = 0; u < n; ++u) {
      if (g.adj[u].empty()) continue;
      std::fill(conn.begin(), conn.end(), 0.0);
      bool boundary = false;
      for (const auto& [v, w] : g.adj[u]) {
        conn[static_cast<std::size_t>(part[v])] += w;
        if (part[v] != part[u]) boundary = true;
      }
      if (!boundary) continue;

      const int from = part[u];
      int best_to = from;
      double best_gain = 0.0;
      for (int p = 0; p < k; ++p) {
        if (p == from) continue;
        const double gain = conn[static_cast<std::size_t>(p)] -
                            conn[static_cast<std::size_t>(from)];
        if (gain > best_gain &&
            part_w[static_cast<std::size_t>(p)] + g.node_w[u] <= max_part) {
          best_gain = gain;
          best_to = p;
        }
      }
      if (best_to != from) {
        part_w[static_cast<std::size_t>(from)] -= g.node_w[u];
        part_w[static_cast<std::size_t>(best_to)] += g.node_w[u];
        part[u] = best_to;
        moved_any = true;
      }
    }
    if (!moved_any) break;
  }
}

}  // namespace

Partition metis_like(const CsrGraph& g, int k, const MetisOptions& opts) {
  if (k <= 0) throw std::invalid_argument("metis_like: k <= 0");
  if (static_cast<std::size_t>(k) > g.num_nodes())
    throw std::invalid_argument("metis_like: k exceeds node count");

  stats::Rng rng(opts.seed);

  if (k == 1) {
    Partition p;
    p.num_parts = 1;
    p.assignment.assign(g.num_nodes(), 0);
    return p;
  }

  // Phase 1: coarsen.
  std::vector<CoarseLevel> levels;
  WGraph current = from_csr(g);
  const std::size_t target = std::max<std::size_t>(
      opts.coarsen_target, 30ull * static_cast<std::size_t>(k));
  while (current.size() > target) {
    CoarseLevel level = coarsen(current, rng);
    // Stall guard: stop when matching no longer shrinks the graph.
    if (level.graph.size() >
        static_cast<std::size_t>(0.95 * static_cast<double>(current.size())))
      break;
    WGraph next = level.graph;  // keep a copy for the next iteration
    levels.push_back(std::move(level));
    current = std::move(next);
  }

  // Phase 2: initial partition on the coarsest graph.
  std::vector<int> part = initial_partition(current, k, rng);
  if (opts.refine) refine(current, part, k, opts);

  // Phase 3: uncoarsen, projecting and refining at every level.
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    std::vector<int> finer(it->fine_to_coarse.size());
    for (std::size_t u = 0; u < finer.size(); ++u)
      finer[u] = part[it->fine_to_coarse[u]];
    part = std::move(finer);

    // Rebuild the fine graph for refinement: the level before this one (or
    // the original graph at the last step).
    if (opts.refine) {
      if (it + 1 != levels.rend()) {
        refine((it + 1)->graph, part, k, opts);
      } else {
        WGraph fine = from_csr(g);
        refine(fine, part, k, opts);
      }
    }
  }

  SAGESIM_CHECK(part.size() == g.num_nodes());
  Partition result;
  result.num_parts = k;
  result.assignment = std::move(part);
  return result;
}

}  // namespace sagesim::graph
