// Synthetic graph generators standing in for the course's datasets.
//
// PubMed and Reddit are node-classification benchmarks whose relevant
// structure for the labs is (a) community-correlated connectivity and
// (b) community-correlated features — which a planted-partition (SBM)
// generator reproduces at any scale.  An R-MAT generator provides the
// heavy-tailed "reddit-like" degree distribution for partitioner stress,
// plus grid/ER generators for unit tests.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "stats/rng.hpp"
#include "tensor/tensor.hpp"

namespace sagesim::graph {

/// A node-classification dataset: graph + features + labels + split.
struct Dataset {
  CsrGraph graph;
  tensor::Tensor features;       ///< num_nodes x feature_dim
  std::vector<int> labels;       ///< num_nodes, in [0, num_classes)
  int num_classes{0};
  std::vector<NodeId> train_nodes;
  std::vector<NodeId> test_nodes;
};

/// Planted-partition (stochastic block model) graph with features drawn as
/// a noisy one-hot community signature.
struct PlantedPartitionParams {
  std::size_t num_nodes{1000};
  int num_classes{4};
  std::size_t feature_dim{32};
  double intra_edge_prob{0.01};   ///< within-community
  double inter_edge_prob{0.0005}; ///< across communities
  double feature_noise_sd{0.8};   ///< sd of Gaussian noise on the signature
  double train_fraction{0.6};
};
Dataset planted_partition(const PlantedPartitionParams& params,
                          stats::Rng& rng);

/// "PubMed-like": 3 classes, 500-dim features, ~19.7k nodes, mean degree
/// ~4.5 (Sen et al. 2008's published statistics), scaled by @p scale to keep
/// unit tests fast (scale=1 reproduces the published size).
Dataset pubmed_like(stats::Rng& rng, double scale = 0.1);

/// "Reddit-like": the heavy, community-structured node-classification
/// setting of Hamilton et al. 2017 (232k nodes, 602 features, 41 classes,
/// mean degree ~100 in the original), scaled by @p scale.  Community-
/// correlated connectivity and features like pubmed_like, but denser and
/// with many more classes — the partitioner/distributed-training stress
/// case.
Dataset reddit_like(stats::Rng& rng, double scale = 0.01);

/// R-MAT power-law graph (Chakrabarti et al. 2004) with the standard
/// (a, b, c) = (0.57, 0.19, 0.19) "reddit-like" skew.  Self-loops and
/// duplicates are dropped, isolated nodes allowed.
CsrGraph rmat(std::size_t scale, std::size_t edge_factor, stats::Rng& rng,
              double a = 0.57, double b = 0.19, double c = 0.19);

/// 2-D grid graph (rows x cols), the partitioner's best case.
CsrGraph grid_2d(std::size_t rows, std::size_t cols);

/// Erdős–Rényi G(n, p).
CsrGraph erdos_renyi(std::size_t n, double p, stats::Rng& rng);

}  // namespace sagesim::graph
