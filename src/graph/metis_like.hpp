// Multilevel k-way partitioner in the METIS family (Karypis & Kumar 1998):
// heavy-edge-matching coarsening, greedy region-growing initial partition,
// and Fiduccia–Mattheyses-style boundary refinement during uncoarsening.
//
// This is a from-scratch reimplementation of the algorithmic scheme, not of
// METIS's code; it delivers the property the course's labs depend on —
// edge cuts far below random partitioning at comparable balance.
#pragma once

#include <cstdint>

#include "graph/partition.hpp"

namespace sagesim::graph {

struct MetisOptions {
  std::uint64_t seed{1};
  /// Stop coarsening once the graph has at most max(coarsen_target,
  /// 30 * k) nodes.
  std::size_t coarsen_target{200};
  /// Maximum refinement sweeps per level.
  int refine_passes{8};
  /// Allowed imbalance: parts may exceed ideal weight by this factor.
  double imbalance{1.05};
  /// Disable refinement (ablation knob for the partition bench).
  bool refine{true};
};

/// Partitions @p g into @p k parts.  Throws std::invalid_argument for
/// k <= 0 or k > num_nodes.
Partition metis_like(const CsrGraph& g, int k, const MetisOptions& opts = {});

}  // namespace sagesim::graph
