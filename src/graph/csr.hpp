// Undirected graphs in CSR form, plus the normalized adjacency operator
// GCNs need (Â = D^-1/2 (A + I) D^-1/2, Kipf & Welling 2017).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mem/buffer.hpp"
#include "runtime/status.hpp"

namespace sagesim::gpu {
class Device;
}

namespace sagesim::graph {

using NodeId = std::uint32_t;

/// Compressed-sparse-row undirected graph.  Every undirected edge {u, v} is
/// stored twice (u→v and v→u); self-loops are stored once.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an edge list over @p num_nodes nodes.  Duplicate edges are
  /// collapsed; self-loops in the input are rejected (add them via the
  /// normalized operator instead).  Throws std::invalid_argument for
  /// out-of-range endpoints or u == v.
  static CsrGraph from_edges(std::size_t num_nodes,
                             std::span<const std::pair<NodeId, NodeId>> edges);

  std::size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_edges() const { return adjacency_.size() / 2; }  ///< undirected count
  std::size_t num_directed_edges() const { return adjacency_.size(); }

  /// Neighbors of @p u, ascending.
  std::span<const NodeId> neighbors(NodeId u) const;

  std::size_t degree(NodeId u) const;

  /// True when {u, v} is an edge (binary search).
  bool has_edge(NodeId u, NodeId v) const;

  std::span<const std::size_t> offsets() const { return offsets_; }
  std::span<const NodeId> adjacency() const { return adjacency_; }

  /// All undirected edges (u < v), for serialization and partitioners.
  std::vector<std::pair<NodeId, NodeId>> edge_list() const;

  /// Moves the index arrays to @p device (accounted H2D) / back to host.
  Status to_device(gpu::Device& device, int stream = 0);
  Status to_host(int stream = 0);
  mem::Placement placement() const { return offsets_.placement(); }

 private:
  mem::TypedBuffer<std::size_t> offsets_;  ///< size num_nodes + 1
  mem::TypedBuffer<NodeId> adjacency_;     ///< concatenated sorted neighbors
};

/// Symmetric-normalized adjacency with self-loops in CSR form, stored with
/// explicit weights: Â[u][v] = 1 / sqrt((deg(u)+1)(deg(v)+1)).
struct NormalizedAdjacency {
  mem::TypedBuffer<std::size_t> offsets;
  mem::TypedBuffer<NodeId> columns;
  mem::TypedBuffer<float> values;

  std::size_t num_nodes() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::size_t nnz() const { return columns.size(); }

  /// Moves all three arrays to @p device (accounted H2D) / back to host.
  /// A partial failure (device OOM mid-move) leaves the moved arrays on the
  /// device and the rest on the host; placement() reports the offsets array.
  Status to_device(gpu::Device& device, int stream = 0);
  Status to_host(int stream = 0);
  mem::Placement placement() const { return offsets.placement(); }
};

/// Computes Â = D^-1/2 (A + I) D^-1/2 for @p g.
NormalizedAdjacency normalized_adjacency(const CsrGraph& g);

/// Induced subgraph over @p nodes (plus a mapping back to the original
/// ids).  Edges with exactly one endpoint inside are dropped (the "halo"
/// loss that makes naive partitioned GCN training approximate — the effect
/// the course has students investigate).
struct Subgraph {
  CsrGraph graph;
  std::vector<NodeId> global_ids;        ///< local -> global
  std::size_t cut_edges_dropped{0};      ///< boundary edges lost
};
Subgraph induced_subgraph(const CsrGraph& g, std::span<const NodeId> nodes);

}  // namespace sagesim::graph
