// Classic graph utilities used by labs and sanity checks: BFS distances,
// connected components, degree histograms, and edge-list serialization.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace sagesim::graph {

/// Marker for unreachable nodes in bfs_distances.
constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// Hop distance from @p source to every node (kUnreachable if none).
std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, NodeId source);

/// Connected-component labels in [0, count); nodes in the same component
/// share a label, labels are assigned in discovery order.
struct Components {
  std::vector<int> label;  ///< per node
  int count{0};
  /// Size of each component.
  std::vector<std::size_t> sizes;
};
Components connected_components(const CsrGraph& g);

/// counts[d] = number of nodes with degree d (up to the max degree).
std::vector<std::size_t> degree_histogram(const CsrGraph& g);

/// Writes "num_nodes\nu v\n..." (one undirected edge per line, u < v).
void write_edge_list(const CsrGraph& g, std::ostream& os);
void write_edge_list(const CsrGraph& g, const std::string& path);

/// Reads the write_edge_list format.  Throws std::runtime_error on
/// malformed input.
CsrGraph read_edge_list(std::istream& is);
CsrGraph read_edge_list(const std::string& path);

}  // namespace sagesim::graph
