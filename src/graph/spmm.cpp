#include "graph/spmm.hpp"

#include <stdexcept>

namespace sagesim::graph {

void spmm(gpu::Device* dev, const NormalizedAdjacency& a,
          const tensor::Tensor& x, tensor::Tensor& y) {
  const std::size_t n = a.num_nodes();
  if (x.rows() != n)
    throw std::invalid_argument("spmm: X has " + std::to_string(x.rows()) +
                                " rows, operator has " + std::to_string(n));
  tensor::require_same_shape(x, y, "spmm");
  const std::size_t d = x.cols();
  const float* px = x.data();
  float* py = y.data();
  const auto* offs = a.offsets.data();
  const auto* cols = a.columns.data();
  const auto* vals = a.values.data();

  auto row_op = [=](std::size_t r) {
    float* out = py + r * d;
    for (std::size_t c = 0; c < d; ++c) out[c] = 0.0f;
    for (std::size_t e = offs[r]; e < offs[r + 1]; ++e) {
      const float w = vals[e];
      const float* in = px + static_cast<std::size_t>(cols[e]) * d;
      for (std::size_t c = 0; c < d; ++c) out[c] += w * in[c];
    }
  };

  if (dev != nullptr) {
    dev->launch_linear("spmm_csr", n, 128, [&](const gpu::ThreadCtx& ctx) {
      const std::size_t r = ctx.global_x();
      row_op(r);
      const double row_nnz =
          static_cast<double>(offs[r + 1]) - static_cast<double>(offs[r]);
      ctx.add_flops(2.0 * row_nnz * static_cast<double>(d));
      // Gather-heavy: each nonzero pulls a full feature row.
      ctx.add_bytes((row_nnz * static_cast<double>(d) +
                     static_cast<double>(d)) *
                        sizeof(float) +
                    row_nnz * (sizeof(NodeId) + sizeof(float)));
    });
  } else {
    for (std::size_t r = 0; r < n; ++r) row_op(r);
  }
}

}  // namespace sagesim::graph
