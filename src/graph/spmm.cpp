#include "graph/spmm.hpp"

#include <algorithm>
#include <stdexcept>

#if defined(__GNUC__) && defined(__x86_64__)
#include <immintrin.h>
#endif

#include "compute/plan.hpp"
#include "gpusim/executor.hpp"
#include "tensor/gemm_host.hpp"

namespace sagesim::graph {

namespace {

void check_shapes(const NormalizedAdjacency& a, const tensor::Tensor& x,
                  const tensor::Tensor& y) {
  if (x.rows() != a.num_nodes())
    throw std::invalid_argument("spmm: X has " + std::to_string(x.rows()) +
                                " rows, operator has " +
                                std::to_string(a.num_nodes()));
  tensor::require_same_shape(x, y, "spmm");
}

}  // namespace

namespace detail {

void spmm_host_reference(const NormalizedAdjacency& a, const tensor::Tensor& x,
                         tensor::Tensor& y) {
  check_shapes(a, x, y);
  const std::size_t d = x.cols();
  const float* px = x.data();
  float* py = y.data();
  const auto* offs = a.offsets.data();
  const auto* cols = a.columns.data();
  const auto* vals = a.values.data();
  for (std::size_t r = 0; r < a.num_nodes(); ++r) {
    float* out = py + r * d;
    for (std::size_t c = 0; c < d; ++c) out[c] = 0.0f;
    for (std::size_t e = offs[r]; e < offs[r + 1]; ++e) {
      const float w = vals[e];
      const float* in = px + static_cast<std::size_t>(cols[e]) * d;
      for (std::size_t c = 0; c < d; ++c) out[c] += w * in[c];
    }
  }
}

namespace {

// Minimum rows per parallel chunk: below this the per-task overhead rivals
// the row work, so small graphs run on the calling thread (the min-grain
// knob, fed to parallel_for as grain = kMinRowsPerChunk / row_block).
constexpr std::size_t kMinRowsPerChunk = 2048;
// Floats per register-accumulated feature tile on the portable path.
// 16 floats fill four 128-bit vector registers at the baseline ISA — the
// whole tile of accumulators lives in registers across a row's edge loop,
// so each output cell is one store instead of a read-modify-write per
// incident edge.  (Wider tiles defeat GCC's scalar replacement and fall
// back to stack traffic.)
constexpr std::size_t kFeatTile = 16;

/// Accumulates one row's feature tile [c0, c0 + cw), cw <= kFeatTile, over
/// edges [e0, e1).  Edge order is ascending, matching the reference row
/// loop bit-for-bit.
void row_tile(const float* __restrict px, const float* __restrict vals,
              const NodeId* __restrict cols, std::size_t e0, std::size_t e1,
              std::size_t d, std::size_t c0, std::size_t cw,
              float* __restrict out) {
  float acc[kFeatTile] = {};
  for (std::size_t e = e0; e < e1; ++e) {
    const float w = vals[e];
    const float* __restrict in =
        px + static_cast<std::size_t>(cols[e]) * d + c0;
    for (std::size_t c = 0; c < cw; ++c) acc[c] += w * in[c];
  }
  for (std::size_t c = 0; c < cw; ++c) out[c] = acc[c];
}

/// Full-tile specialization: compile-time trip count so the accumulators
/// are scalar-replaced into registers.
void row_tile_full(const float* __restrict px, const float* __restrict vals,
                   const NodeId* __restrict cols, std::size_t e0,
                   std::size_t e1, std::size_t d, std::size_t c0,
                   float* __restrict out) {
  float acc[kFeatTile] = {};
  for (std::size_t e = e0; e < e1; ++e) {
    const float w = vals[e];
    const float* __restrict in =
        px + static_cast<std::size_t>(cols[e]) * d + c0;
    for (std::size_t c = 0; c < kFeatTile; ++c) acc[c] += w * in[c];
  }
  for (std::size_t c = 0; c < kFeatTile; ++c) out[c] = acc[c];
}

void row_block_portable(const float* px, const float* vals,
                        const NodeId* cols, const std::size_t* offs,
                        std::size_t r0, std::size_t r1, std::size_t d,
                        float* py) {
  for (std::size_t r = r0; r < r1; ++r) {
    const std::size_t e0 = offs[r], e1 = offs[r + 1];
    std::size_t c0 = 0;
    // Feature tiles innermost: the row's edge list stays L1-hot across
    // tiles while each tile's accumulators stay in registers.
    for (; c0 + kFeatTile <= d; c0 += kFeatTile)
      row_tile_full(px, vals, cols, e0, e1, d, c0, py + r * d + c0);
    if (c0 < d)
      row_tile(px, vals, cols, e0, e1, d, c0, d - c0, py + r * d + c0);
  }
}

#if defined(__GNUC__) && defined(__x86_64__)
#define SAGESIM_SPMM_AVX2 1

/// AVX2 row kernel: NG groups of 8 lanes held in ymm accumulators across
/// the whole edge loop.  Plain vmulps/vaddps (no FMA), per-lane in
/// ascending edge order, so results are bit-identical to the scalar
/// reference.  Gathered rows a few edges ahead are prefetched — the edge
/// stream makes the gather addresses perfectly predictable in software but
/// opaque to the hardware prefetcher.
template <int NG>
__attribute__((target("avx2"))) void row_avx2(
    const float* __restrict px, const float* __restrict vals,
    const NodeId* __restrict cols, std::size_t e0, std::size_t e1,
    std::size_t d, std::size_t c0, float* __restrict out) {
  constexpr std::size_t kPrefetchDist = 8;
  __m256 acc[NG];
  for (int g = 0; g < NG; ++g) acc[g] = _mm256_setzero_ps();
  for (std::size_t e = e0; e < e1; ++e) {
    if (e + kPrefetchDist < e1) {
      const float* nxt =
          px + static_cast<std::size_t>(cols[e + kPrefetchDist]) * d + c0;
      _mm_prefetch(reinterpret_cast<const char*>(nxt), _MM_HINT_T0);
      if (NG > 2)
        _mm_prefetch(reinterpret_cast<const char*>(nxt + 16), _MM_HINT_T0);
    }
    const __m256 w = _mm256_set1_ps(vals[e]);
    const float* in = px + static_cast<std::size_t>(cols[e]) * d + c0;
    for (int g = 0; g < NG; ++g)
      acc[g] = _mm256_add_ps(acc[g],
                             _mm256_mul_ps(w, _mm256_loadu_ps(in + 8 * g)));
  }
  for (int g = 0; g < NG; ++g) _mm256_storeu_ps(out + 8 * g, acc[g]);
}

/// @p tile_width caps the widest ymm tile (the autotuned knob): 64 runs the
/// 8-group kernel where it fits, 32 and 16 stop the cascade earlier —
/// narrower tiles re-walk the edge list more often but keep more of the
/// gathered X rows L1-resident per pass.
__attribute__((target("avx2"))) void row_block_avx2(
    const float* px, const float* vals, const NodeId* cols,
    const std::size_t* offs, std::size_t r0, std::size_t r1, std::size_t d,
    std::size_t tile_width, float* py) {
  for (std::size_t r = r0; r < r1; ++r) {
    const std::size_t e0 = offs[r], e1 = offs[r + 1];
    std::size_t c0 = 0;
    if (tile_width >= 64)
      for (; c0 + 64 <= d; c0 += 64)
        row_avx2<8>(px, vals, cols, e0, e1, d, c0, py + r * d + c0);
    if (tile_width >= 32)
      for (; c0 + 32 <= d; c0 += 32)
        row_avx2<4>(px, vals, cols, e0, e1, d, c0, py + r * d + c0);
    if (tile_width >= 16)
      for (; c0 + 16 <= d; c0 += 16)
        row_avx2<2>(px, vals, cols, e0, e1, d, c0, py + r * d + c0);
    for (; c0 + 8 <= d; c0 += 8)
      row_avx2<1>(px, vals, cols, e0, e1, d, c0, py + r * d + c0);
    if (c0 < d)
      row_tile(px, vals, cols, e0, e1, d, c0, d - c0, py + r * d + c0);
  }
}

bool spmm_use_avx2() {
  static const bool v = __builtin_cpu_supports("avx2") > 0;
  return v;
}
#endif  // SAGESIM_SPMM_AVX2

}  // namespace

void spmm_host_blocked(const NormalizedAdjacency& a, const tensor::Tensor& x,
                       tensor::Tensor& y) {
  spmm_host_blocked_tiled(a, x, y,
                          compute::Autotuner::shared().spmm_tiling(
                              a.num_nodes(), a.nnz(), x.cols()));
}

void spmm_host_blocked_tiled(const NormalizedAdjacency& a,
                             const tensor::Tensor& x, tensor::Tensor& y,
                             compute::SpmmTiling tiling) {
  check_shapes(a, x, y);
  const std::size_t n = a.num_nodes();
  const std::size_t d = x.cols();
  const float* px = x.data();
  float* py = y.data();
  const auto* offs = a.offsets.data();
  const auto* cols = a.columns.data();
  const auto* vals = a.values.data();
  const std::size_t row_block = std::max<std::size_t>(1, tiling.row_block);
  const std::size_t tile_width = std::max<std::size_t>(8, tiling.tile_width);

  // The plan here is a flat row-block decomposition — no cross-block
  // dependencies — so it maps onto parallel_for with a grain instead of a
  // full dependency graph.  Each output row belongs to exactly one block
  // and keeps its ascending-edge fold, so worker count and tiling never
  // perturb result bits.
  auto block_op = [=](std::size_t blk) {
    const std::size_t r0 = blk * row_block;
    const std::size_t r1 = std::min(r0 + row_block, n);
#if defined(SAGESIM_SPMM_AVX2)
    if (spmm_use_avx2()) {
      row_block_avx2(px, vals, cols, offs, r0, r1, d, tile_width, py);
      return;
    }
#endif
    (void)tile_width;  // portable tile is fixed at kFeatTile
    row_block_portable(px, vals, cols, offs, r0, r1, d, py);
  };

  const std::size_t blocks = (n + row_block - 1) / row_block;
  if (blocks <= 1) {
    for (std::size_t b = 0; b < blocks; ++b) block_op(b);
    return;
  }
  const std::uint64_t grain =
      std::max<std::uint64_t>(1, kMinRowsPerChunk / row_block);
  compute::executor().parallel_for(
      blocks, [&](std::uint64_t b) { block_op(static_cast<std::size_t>(b)); },
      grain);
}

}  // namespace detail

void spmm(gpu::Device* dev, const NormalizedAdjacency& a,
          const tensor::Tensor& x, tensor::Tensor& y) {
  check_shapes(a, x, y);
  const std::size_t n = a.num_nodes();
  const std::size_t d = x.cols();
  const float* px = x.data();
  float* py = y.data();
  const auto* offs = a.offsets.data();
  const auto* cols = a.columns.data();
  const auto* vals = a.values.data();

  if (dev != nullptr) {
    dev->launch_linear("spmm_csr", n, 128, [&](const gpu::ThreadCtx& ctx) {
      const std::size_t r = ctx.global_x();
      float* out = py + r * d;
      for (std::size_t c = 0; c < d; ++c) out[c] = 0.0f;
      for (std::size_t e = offs[r]; e < offs[r + 1]; ++e) {
        const float w = vals[e];
        const float* in = px + static_cast<std::size_t>(cols[e]) * d;
        for (std::size_t c = 0; c < d; ++c) out[c] += w * in[c];
      }
      const double row_nnz =
          static_cast<double>(offs[r + 1]) - static_cast<double>(offs[r]);
      ctx.add_flops(2.0 * row_nnz * static_cast<double>(d));
      // Gather-heavy: each nonzero pulls a full feature row.
      ctx.add_bytes((row_nnz * static_cast<double>(d) +
                     static_cast<double>(d)) *
                        sizeof(float) +
                    row_nnz * (sizeof(NodeId) + sizeof(float)));
    });
    return;
  }
  if (tensor::ops::host_backend() == tensor::ops::HostBackend::kNaive)
    detail::spmm_host_reference(a, x, y);
  else
    detail::spmm_host_blocked(a, x, y);
}

}  // namespace sagesim::graph
