// Double-buffered async host→device prefetch for sampled mini-batches —
// the cp.async pipeline pattern at batch granularity: while batch i trains
// on stream 0, lookahead tasks on the work-stealing runtime sample batch
// i+1..i+depth and stage their H2D copies on a dedicated transfer stream,
// fenced back to compute with a recorded event.  The PCIe time of a staged
// batch then overlaps kernel time the same way PR 5 hid allreduce hops.
//
// With `enabled = false` the pipeline degenerates to the synchronous
// control: sample on the calling thread and stage on stream 0, where every
// copy serializes against compute — the baseline the overlap bench and the
// ≥50%-hidden acceptance claim compare against.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "gpusim/stream.hpp"
#include "graph/sampler.hpp"
#include "runtime/future.hpp"

namespace sagesim::gpu {
class Device;
}
namespace sagesim::runtime {
class Scheduler;
}

namespace sagesim::graph {

struct PrefetchOptions {
  /// Batches in flight ahead of the consumer (>= 1; 2 == double buffering).
  std::size_t depth{2};
  /// false == the synchronous control path (no lookahead, stage on the
  /// compute stream).
  bool enabled{true};
};

/// A sampled batch plus its staging fence.  When `on_device` is set the
/// consumer must make its compute stream wait on `ready` before launching
/// kernels that read the batch (Device::wait_event).
struct StagedBatch {
  MiniBatch batch;
  bool on_device{false};
  gpu::Event ready{};
};

/// Pull-based pipeline over a deterministic (epoch, index) batch schedule.
/// The consumer calls next() once per batch; the pipeline keeps up to
/// `depth` sample+stage tasks in flight on the scheduler.  Batches come
/// back in schedule order — and carry data that is bit-identical to the
/// synchronous path, because sampling is counter-based and staging only
/// moves bytes.
class PrefetchPipeline {
 public:
  /// Produces the seed nodes of (epoch, index).  Must be pure — lookahead
  /// tasks call it from scheduler workers.
  using SeedFn =
      std::function<std::vector<NodeId>(std::uint64_t, std::uint64_t)>;

  /// Iterates epochs x batches_per_epoch batches starting at flat batch
  /// `start_batch` (epoch = flat / batches_per_epoch — the restart entry
  /// point).  @p device may be null for a host-only pipeline (no staging).
  PrefetchPipeline(NeighborSampler& sampler, SeedFn seeds,
                   std::uint64_t epochs, std::uint64_t batches_per_epoch,
                   std::uint64_t start_batch, gpu::Device* device,
                   runtime::Scheduler& scheduler, PrefetchOptions options);

  /// Drains in-flight lookahead tasks before dying.
  ~PrefetchPipeline();

  PrefetchPipeline(const PrefetchPipeline&) = delete;
  PrefetchPipeline& operator=(const PrefetchPipeline&) = delete;

  std::uint64_t total_batches() const { return total_; }
  bool done() const { return next_out_ >= total_; }
  /// The dedicated transfer stream (-1 until first used / disabled).
  int transfer_stream() const { return transfer_stream_; }

  /// The next batch in schedule order; kOutOfRange once exhausted.
  Expected<StagedBatch> next();

 private:
  using Slot = runtime::Future<std::shared_ptr<Expected<StagedBatch>>>;

  Expected<StagedBatch> produce(std::uint64_t flat);
  void fill();

  NeighborSampler* sampler_;
  SeedFn seeds_;
  std::uint64_t batches_per_epoch_;
  std::uint64_t total_;
  gpu::Device* device_;
  runtime::Scheduler* scheduler_;
  PrefetchOptions options_;
  int transfer_stream_{-1};

  std::uint64_t next_submit_{0};
  std::uint64_t next_out_{0};
  std::deque<Slot> in_flight_;
};

}  // namespace sagesim::graph
