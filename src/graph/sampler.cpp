#include "graph/sampler.hpp"

#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "gpusim/device.hpp"

namespace sagesim::graph {

Status MiniBatch::to_device(gpu::Device& device, int stream) {
  Status s = features.to_device(device, stream);
  if (!s.ok()) return s;
  return adj.to_device(device, stream);
}

NeighborSampler::NeighborSampler(ShardStore& store, OocFeatureSpec features,
                                 SamplerConfig config)
    : store_(&store), features_(features), config_(std::move(config)) {
  if (config_.fanouts.empty())
    throw std::invalid_argument("NeighborSampler: fanouts must be non-empty");
  for (const std::uint32_t f : config_.fanouts)
    if (f == 0)
      throw std::invalid_argument("NeighborSampler: fanouts must be >= 1");
}

Expected<MiniBatch> NeighborSampler::sample(std::uint64_t epoch,
                                            std::uint64_t index,
                                            std::span<const NodeId> seeds) {
  if (seeds.empty())
    throw std::invalid_argument("NeighborSampler::sample: no seeds");
  const std::size_t n = store_->meta().num_nodes;

  MiniBatch batch;
  batch.epoch = epoch;
  batch.index = index;
  batch.nodes.reserve(seeds.size() * (config_.fanouts[0] + 1));
  std::unordered_map<NodeId, std::uint32_t> local_of;
  local_of.reserve(batch.nodes.capacity());
  for (const NodeId u : seeds) {
    if (static_cast<std::size_t>(u) >= n)
      throw std::invalid_argument("NeighborSampler::sample: seed out of range");
    if (!local_of.emplace(u, static_cast<std::uint32_t>(batch.nodes.size()))
             .second)
      throw std::invalid_argument("NeighborSampler::sample: duplicate seed");
    batch.nodes.push_back(u);
  }
  batch.num_seeds = seeds.size();

  // Shard pins held for the whole batch: an LRU eviction racing this
  // sampler cannot invalidate the neighbor spans below.
  std::unordered_map<std::size_t, std::shared_ptr<const GraphShard>> pins;
  const std::uint64_t misses_before = store_->stats().loads;
  auto neighbors_of =
      [&](NodeId u) -> Expected<std::span<const NodeId>> {
    const std::size_t s = store_->meta().shard_of(u);
    auto it = pins.find(s);
    if (it == pins.end()) {
      Expected<std::shared_ptr<const GraphShard>> shard = store_->acquire(s);
      if (!shard) return shard.status();
      it = pins.emplace(s, std::move(*shard)).first;
    }
    return it->second->neighbors(u);
  };

  // Layer-wise frontier expansion with fixed fanout.  The iteration order
  // (insertion order of `nodes`) and every pick (hashed counters) are
  // deterministic, so local ids — and with them every downstream float —
  // are reproducible regardless of threading.
  std::vector<std::pair<NodeId, NodeId>> edges;  // local ids
  std::vector<NodeId> frontier(seeds.begin(), seeds.end());
  std::vector<NodeId> next;
  std::vector<std::uint32_t> picked;
  const std::uint64_t h_batch =
      mix64(mix64(config_.seed, epoch), index);
  for (std::size_t layer = 0; layer < config_.fanouts.size(); ++layer) {
    const std::uint32_t fanout = config_.fanouts[layer];
    next.clear();
    for (const NodeId u : frontier) {
      const std::uint32_t deg = store_->degree(u);
      if (deg == 0) continue;
      Expected<std::span<const NodeId>> nb = neighbors_of(u);
      if (!nb) return nb.status();
      const std::uint32_t lu = local_of.find(u)->second;
      auto take = [&](NodeId w) {
        auto [it, fresh] = local_of.emplace(
            w, static_cast<std::uint32_t>(batch.nodes.size()));
        if (fresh) {
          batch.nodes.push_back(w);
          next.push_back(w);
        }
        edges.emplace_back(lu, it->second);
      };
      if (deg <= fanout) {
        for (const NodeId w : *nb) take(w);
      } else {
        // Without replacement via rejection on hashed counters; fanout is
        // small, so the linear duplicate scan beats a set.
        const std::uint64_t h_node =
            mix64(mix64(h_batch, u), static_cast<std::uint64_t>(layer));
        picked.clear();
        for (std::uint64_t c = 0; picked.size() < fanout; ++c) {
          const auto idx =
              static_cast<std::uint32_t>(mix64(h_node, c) % deg);
          bool dup = false;
          for (const std::uint32_t p : picked)
            if (p == idx) {
              dup = true;
              break;
            }
          if (dup) continue;
          picked.push_back(idx);
          take((*nb)[idx]);
        }
      }
    }
    frontier.swap(next);
  }
  batch.shard_misses =
      static_cast<std::size_t>(store_->stats().loads - misses_before);

  // The sampled subgraph becomes a symmetric normalized operator —
  // from_edges dedupes and mirrors every (parent, child) pair, keeping Â
  // symmetric, which GcnConv::backward relies on.
  const CsrGraph sub = CsrGraph::from_edges(batch.nodes.size(), edges);
  batch.sampled_edges = sub.num_edges();
  batch.adj = normalized_adjacency(sub);

  batch.features = tensor::Tensor(batch.nodes.size(), features_.dim);
  ooc_fill_features(features_, batch.nodes, batch.features);
  batch.labels.resize(batch.nodes.size());
  for (std::size_t i = 0; i < batch.nodes.size(); ++i)
    batch.labels[i] = ooc_label(features_, batch.nodes[i]);
  batch.seed_rows.resize(batch.num_seeds);
  for (std::uint32_t i = 0; i < batch.num_seeds; ++i) batch.seed_rows[i] = i;
  return batch;
}

std::size_t batches_per_epoch(NodeId begin, NodeId end,
                              std::size_t batch_size) {
  if (end <= begin || batch_size == 0) return 0;
  return static_cast<std::size_t>(end - begin) / batch_size;
}

std::vector<NodeId> schedule_seeds(NodeId begin, NodeId end,
                                   std::size_t batch_size, std::uint64_t seed,
                                   std::uint64_t epoch, std::uint64_t index) {
  const std::uint64_t range = end - begin;
  if (range == 0 || batch_size == 0 ||
      (index + 1) * batch_size > range / batch_size * batch_size)
    throw std::invalid_argument("schedule_seeds: batch out of range");
  const std::uint64_t key = mix64(seed ^ 0x5eedULL, epoch);
  std::vector<NodeId> out;
  out.reserve(batch_size);
  for (std::size_t j = 0; j < batch_size; ++j) {
    const std::uint64_t pos = index * batch_size + j;
    out.push_back(begin +
                  static_cast<NodeId>(permuted_index(pos, range, key)));
  }
  return out;
}

}  // namespace sagesim::graph
