// Out-of-core graphs: sharded RMAT generation, an LRU shard store, and
// deterministic on-the-fly features — the layer that lets Algorithm 1 train
// on million-node graphs whose edge list never fits in memory at once.
//
// The in-core generators (generators.hpp) materialize the full edge list and
// dedupe through a std::set; that caps out around scale 20.  Here the
// generator streams fixed-size edge blocks (each block seeded independently,
// so generation is deterministic and restartable), spills every directed
// edge to its owner shard's file, then builds one compact CSR shard at a
// time.  Peak memory during generation is one shard's edges, not the graph.
//
// At training time a ShardStore pages shards in on demand (LRU, bounded
// resident set, TypedBuffer-backed so the pool's resident gauge sees every
// byte), the neighbor sampler reads through it, and features/labels are
// hashed from node ids instead of stored — so a "4M nodes x 128 features"
// dataset occupies zero resident bytes until a mini-batch gathers its rows.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "mem/buffer.hpp"
#include "runtime/status.hpp"

namespace sagesim::tensor {
class Tensor;
}

namespace sagesim::graph {

/// 64-bit edge index/count.  RMAT at scale 22 with edge_factor 16+ crosses
/// 2^31 directed edges; every cumulative edge quantity in the out-of-core
/// layer uses this type (the 32-bit-offset audit in test_graph pins it).
using EdgeIdx = std::uint64_t;

/// splitmix64-style stateless mixer.  Chained — mix64(mix64(seed, a), b) —
/// it gives the out-of-core layer counter-based randomness: every feature
/// value, label and neighbor pick is a pure function of (seed, identifiers),
/// independent of thread count, evaluation order and restarts.
std::uint64_t mix64(std::uint64_t h, std::uint64_t v);

/// Parameters for sharded RMAT generation (Graph500-style: `target_edges`
/// draws from the recursive quadrant distribution; self-loops are dropped
/// and duplicate directed edges collapse during the per-shard dedupe, so
/// the realized edge count is slightly below the target).
struct OocRmatParams {
  std::size_t scale{20};        ///< num_nodes = 2^scale; valid range [1, 28]
  std::size_t edge_factor{8};   ///< target undirected edges per node
  double a{0.57};               ///< RMAT quadrant probabilities (d = 1-a-b-c)
  double b{0.19};
  double c{0.19};
  std::uint64_t seed{42};
  /// Node-range width of one shard; shard i owns nodes
  /// [i*nodes_per_shard, (i+1)*nodes_per_shard).
  std::size_t nodes_per_shard{1u << 16};
  /// Edges drawn per independently-seeded generation block.  Blocks make
  /// generation deterministic without one long RNG stream.
  std::size_t block_edges{1u << 20};
  std::string dir;              ///< where shard/meta files are written

  std::size_t num_nodes() const { return std::size_t{1} << scale; }
  EdgeIdx target_edges() const {
    return static_cast<EdgeIdx>(num_nodes()) * edge_factor;
  }
};

/// On-disk layout descriptor, written to <dir>/meta.txt by the generator
/// and reloaded by load_ooc_meta.
struct OocGraphMeta {
  std::string dir;
  std::size_t num_nodes{0};
  std::size_t nodes_per_shard{0};
  std::size_t num_shards{0};
  EdgeIdx num_directed_edges{0};  ///< realized (post-dedupe), both directions
  std::uint64_t seed{0};

  std::size_t shard_of(NodeId u) const {
    return static_cast<std::size_t>(u) / nodes_per_shard;
  }

  /// Bytes a monolithic in-core CsrGraph of this graph would occupy
  /// (offsets + adjacency) — the denominator of "never materialize the
  /// full graph" assertions.
  EdgeIdx full_csr_bytes() const;
};

/// Streams RMAT edges into per-shard spill files, then builds one CSR shard
/// file at a time plus a resident degree index.  Never holds more than one
/// shard's edge list in memory.  Overwrites any previous graph in dir.
Expected<OocGraphMeta> build_sharded_rmat(const OocRmatParams& params);

/// Reloads the metadata of a previously generated graph.
Expected<OocGraphMeta> load_ooc_meta(const std::string& dir);

/// One resident shard: a local CSR over the contiguous node range
/// [first_node, first_node + num_nodes).  Offsets are local (start at 0)
/// but 64-bit — a single hub shard of a scale-24/ef-16 graph can exceed
/// 2^31 edge endpoints on its own.
struct GraphShard {
  std::size_t index{0};
  NodeId first_node{0};
  std::size_t num_nodes{0};
  mem::TypedBuffer<EdgeIdx> offsets;   ///< size num_nodes + 1
  mem::TypedBuffer<NodeId> adjacency;  ///< sorted neighbors, concatenated

  std::size_t resident_bytes() const {
    return offsets.size() * sizeof(EdgeIdx) +
           adjacency.size() * sizeof(NodeId);
  }

  /// Neighbors of global node @p u (must be owned by this shard), ascending.
  std::span<const NodeId> neighbors(NodeId u) const {
    const std::size_t i = static_cast<std::size_t>(u - first_node);
    return {adjacency.data() + offsets[i],
            static_cast<std::size_t>(offsets[i + 1] - offsets[i])};
  }
};

struct ShardStoreStats {
  std::uint64_t loads{0};           ///< shard files read from disk
  std::uint64_t hits{0};            ///< acquires served from the cache
  std::uint64_t evictions{0};       ///< shards dropped by the LRU policy
  std::uint64_t bytes_loaded{0};    ///< cumulative bytes read
  std::uint64_t resident_bytes{0};  ///< shards currently cached
  std::uint64_t resident_peak_bytes{0};
};

/// Demand-paged access to the shards of one on-disk graph.  Thread-safe:
/// concurrent samplers acquire() shards while the LRU evicts others —
/// acquire returns a shared_ptr pin, so an evicted shard stays valid for
/// readers that still hold it and its memory returns to the pool when the
/// last pin drops.  Loads/evictions also tick the process-wide
/// prof::counter("graph.shard_loads"/"graph.shard_evictions").
class ShardStore {
 public:
  /// Opens @p meta's directory and loads the degree index (4 bytes/node,
  /// the only always-resident per-node state).  @p max_resident_shards
  /// bounds the cache (>= 1).
  static Expected<ShardStore> open(const OocGraphMeta& meta,
                                   std::size_t max_resident_shards);

  ShardStore(ShardStore&&) = default;
  ShardStore& operator=(ShardStore&&) = default;

  const OocGraphMeta& meta() const { return meta_; }

  std::uint32_t degree(NodeId u) const { return degrees_[u]; }
  std::span<const std::uint32_t> degrees() const { return degrees_.span(); }

  /// The shard, loading it from disk on a cache miss (and evicting the
  /// least-recently-used shard beyond the resident bound).
  Expected<std::shared_ptr<const GraphShard>> acquire(std::size_t shard);

  ShardStoreStats stats() const;

 private:
  ShardStore() = default;

  struct Cached {
    std::shared_ptr<const GraphShard> shard;
    std::uint64_t tick{0};
  };

  OocGraphMeta meta_;
  std::size_t max_resident_{1};
  mem::TypedBuffer<std::uint32_t> degrees_;

  std::unique_ptr<std::mutex> mutex_{std::make_unique<std::mutex>()};
  std::unordered_map<std::size_t, Cached> cache_;
  std::uint64_t tick_{0};
  ShardStoreStats stats_;
};

/// Deterministic synthetic supervision for out-of-core graphs: the label is
/// a hash of the node id, features are hashed uniform noise plus `signal`
/// added over the label's slice of the feature vector — learnable by a
/// linear layer, bit-identical regardless of gather order, and occupying
/// zero bytes until a mini-batch materializes its rows.
struct OocFeatureSpec {
  std::size_t dim{64};
  int num_classes{16};
  float signal{1.0f};   ///< added over the label's feature slice
  float noise{0.5f};    ///< amplitude of the uniform background
  std::uint64_t seed{0x5eedf00d};
};

int ooc_label(const OocFeatureSpec& spec, NodeId u);

/// Fills @p out (host tensor, nodes.size() x spec.dim) with the feature rows
/// of @p nodes, in order.
void ooc_fill_features(const OocFeatureSpec& spec,
                       std::span<const NodeId> nodes, tensor::Tensor& out);

/// Bytes an in-core run of this graph + feature set would keep resident:
/// full CSR, normalized adjacency (values + self-loops), feature matrix and
/// labels.  The out-of-core memory-ceiling tests assert the pool peak stays
/// far below this.
EdgeIdx full_materialization_bytes(const OocGraphMeta& meta,
                                   const OocFeatureSpec& spec);

/// Streaming edge-balanced partitioner: splits [0, num_nodes) into
/// @p parts contiguous ranges of roughly equal total degree using only the
/// resident degree index — the fallback when METIS-style partitioning
/// (which walks the full edge list) no longer fits.  One O(n) pass, no
/// edge I/O.  Every range is non-empty; requires parts <= num_nodes.
std::vector<std::pair<NodeId, NodeId>> degree_balanced_ranges(
    std::span<const std::uint32_t> degrees, int parts);

/// Feistel-style bijective permutation of [0, n): returns the position of
/// @p i under the keyed shuffle.  O(1) memory — epoch-level seed shuffles
/// over millions of nodes never materialize a permutation array.
std::uint64_t permuted_index(std::uint64_t i, std::uint64_t n,
                             std::uint64_t key);

}  // namespace sagesim::graph
