#include "mem/pool.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <iomanip>
#include <new>
#include <sstream>
#include <utility>

#include "gpusim/device.hpp"
#include "prof/check.hpp"

namespace sagesim::mem {

namespace {

/// Pools created through the host_pool()/device_pool() factories, for
/// pool_report().  Entries are never removed: factory pools are leaked by
/// design (buffers freed at static destruction time must still find them).
std::mutex g_registry_mutex;
std::vector<Pool*>& registry() {
  static std::vector<Pool*>* pools = new std::vector<Pool*>();
  return *pools;
}

void register_pool(Pool* pool) {
  std::lock_guard lock(g_registry_mutex);
  registry().push_back(pool);
}

// Process-wide residency gauge + high-water mark: bytes pools currently
// hold from their upstreams (live + cached).  Updated on every upstream
// allocate/free, never on pool hits — recycling a cached block does not
// change how much real memory the process occupies.
std::atomic<std::uint64_t> g_resident_bytes{0};
std::atomic<std::uint64_t> g_resident_peak_bytes{0};

void resident_add(std::uint64_t bytes) {
  const std::uint64_t now =
      g_resident_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t peak = g_resident_peak_bytes.load(std::memory_order_relaxed);
  while (peak < now && !g_resident_peak_bytes.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void resident_sub(std::uint64_t bytes) {
  g_resident_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace

std::uint64_t process_resident_bytes() {
  return g_resident_bytes.load(std::memory_order_relaxed);
}

std::uint64_t process_peak_resident_bytes() {
  return g_resident_peak_bytes.load(std::memory_order_relaxed);
}

void reset_process_peak_resident_bytes() {
  g_resident_peak_bytes.store(g_resident_bytes.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
}

void flush_all_pools() {
  std::vector<Pool*> pools;
  {
    std::lock_guard lock(g_registry_mutex);
    pools = registry();
  }
  for (Pool* p : pools) p->flush();
}

Pool::Pool(std::string name, UpstreamAlloc upstream_alloc,
           UpstreamFree upstream_free, bool enabled)
    : name_(std::move(name)),
      upstream_alloc_(std::move(upstream_alloc)),
      upstream_free_(std::move(upstream_free)),
      enabled_(enabled) {
  if (!upstream_alloc_ || !upstream_free_)
    throw std::invalid_argument("Pool: upstream callbacks must not be null");
}

Pool::~Pool() { flush(); }

std::size_t Pool::size_class(std::size_t bytes) {
  if (bytes == 0 || bytes > kMaxPooled) return 0;
  return std::max(kMinClass, std::bit_ceil(bytes));
}

Expected<void*> Pool::upstream_allocate_locked(std::size_t bytes) {
  Expected<void*> p = upstream_alloc_(bytes);
  if (!p && !free_lists_.empty()) {
    // Cached blocks count against upstream capacity; give them back and
    // retry once before surfacing the failure.
    flush_locked();
    p = upstream_alloc_(bytes);
  }
  if (p) resident_add(bytes);
  return p;
}

void Pool::note_live_locked() {
  stats_.bytes_live_peak = std::max(stats_.bytes_live_peak, stats_.bytes_live);
}

Expected<void*> Pool::allocate(std::size_t bytes) {
  if (bytes == 0)
    return Status::invalid_argument("Pool::allocate: zero-byte request");
  std::lock_guard lock(mutex_);
  const std::size_t cls = enabled_ ? size_class(bytes) : 0;
  if (cls == 0) {
    Expected<void*> p = upstream_allocate_locked(bytes);
    if (!p) return p.status();
    ++stats_.pass_through;
    stats_.bytes_served += bytes;
    stats_.bytes_live += bytes;
    note_live_locked();
    live_.emplace(*p, Live{bytes, 0});
    return *p;
  }
  auto it = free_lists_.find(cls);
  if (it != free_lists_.end() && !it->second.empty()) {
    void* p = it->second.back();
    it->second.pop_back();
    ++stats_.hits;
    stats_.bytes_served += bytes;
    stats_.bytes_cached -= cls;
    stats_.bytes_live += cls;
    note_live_locked();
    live_.emplace(p, Live{cls, cls});
    return p;
  }
  Expected<void*> p = upstream_allocate_locked(cls);
  if (!p) return p.status();
  ++stats_.misses;
  stats_.bytes_served += bytes;
  stats_.bytes_live += cls;
  note_live_locked();
  live_.emplace(*p, Live{cls, cls});
  return *p;
}

void Pool::free(void* ptr) {
  if (ptr == nullptr) return;
  std::lock_guard lock(mutex_);
  auto it = live_.find(ptr);
  if (it == live_.end())
    throw std::invalid_argument("Pool::free: pointer not owned by pool '" +
                                name_ + "'");
  const Live info = it->second;
  live_.erase(it);
  stats_.bytes_live -= info.block_bytes;
  if (info.class_bytes == 0) {
    upstream_free_(ptr);
    resident_sub(info.block_bytes);
    return;
  }
  free_lists_[info.class_bytes].push_back(ptr);
  stats_.bytes_cached += info.class_bytes;
}

void Pool::flush_locked() {
  for (auto& [cls, list] : free_lists_)
    for (void* p : list) {
      upstream_free_(p);
      resident_sub(cls);
    }
  free_lists_.clear();
  stats_.bytes_cached = 0;
  ++stats_.flushes;
}

void Pool::flush() {
  std::lock_guard lock(mutex_);
  flush_locked();
}

PoolStats Pool::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void Pool::reset_stats() {
  std::lock_guard lock(mutex_);
  const std::uint64_t cached = stats_.bytes_cached;
  const std::uint64_t live = stats_.bytes_live;
  const std::uint64_t peak = stats_.bytes_live_peak;
  stats_ = PoolStats{};
  stats_.bytes_cached = cached;
  stats_.bytes_live = live;
  stats_.bytes_live_peak = peak;
}

void Pool::reset_peak() {
  std::lock_guard lock(mutex_);
  stats_.bytes_live_peak = stats_.bytes_live;
}

bool pool_enabled_from_env() {
  const char* v = std::getenv("SAGESIM_MEM_POOL");
  if (v == nullptr) return true;
  const std::string s(v);
  return !(s == "off" || s == "0" || s == "false");
}

Pool& host_pool() {
  static Pool* pool = [] {
    auto* p = new Pool(
        "host",
        [](std::size_t bytes) -> Expected<void*> {
          return ::operator new(bytes, std::align_val_t{64});
        },
        [](void* ptr) { ::operator delete(ptr, std::align_val_t{64}); },
        pool_enabled_from_env());
    register_pool(p);
    return p;
  }();
  return *pool;
}

Pool& device_pool(gpu::Device& device) {
  static std::mutex* map_mutex = new std::mutex();
  static auto* pools = new std::unordered_map<std::uint64_t, Pool*>();
  gpu::Device* dev = &device;
  const std::uint64_t mem_id = device.memory().id();
  std::lock_guard lock(*map_mutex);
  auto it = pools->find(mem_id);
  if (it != pools->end()) return *it->second;
  auto* p = new Pool(
      "device" + std::to_string(device.ordinal()),
      [dev](std::size_t bytes) -> Expected<void*> {
        Expected<void*> ptr = dev->memory().try_allocate(bytes);
        if (ptr)
          dev->charge("cudaMalloc", prof::EventKind::kApi,
                      dev->timing().api_overhead_seconds());
        return ptr;
      },
      [dev, mem_id](void* ptr) {
        // The pool outlives its device; blocks freed after the DeviceMemory
        // died were already released by its destructor.
        if (!gpu::DeviceMemory::alive(mem_id)) return;
        dev->memory().free(ptr);
        dev->charge("cudaFree", prof::EventKind::kApi,
                    dev->timing().api_overhead_seconds());
      },
      pool_enabled_from_env());
  register_pool(p);
  pools->emplace(mem_id, p);
  return *p;
}

std::string pool_report() {
  std::vector<Pool*> pools;
  {
    std::lock_guard lock(g_registry_mutex);
    pools = registry();
  }
  std::ostringstream os;
  os << "memory pools\n";
  os << "  " << std::left << std::setw(10) << "pool" << std::right
     << std::setw(10) << "hits" << std::setw(10) << "misses" << std::setw(9)
     << "hit%" << std::setw(12) << "served MB" << std::setw(12) << "cached MB"
     << std::setw(12) << "live MB" << std::setw(12) << "peak MB" << '\n';
  for (Pool* p : pools) {
    const PoolStats s = p->stats();
    os << "  " << std::left << std::setw(10) << p->name() << std::right
       << std::setw(10) << s.hits << std::setw(10) << s.misses << std::setw(8)
       << std::fixed << std::setprecision(1) << 100.0 * s.hit_rate() << '%'
       << std::setw(12) << std::setprecision(2)
       << static_cast<double>(s.bytes_served) / (1024.0 * 1024.0)
       << std::setw(12)
       << static_cast<double>(s.bytes_cached) / (1024.0 * 1024.0)
       << std::setw(12)
       << static_cast<double>(s.bytes_live) / (1024.0 * 1024.0)
       << std::setw(12)
       << static_cast<double>(s.bytes_live_peak) / (1024.0 * 1024.0) << '\n';
  }
  if (pools.empty()) os << "  (no pools created)\n";
  os << "  process resident " << std::fixed << std::setprecision(2)
     << static_cast<double>(process_resident_bytes()) / (1024.0 * 1024.0)
     << " MB, peak "
     << static_cast<double>(process_peak_resident_bytes()) / (1024.0 * 1024.0)
     << " MB\n";
  return os.str();
}

}  // namespace sagesim::mem
