#include "mem/buffer.hpp"

#include <atomic>
#include <cstring>
#include <sstream>

#include "gpusim/device.hpp"
#include "mem/pool.hpp"

namespace sagesim::mem {

namespace {

// Process-wide ledger; relaxed atomics (counters, not synchronization).
std::atomic<std::uint64_t> g_h2d_count{0};
std::atomic<std::uint64_t> g_h2d_bytes{0};
std::atomic<std::uint64_t> g_d2h_count{0};
std::atomic<std::uint64_t> g_d2h_bytes{0};
std::atomic<std::uint64_t> g_h2d_pinned_bytes{0};
std::atomic<std::uint64_t> g_d2h_pinned_bytes{0};

}  // namespace

const char* to_string(Placement p) {
  switch (p) {
    case Placement::kHost:
      return "host";
    case Placement::kDevice:
      return "device";
    case Placement::kManaged:
      return "managed";
  }
  return "?";
}

TransferCounters transfer_ledger() {
  TransferCounters c;
  c.h2d_count = g_h2d_count.load(std::memory_order_relaxed);
  c.h2d_bytes = g_h2d_bytes.load(std::memory_order_relaxed);
  c.d2h_count = g_d2h_count.load(std::memory_order_relaxed);
  c.d2h_bytes = g_d2h_bytes.load(std::memory_order_relaxed);
  c.h2d_pinned_bytes = g_h2d_pinned_bytes.load(std::memory_order_relaxed);
  c.d2h_pinned_bytes = g_d2h_pinned_bytes.load(std::memory_order_relaxed);
  return c;
}

void reset_transfer_ledger() {
  g_h2d_count.store(0, std::memory_order_relaxed);
  g_h2d_bytes.store(0, std::memory_order_relaxed);
  g_d2h_count.store(0, std::memory_order_relaxed);
  g_d2h_bytes.store(0, std::memory_order_relaxed);
  g_h2d_pinned_bytes.store(0, std::memory_order_relaxed);
  g_d2h_pinned_bytes.store(0, std::memory_order_relaxed);
}

std::string ledger_report() {
  const TransferCounters c = transfer_ledger();
  std::ostringstream os;
  os << "transfer ledger\n";
  os << "  H2D: " << c.h2d_count << " copies, "
     << static_cast<double>(c.h2d_bytes) / (1024.0 * 1024.0) << " MB ("
     << static_cast<double>(c.h2d_pinned_bytes) / (1024.0 * 1024.0)
     << " MB pinned)\n";
  os << "  D2H: " << c.d2h_count << " copies, "
     << static_cast<double>(c.d2h_bytes) / (1024.0 * 1024.0) << " MB ("
     << static_cast<double>(c.d2h_pinned_bytes) / (1024.0 * 1024.0)
     << " MB pinned)\n";
  return os.str();
}

struct Buffer::Storage {
  void* ptr{nullptr};
  std::size_t bytes{0};
  Placement placement{Placement::kHost};
  bool pinned{false};  ///< host side is pinned (cudaHostAlloc semantics)
  gpu::Device* device{nullptr};
  std::uint64_t device_mem_id{0};
  TransferCounters transfers;

  ~Storage() {
    if (ptr == nullptr) return;
    if (placement == Placement::kHost) {
      host_pool().free(ptr);
      return;
    }
    // Device/managed blocks whose DeviceMemory died were already reclaimed
    // wholesale by its destructor; freeing them again would be a bug.
    if (device != nullptr && gpu::DeviceMemory::alive(device_mem_id))
      device_pool(*device).free(ptr);
  }
};

namespace {

void bump_h2d(TransferCounters& t, std::size_t bytes, bool pinned = false) {
  ++t.h2d_count;
  t.h2d_bytes += bytes;
  if (pinned) {
    t.h2d_pinned_bytes += bytes;
    g_h2d_pinned_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  g_h2d_count.fetch_add(1, std::memory_order_relaxed);
  g_h2d_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void bump_d2h(TransferCounters& t, std::size_t bytes, bool pinned = false) {
  ++t.d2h_count;
  t.d2h_bytes += bytes;
  if (pinned) {
    t.d2h_pinned_bytes += bytes;
    g_d2h_pinned_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  g_d2h_count.fetch_add(1, std::memory_order_relaxed);
  g_d2h_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

}  // namespace

Buffer Buffer::host(std::size_t bytes, bool zero) {
  if (bytes == 0) return Buffer{};
  Expected<void*> p = host_pool().allocate(bytes);
  p.status().throw_if_error();  // the host heap throws rather than failing
  auto s = std::make_shared<Storage>();
  s->ptr = *p;
  s->bytes = bytes;
  s->placement = Placement::kHost;
  if (zero) std::memset(s->ptr, 0, bytes);
  return Buffer(std::move(s));
}

Buffer Buffer::host_pinned(std::size_t bytes, bool zero) {
  Buffer b = host(bytes, zero);
  if (b.s_ != nullptr) b.s_->pinned = true;
  return b;
}

Expected<Buffer> Buffer::on_device(gpu::Device& device, std::size_t bytes,
                                   int stream) {
  (void)stream;
  if (bytes == 0) return Buffer{};
  Expected<void*> p = device_pool(device).allocate(bytes);
  if (!p) return p.status();
  auto s = std::make_shared<Storage>();
  s->ptr = *p;
  s->bytes = bytes;
  s->placement = Placement::kDevice;
  s->device = &device;
  s->device_mem_id = device.memory().id();
  return Buffer(std::move(s));
}

Expected<Buffer> Buffer::managed(gpu::Device& device, std::size_t bytes) {
  Expected<Buffer> b = on_device(device, bytes);
  if (!b) return b;
  if (b->s_ != nullptr) {
    b->s_->placement = Placement::kManaged;
    std::memset(b->s_->ptr, 0, bytes);
  }
  return b;
}

std::size_t Buffer::size_bytes() const { return s_ ? s_->bytes : 0; }

Placement Buffer::placement() const {
  return s_ ? s_->placement : Placement::kHost;
}

bool Buffer::pinned() const { return s_ ? s_->pinned : false; }

gpu::Device* Buffer::device() const { return s_ ? s_->device : nullptr; }

void* Buffer::data() { return s_ ? s_->ptr : nullptr; }
const void* Buffer::data() const { return s_ ? s_->ptr : nullptr; }

Status Buffer::to_device(gpu::Device& device, int stream) {
  if (!s_ || s_->bytes == 0) return {};
  Storage& s = *s_;
  if (s.placement == Placement::kManaged) {
    if (s.device != &device)
      return Status::failed_precondition(
          "Buffer::to_device: managed buffer belongs to device " +
          std::to_string(s.device->ordinal()));
    // Unified-memory prefetch: residency moves, the allocation does not.
    device.charge("mem_prefetch_h2d", prof::EventKind::kMemcpyH2D,
                  device.timing().transfer_seconds(s.bytes, true), stream,
                  {{"bytes", static_cast<double>(s.bytes)}});
    bump_h2d(s.transfers, s.bytes);
    return {};
  }
  if (s.placement == Placement::kDevice) {
    if (s.device == &device) return {};
    // No P2P in the model: cross-device moves stage through the host.
    if (Status st = to_host(stream); !st.ok()) return st;
  }
  Expected<void*> p = device_pool(device).allocate(s.bytes);
  if (!p) return p.status();  // host copy stays valid and untouched
  device.copy_h2d(*p, s.ptr, s.bytes, stream, s.pinned);
  bump_h2d(s.transfers, s.bytes, s.pinned);
  host_pool().free(s.ptr);
  s.ptr = *p;
  s.placement = Placement::kDevice;
  s.device = &device;
  s.device_mem_id = device.memory().id();
  return {};
}

Status Buffer::to_host(int stream) {
  if (!s_ || s_->bytes == 0) return {};
  Storage& s = *s_;
  if (s.placement == Placement::kHost) return {};
  if (s.placement == Placement::kManaged) {
    s.device->charge("mem_prefetch_d2h", prof::EventKind::kMemcpyD2H,
                     s.device->timing().transfer_seconds(s.bytes, true),
                     stream, {{"bytes", static_cast<double>(s.bytes)}});
    bump_d2h(s.transfers, s.bytes);
    return {};
  }
  Expected<void*> hp = host_pool().allocate(s.bytes);
  hp.status().throw_if_error();
  // Landing in the buffer's own (possibly pinned) host block.
  s.device->copy_d2h(*hp, s.ptr, s.bytes, stream, s.pinned);
  bump_d2h(s.transfers, s.bytes, s.pinned);
  device_pool(*s.device).free(s.ptr);
  s.ptr = *hp;
  s.placement = Placement::kHost;
  s.device = nullptr;
  s.device_mem_id = 0;
  return {};
}

Buffer Buffer::clone() const {
  if (!s_) return Buffer{};
  const Storage& s = *s_;
  switch (s.placement) {
    case Placement::kHost: {
      Buffer b = s.pinned ? host_pinned(s.bytes, /*zero=*/false)
                          : host(s.bytes, /*zero=*/false);
      if (s.bytes != 0) std::memcpy(b.s_->ptr, s.ptr, s.bytes);
      return b;
    }
    case Placement::kDevice: {
      Expected<Buffer> b = on_device(*s.device, s.bytes);
      b.status().throw_if_error();
      b->s_->pinned = s.pinned;  // survives a later to_host round trip
      s.device->copy_d2d(b->s_->ptr, s.ptr, s.bytes);
      return *std::move(b);
    }
    case Placement::kManaged: {
      Expected<Buffer> b = managed(*s.device, s.bytes);
      b.status().throw_if_error();
      std::memcpy(b->s_->ptr, s.ptr, s.bytes);
      return *std::move(b);
    }
  }
  return Buffer{};
}

Buffer Buffer::host_clone(int stream) const {
  if (!s_) return Buffer{};
  const Storage& s = *s_;
  Buffer b = host(s.bytes, /*zero=*/false);
  if (s.bytes == 0) return b;
  if (s.placement == Placement::kHost) {
    std::memcpy(b.s_->ptr, s.ptr, s.bytes);
  } else {
    // Explicit, accounted snapshot — the checkpoint path.
    s.device->copy_d2h(b.s_->ptr, s.ptr, s.bytes, stream);
    bump_d2h(s_->transfers, s.bytes);
  }
  return b;
}

Status Buffer::upload(const void* src, std::size_t bytes, int stream) {
  if (bytes != size_bytes())
    return Status::invalid_argument("Buffer::upload: size mismatch");
  if (bytes == 0) return {};
  Storage& s = *s_;
  if (s.placement == Placement::kDevice) {
    s.device->copy_h2d(s.ptr, src, bytes, stream);
    bump_h2d(s.transfers, bytes);
  } else {
    std::memcpy(s.ptr, src, bytes);
  }
  return {};
}

Status Buffer::download(void* dst, std::size_t bytes, int stream) const {
  if (bytes != size_bytes())
    return Status::invalid_argument("Buffer::download: size mismatch");
  if (bytes == 0) return {};
  const Storage& s = *s_;
  if (s.placement == Placement::kDevice) {
    s.device->copy_d2h(dst, s.ptr, bytes, stream);
    bump_d2h(s_->transfers, bytes);
  } else {
    std::memcpy(dst, s.ptr, bytes);
  }
  return {};
}

TransferCounters Buffer::transfers() const {
  return s_ ? s_->transfers : TransferCounters{};
}

}  // namespace sagesim::mem
