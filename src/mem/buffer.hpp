// The unified data plane: untyped, alignment-aware, refcounted storage with
// an explicit Placement (host / device / managed) and zero-copy typed views.
//
// Every data container in the repo (tensor::Tensor, df::Column, graph CSR
// arrays, rl::ReplayBuffer arenas, rag index embeddings) stores its bytes in
// a Buffer, so the profiler and the simulated DeviceMemory see *all* of the
// data plane: placement transitions are explicit (`to_device` / `to_host`),
// every crossing of the PCIe bus is accounted (per-buffer counters plus a
// process-wide ledger plus prof::Timeline memcpy events), and allocation
// goes through mem::Pool so steady-state loops recycle blocks instead of
// hitting cudaMalloc per step.
//
// Copying a Buffer handle is O(1) and shares storage (shared_ptr semantics);
// placement transitions mutate the shared storage in place, so views created
// before a `to_device` observe the move.  Buffers are not internally
// synchronized — concurrent transitions on the same storage are a data race,
// like concurrent writes to a std::vector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "prof/check.hpp"
#include "runtime/status.hpp"

namespace sagesim::gpu {
class Device;
}

namespace sagesim::mem {

/// Where a Buffer's bytes currently live.  Managed mirrors CUDA unified
/// memory: the allocation counts against device capacity and is reachable
/// from both sides; to_device/to_host model prefetch-style migration (time
/// and byte accounting) without reallocating.
enum class Placement : std::uint8_t { kHost = 0, kDevice = 1, kManaged = 2 };

const char* to_string(Placement p);

/// Monotonic transfer counters (H2D/D2H crossings and bytes).  The pinned
/// sub-counters track the share staged from/to pinned host memory — the
/// split the Week-3 pinned-vs-pageable lab plots.
struct TransferCounters {
  std::uint64_t h2d_count{0};
  std::uint64_t h2d_bytes{0};
  std::uint64_t d2h_count{0};
  std::uint64_t d2h_bytes{0};
  std::uint64_t h2d_pinned_bytes{0};
  std::uint64_t d2h_pinned_bytes{0};
};

/// Snapshot of the process-wide transfer ledger (every accounted H2D/D2H
/// across all buffers since start or the last reset).
TransferCounters transfer_ledger();
void reset_transfer_ledger();

/// One line per direction: count, MB, suitable for prof reports.
std::string ledger_report();

class Buffer {
 public:
  /// Alignment of host placements (device alignment follows DeviceMemory).
  static constexpr std::size_t kHostAlignment = 64;

  /// Empty handle: no storage, size 0, host placement.
  Buffer() = default;

  /// Host-placed buffer of @p bytes from the host pool.  Zero-filled when
  /// @p zero (pool recycling hands back dirty blocks; callers that memcpy
  /// over the whole buffer immediately can skip the memset).
  /// bytes == 0 yields an empty handle.
  static Buffer host(std::size_t bytes, bool zero = true);

  /// Host-placed buffer whose memory is modeled as *pinned* (cudaHostAlloc
  /// semantics): transfers to and from it sustain full link bandwidth
  /// instead of the pageable-staging rate.  The pinned property sticks to
  /// the storage across to_device()/to_host() round trips and clones.
  static Buffer host_pinned(std::size_t bytes, bool zero = true);

  /// Device-placed buffer from @p device's pool; contents uninitialized
  /// (cudaMalloc semantics).  Fails with kResourceExhausted on OOM.
  static Expected<Buffer> on_device(gpu::Device& device, std::size_t bytes,
                                    int stream = 0);

  /// Managed (unified-memory) buffer: counts against @p device's capacity,
  /// host-reachable, zero-filled for determinism.
  static Expected<Buffer> managed(gpu::Device& device, std::size_t bytes);

  bool valid() const { return s_ != nullptr; }
  std::size_t size_bytes() const;
  Placement placement() const;

  /// True when the storage's host side is pinned (see host_pinned()).
  bool pinned() const;

  /// Owning device for device/managed placements, nullptr for host.
  gpu::Device* device() const;

  /// Number of Buffer handles sharing this storage (0 for empty handles).
  long use_count() const { return s_ ? s_.use_count() : 0; }

  void* data();
  const void* data() const;

  /// Zero-copy typed view over the whole buffer.  SAGESIM_CHECKs that the
  /// byte size is a multiple of sizeof(T).
  template <typename T>
  std::span<T> view() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Buffer views require trivially copyable element types");
    SAGESIM_CHECK(size_bytes() % sizeof(T) == 0);
    return {static_cast<T*>(data()), size_bytes() / sizeof(T)};
  }
  template <typename T>
  std::span<const T> view() const {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Buffer views require trivially copyable element types");
    SAGESIM_CHECK(size_bytes() % sizeof(T) == 0);
    return {static_cast<const T*>(data()), size_bytes() / sizeof(T)};
  }

  /// Moves the storage to @p device (H2D, accounted + timed on @p stream).
  /// No-op when already there.  Device-to-device goes through the host
  /// (no P2P in the model).  On allocation failure returns
  /// kResourceExhausted and leaves the buffer — including a host copy —
  /// untouched.  Empty handles succeed trivially.
  Status to_device(gpu::Device& device, int stream = 0);

  /// Moves the storage back to the host (D2H, accounted + timed).
  Status to_host(int stream = 0);

  /// Deep copy with the same placement (device clones allocate on the same
  /// device and copy on-device; throws StatusError on OOM).  The clone's
  /// transfer counters start at zero.
  Buffer clone() const;

  /// Host-placed deep copy.  Device-resident sources are explicitly
  /// downloaded (accounted D2H) — the checkpoint snapshot path.
  Buffer host_clone(int stream = 0) const;

  /// Copies @p bytes from host memory @p src into the buffer (exact size
  /// required).  Accounted H2D when the buffer is device-placed.
  Status upload(const void* src, std::size_t bytes, int stream = 0);

  /// Copies the buffer into host memory @p dst (exact size required).
  /// Accounted D2H when the buffer is device-placed.
  Status download(void* dst, std::size_t bytes, int stream = 0) const;

  /// This storage's lifetime H2D/D2H counters (zeros for empty handles).
  TransferCounters transfers() const;

 private:
  struct Storage;
  explicit Buffer(std::shared_ptr<Storage> s) : s_(std::move(s)) {}

  std::shared_ptr<Storage> s_;
};

/// A typed, owning array over Buffer — the drop-in replacement for the
/// `std::vector<T>` members the data containers used to hold.  Copying is a
/// deep clone (vector semantics, placement preserved); moving is cheap.
template <typename T>
class TypedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "TypedBuffer requires trivially copyable element types");

 public:
  TypedBuffer() = default;

  /// @p count zero-initialized elements on the host.
  explicit TypedBuffer(std::size_t count)
      : buf_(Buffer::host(count * sizeof(T))), count_(count) {
    refresh();
  }

  /// Takes the contents of @p values (host placement).
  explicit TypedBuffer(const std::vector<T>& values)
      : buf_(Buffer::host(values.size() * sizeof(T), /*zero=*/false)),
        count_(values.size()) {
    refresh();
    if (count_ != 0)
      buf_.upload(values.data(), count_ * sizeof(T)).throw_if_error();
  }

  TypedBuffer(const TypedBuffer& other)
      : buf_(other.buf_.clone()), count_(other.count_) {
    refresh();
  }
  TypedBuffer& operator=(const TypedBuffer& other) {
    if (this != &other) {
      buf_ = other.buf_.clone();
      count_ = other.count_;
      refresh();
    }
    return *this;
  }
  TypedBuffer(TypedBuffer&& other) noexcept
      : buf_(std::move(other.buf_)), count_(other.count_), ptr_(other.ptr_) {
    other.count_ = 0;
    other.ptr_ = nullptr;
  }
  TypedBuffer& operator=(TypedBuffer&& other) noexcept {
    if (this != &other) {
      buf_ = std::move(other.buf_);
      count_ = other.count_;
      ptr_ = other.ptr_;
      other.count_ = 0;
      other.ptr_ = nullptr;
    }
    return *this;
  }

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  T* data() { return ptr_; }
  const T* data() const { return ptr_; }
  T& operator[](std::size_t i) { return ptr_[i]; }
  const T& operator[](std::size_t i) const { return ptr_[i]; }
  T* begin() { return ptr_; }
  T* end() { return ptr_ + count_; }
  const T* begin() const { return ptr_; }
  const T* end() const { return ptr_ + count_; }

  std::span<T> span() { return {ptr_, count_}; }
  std::span<const T> span() const { return {ptr_, count_}; }

  Status to_device(gpu::Device& device, int stream = 0) {
    Status s = buf_.to_device(device, stream);
    refresh();
    return s;
  }
  Status to_host(int stream = 0) {
    Status s = buf_.to_host(stream);
    refresh();
    return s;
  }
  Placement placement() const { return buf_.placement(); }
  gpu::Device* device() const { return buf_.device(); }

  /// Host-placed deep copy (accounted D2H when device-resident).
  TypedBuffer host_copy(int stream = 0) const {
    TypedBuffer t;
    t.buf_ = buf_.host_clone(stream);
    t.count_ = count_;
    t.refresh();
    return t;
  }

  Buffer& buffer() { return buf_; }
  const Buffer& buffer() const { return buf_; }

 private:
  void refresh() { ptr_ = static_cast<T*>(buf_.valid() ? buf_.data() : nullptr); }

  Buffer buf_;
  std::size_t count_{0};
  T* ptr_{nullptr};
};

}  // namespace sagesim::mem
