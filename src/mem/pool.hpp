// Size-class pooling allocator fronting both the host heap and simulated
// gpusim::DeviceMemory.  Freed blocks are cached per power-of-two class and
// recycled, so steady-state training loops stop paying cudaMalloc/cudaFree
// (and host malloc) per step — the Week 3/4 lesson that allocation churn,
// not arithmetic, dominates naive GPU code.  Per-pool hit/miss/byte counters
// make the recycling visible and testable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/status.hpp"

namespace sagesim::gpu {
class Device;
}

namespace sagesim::mem {

/// Counter snapshot for one Pool.
struct PoolStats {
  std::uint64_t hits{0};          ///< requests served from a free list
  std::uint64_t misses{0};        ///< requests that went upstream
  std::uint64_t pass_through{0};  ///< oversize/disabled requests (not pooled)
  std::uint64_t flushes{0};       ///< free-list purges (explicit or OOM retry)
  std::uint64_t bytes_served{0};  ///< sum of requested bytes over all allocs
  std::uint64_t bytes_cached{0};  ///< bytes currently parked in free lists
  std::uint64_t bytes_live{0};    ///< bytes currently handed out to callers
  /// High-water mark of bytes_live since construction (or the last
  /// reset_peaks()) — the per-pool residency ceiling memory-budget tests
  /// assert against.  reset_stats() preserves it like the live/cached gauges.
  std::uint64_t bytes_live_peak{0};

  /// Fraction of *poolable* requests served without touching upstream.
  double hit_rate() const {
    const std::uint64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

/// A caching allocator over an arbitrary upstream (host heap or one device's
/// DeviceMemory).  Thread-safe.  Blocks are bucketed into power-of-two size
/// classes between kMinClass and kMaxPooled; larger requests pass straight
/// through to upstream.  When upstream allocation fails and the pool holds
/// cached blocks, the pool flushes them and retries once — mirroring the
/// "free your cache before declaring OOM" behavior of real caching
/// allocators (e.g. the CUDA async memory pool).
class Pool {
 public:
  using UpstreamAlloc = std::function<Expected<void*>(std::size_t)>;
  using UpstreamFree = std::function<void(void*)>;

  static constexpr std::size_t kMinClass = 64;
  static constexpr std::size_t kMaxPooled = std::size_t{1} << 26;  // 64 MiB

  /// @param enabled  when false every request passes through (still tracked,
  ///                 so free() works); the SAGESIM_MEM_POOL=off escape hatch.
  Pool(std::string name, UpstreamAlloc upstream_alloc,
       UpstreamFree upstream_free, bool enabled = true);

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Returns cached blocks to upstream before dying.
  ~Pool();

  /// Rounds @p bytes up to its size class, or 0 when the request is not
  /// poolable (oversize).  Exposed for tests.
  static std::size_t size_class(std::size_t bytes);

  /// Allocates at least @p bytes.  Fails with kInvalidArgument for zero
  /// bytes and propagates upstream failure (kResourceExhausted for device
  /// OOM) after one flush-and-retry.
  Expected<void*> allocate(std::size_t bytes);

  /// Returns a block from allocate() to the pool (cached, not released).
  /// Throws std::invalid_argument for pointers this pool did not hand out.
  void free(void* ptr);

  /// Releases every cached block to upstream.
  void flush();

  PoolStats stats() const;
  void reset_stats();

  /// Re-arms bytes_live_peak to the current bytes_live (scoping a memory
  /// ceiling to one phase of a run, e.g. "training after the graph was
  /// generated").  The process-wide peak has its own reset; see
  /// reset_process_peak_resident_bytes().
  void reset_peak();

  const std::string& name() const { return name_; }
  bool enabled() const { return enabled_; }

 private:
  struct Live {
    std::size_t block_bytes{0};  ///< size-class bytes, or raw size if 0 class
    std::size_t class_bytes{0};  ///< 0 for pass-through blocks
  };

  Expected<void*> upstream_allocate_locked(std::size_t bytes);
  void flush_locked();
  void note_live_locked();  ///< folds bytes_live into bytes_live_peak

  const std::string name_;
  const UpstreamAlloc upstream_alloc_;
  const UpstreamFree upstream_free_;
  const bool enabled_;

  mutable std::mutex mutex_;
  std::unordered_map<std::size_t, std::vector<void*>> free_lists_;
  std::unordered_map<void*, Live> live_;
  PoolStats stats_;
};

/// True unless SAGESIM_MEM_POOL is set to "off"/"0"/"false" — the documented
/// escape hatch that turns every pooled allocation into a direct upstream
/// call (for debugging lifetime issues under ASan, or measuring the pool's
/// own benefit).
bool pool_enabled_from_env();

/// Process-wide pool over the host heap (64-byte aligned).  Never destroyed.
Pool& host_pool();

/// The pool fronting @p device's DeviceMemory.  One pool per DeviceMemory
/// *instance* (keyed by its unique id, not its address), created on first
/// use and intentionally leaked: a pool whose device has died is simply
/// never consulted again.  Allocation misses charge cudaMalloc API time to
/// the device's stream 0, exactly like Device::device_malloc.
Pool& device_pool(gpu::Device& device);

/// Human-readable table of every pool created so far (host + per-device):
/// hits, misses, hit rate, cached/live/peak bytes.  Appended to prof
/// reports, with the process-wide resident gauge and high-water mark on the
/// last line.
std::string pool_report();

// --- process-wide residency accounting -------------------------------------
//
// Every byte a Pool holds from its upstream — live blocks handed to callers
// *plus* blocks parked in free lists (parked blocks still occupy real host
// or device memory) — is mirrored into one process-wide atomic gauge with a
// high-water mark.  This is the "did we ever materialize the full graph?"
// number: out-of-core ceiling tests assert the peak instead of re-deriving
// residency from transfer events.  Pool-less allocations (plain std::vector
// scratch) are invisible by design; the data plane (Buffer/TypedBuffer/
// Tensor) allocates exclusively through pools.

/// Bytes currently held from upstream across all pools (live + cached).
std::uint64_t process_resident_bytes();

/// High-water mark of process_resident_bytes() since process start or the
/// last reset_process_peak_resident_bytes().
std::uint64_t process_peak_resident_bytes();

/// Re-arms the process-wide peak to the current resident gauge.
void reset_process_peak_resident_bytes();

/// Flushes every registered factory pool's free lists back to upstream,
/// dropping the resident gauge to just-live bytes.  Residency ceiling tests
/// call this first so blocks cached by earlier work in the same process
/// don't inflate the floor the peak is measured from.
void flush_all_pools();

}  // namespace sagesim::mem
