// Deep Q-Network agent (Mnih et al. 2015): epsilon-greedy policy over an
// MLP Q-function, experience replay, and a periodically-synced target
// network — the Week-9 "DQN agent training using CUDA-enabled PyTorch" lab.
#pragma once

#include <memory>

#include "gpusim/device.hpp"
#include "nn/optim.hpp"
#include "nn/sequential.hpp"
#include "rl/env.hpp"
#include "rl/replay.hpp"

namespace sagesim::rl {

struct DqnConfig {
  std::size_t hidden{64};
  float gamma{0.99f};
  float lr{1e-3f};
  float epsilon_start{1.0f};
  float epsilon_end{0.05f};
  float epsilon_decay{0.995f};  ///< multiplicative per episode
  std::size_t replay_capacity{10000};
  std::size_t batch_size{64};
  std::size_t warmup_transitions{200};
  int target_sync_every{200};   ///< gradient steps between target syncs
  std::uint64_t seed{11};
};

class DqnAgent {
 public:
  /// Builds online and target networks sized to @p env.  @p dev may be null
  /// (host-only baseline) or a simulated GPU.
  DqnAgent(Environment& env, const DqnConfig& config, gpu::Device* dev);

  /// Greedy action from the online network.
  int greedy_action(const std::vector<float>& observation);

  /// Runs one episode with epsilon-greedy exploration + replay training.
  EpisodeStats run_episode();

  /// Trains for @p episodes; returns per-episode stats.
  std::vector<EpisodeStats> train(int episodes);

  float epsilon() const { return epsilon_; }
  const ReplayBuffer& replay() const { return replay_; }

 private:
  double train_step();

  Environment& env_;
  DqnConfig config_;
  gpu::Device* dev_;
  stats::Rng rng_;
  nn::Sequential online_;
  nn::Sequential target_;
  std::unique_ptr<nn::Optimizer> optimizer_;
  ReplayBuffer replay_;
  float epsilon_;
  int steps_since_sync_{0};
};

}  // namespace sagesim::rl
