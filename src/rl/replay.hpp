// Uniform experience-replay buffer (Mnih et al. 2015).
//
// Transitions are stored in flat mem::TypedBuffer arenas (capacity x dim)
// rather than per-transition vectors, so replay memory is a handful of
// pooled, placement-aware allocations instead of thousands of tiny host
// heap blocks — and sampled minibatches read contiguous rows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "mem/buffer.hpp"
#include "runtime/status.hpp"
#include "stats/rng.hpp"

namespace sagesim::gpu {
class Device;
}

namespace sagesim::rl {

/// Push-side transition (owning vectors, copied into the arenas).
struct Transition {
  std::vector<float> state;
  int action{0};
  float reward{0.0f};
  std::vector<float> next_state;
  bool done{false};
};

/// Sample-side transition: zero-copy views into the arenas.  Valid until the
/// next push() or placement change.
struct TransitionView {
  std::span<const float> state;
  int action{0};
  float reward{0.0f};
  std::span<const float> next_state;
  bool done{false};
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  /// Adds a transition, evicting the oldest once full (ring buffer).
  /// State/next-state dimensions are fixed by the first push; a mismatch
  /// later throws std::invalid_argument.
  void push(Transition t);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

  /// Samples @p count transitions uniformly with replacement.  Throws
  /// std::invalid_argument when the buffer is empty or count == 0.
  std::vector<TransitionView> sample(std::size_t count, stats::Rng& rng) const;

  /// Moves the arenas to @p device (accounted H2D) / back to the host.
  /// Views returned by sample() track the move (simulated device memory is
  /// host-reachable).
  Status to_device(gpu::Device& device, int stream = 0);
  Status to_host(int stream = 0);
  mem::Placement placement() const { return states_.placement(); }

 private:
  std::size_t capacity_;
  std::size_t next_{0};
  std::size_t size_{0};
  bool dims_set_{false};
  std::size_t state_dim_{0};
  std::size_t next_dim_{0};
  mem::TypedBuffer<float> states_;        ///< capacity x state_dim
  mem::TypedBuffer<float> next_states_;   ///< capacity x next_dim
  mem::TypedBuffer<int> actions_;
  mem::TypedBuffer<float> rewards_;
  mem::TypedBuffer<std::uint8_t> dones_;
};

}  // namespace sagesim::rl
