// Uniform experience-replay buffer (Mnih et al. 2015).
#pragma once

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"

namespace sagesim::rl {

struct Transition {
  std::vector<float> state;
  int action{0};
  float reward{0.0f};
  std::vector<float> next_state;
  bool done{false};
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  /// Adds a transition, evicting the oldest once full (ring buffer).
  void push(Transition t);

  std::size_t size() const { return buffer_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Samples @p count transitions uniformly with replacement.  Throws
  /// std::invalid_argument when the buffer is empty or count == 0.
  std::vector<const Transition*> sample(std::size_t count,
                                        stats::Rng& rng) const;

 private:
  std::size_t capacity_;
  std::size_t next_{0};
  std::vector<Transition> buffer_;
};

}  // namespace sagesim::rl
