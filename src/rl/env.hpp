// Reinforcement-learning environments for the Week-9/11 labs: a classic
// CartPole physics simulation and a deterministic GridWorld.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace sagesim::rl {

struct StepResult {
  std::vector<float> observation;
  float reward{0.0f};
  bool done{false};
};

/// Per-episode training statistics shared by all agents.
struct EpisodeStats {
  double total_reward{0.0};
  int steps{0};
  double mean_loss{0.0};  ///< 0 for agents without a loss (tabular)
  float epsilon{0.0f};
};

class Environment {
 public:
  virtual ~Environment() = default;

  virtual std::size_t observation_size() const = 0;
  virtual std::size_t action_count() const = 0;

  /// Resets the episode; returns the initial observation.
  virtual std::vector<float> reset(stats::Rng& rng) = 0;

  /// Applies @p action; throws std::invalid_argument for bad actions and
  /// std::logic_error when stepping a finished episode.
  virtual StepResult step(int action) = 0;
};

/// CartPole-v1 dynamics (Barto, Sutton & Anderson 1983; OpenAI Gym
/// constants): balance a pole on a cart, +1 reward per step, episode ends
/// when |x| > 2.4, |theta| > 12 degrees, or after 500 steps.
class CartPole final : public Environment {
 public:
  std::size_t observation_size() const override { return 4; }
  std::size_t action_count() const override { return 2; }
  std::vector<float> reset(stats::Rng& rng) override;
  StepResult step(int action) override;

  int steps_taken() const { return steps_; }

 private:
  std::vector<float> observe() const;
  double x_{0}, x_dot_{0}, theta_{0}, theta_dot_{0};
  int steps_{0};
  bool done_{true};
};

/// n x n GridWorld: start at (0,0), goal at (n-1,n-1), -0.01 per step,
/// +1 at the goal, episode cap 4*n*n steps.  Observation is the one-hot
/// cell encoding; actions are up/down/left/right (walls are no-ops).
class GridWorld final : public Environment {
 public:
  explicit GridWorld(std::size_t n);

  std::size_t observation_size() const override { return n_ * n_; }
  std::size_t action_count() const override { return 4; }
  std::vector<float> reset(stats::Rng& rng) override;
  StepResult step(int action) override;

 private:
  std::vector<float> observe() const;
  std::size_t n_;
  std::size_t row_{0}, col_{0};
  int steps_{0};
  bool done_{true};
};

}  // namespace sagesim::rl
