#include "rl/env.hpp"

#include <cmath>
#include <stdexcept>

namespace sagesim::rl {

namespace {
// CartPole physical constants (OpenAI Gym's CartPole-v1).
constexpr double kGravity = 9.8;
constexpr double kCartMass = 1.0;
constexpr double kPoleMass = 0.1;
constexpr double kTotalMass = kCartMass + kPoleMass;
constexpr double kPoleHalfLength = 0.5;
constexpr double kForceMag = 10.0;
constexpr double kTau = 0.02;  // seconds per step
constexpr double kThetaLimit = 12.0 * 2.0 * 3.14159265358979323846 / 360.0;
constexpr double kXLimit = 2.4;
constexpr int kMaxSteps = 500;
}  // namespace

std::vector<float> CartPole::reset(stats::Rng& rng) {
  x_ = rng.uniform(-0.05, 0.05);
  x_dot_ = rng.uniform(-0.05, 0.05);
  theta_ = rng.uniform(-0.05, 0.05);
  theta_dot_ = rng.uniform(-0.05, 0.05);
  steps_ = 0;
  done_ = false;
  return observe();
}

std::vector<float> CartPole::observe() const {
  return {static_cast<float>(x_), static_cast<float>(x_dot_),
          static_cast<float>(theta_), static_cast<float>(theta_dot_)};
}

StepResult CartPole::step(int action) {
  if (done_) throw std::logic_error("CartPole: step after episode end");
  if (action != 0 && action != 1)
    throw std::invalid_argument("CartPole: action must be 0 or 1");

  const double force = action == 1 ? kForceMag : -kForceMag;
  const double cos_t = std::cos(theta_);
  const double sin_t = std::sin(theta_);
  const double pml = kPoleMass * kPoleHalfLength;
  const double temp =
      (force + pml * theta_dot_ * theta_dot_ * sin_t) / kTotalMass;
  const double theta_acc =
      (kGravity * sin_t - cos_t * temp) /
      (kPoleHalfLength * (4.0 / 3.0 - kPoleMass * cos_t * cos_t / kTotalMass));
  const double x_acc = temp - pml * theta_acc * cos_t / kTotalMass;

  // Semi-implicit Euler, like Gym.
  x_ += kTau * x_dot_;
  x_dot_ += kTau * x_acc;
  theta_ += kTau * theta_dot_;
  theta_dot_ += kTau * theta_acc;
  ++steps_;

  StepResult r;
  r.reward = 1.0f;
  done_ = std::fabs(x_) > kXLimit || std::fabs(theta_) > kThetaLimit ||
          steps_ >= kMaxSteps;
  r.done = done_;
  r.observation = observe();
  return r;
}

GridWorld::GridWorld(std::size_t n) : n_(n) {
  if (n < 2) throw std::invalid_argument("GridWorld: n must be >= 2");
}

std::vector<float> GridWorld::reset(stats::Rng& /*rng*/) {
  row_ = 0;
  col_ = 0;
  steps_ = 0;
  done_ = false;
  return observe();
}

std::vector<float> GridWorld::observe() const {
  std::vector<float> obs(n_ * n_, 0.0f);
  obs[row_ * n_ + col_] = 1.0f;
  return obs;
}

StepResult GridWorld::step(int action) {
  if (done_) throw std::logic_error("GridWorld: step after episode end");
  switch (action) {
    case 0: if (row_ > 0) --row_; break;       // up
    case 1: if (row_ + 1 < n_) ++row_; break;  // down
    case 2: if (col_ > 0) --col_; break;       // left
    case 3: if (col_ + 1 < n_) ++col_; break;  // right
    default:
      throw std::invalid_argument("GridWorld: action must be in [0, 3]");
  }
  ++steps_;

  StepResult r;
  const bool at_goal = row_ == n_ - 1 && col_ == n_ - 1;
  const bool timed_out = steps_ >= static_cast<int>(4 * n_ * n_);
  r.reward = at_goal ? 1.0f : -0.01f;
  done_ = at_goal || timed_out;
  r.done = done_;
  r.observation = observe();
  return r;
}

}  // namespace sagesim::rl
