// Tabular Q-learning (Watkins 1989) — the Week-11 "simple reinforcement
// agent using CuPy/Numba" lab: the Q-table update is expressed as a small
// device kernel, exactly how a Numba student would vectorize it.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/device.hpp"
#include "rl/env.hpp"

namespace sagesim::rl {

struct QLearningConfig {
  double alpha{0.2};            ///< learning rate
  double gamma{0.98};
  float epsilon_start{1.0f};
  float epsilon_end{0.05f};
  float epsilon_decay{0.97f};   ///< multiplicative per episode
  std::uint64_t seed{31};
};

/// Tabular agent for environments with one-hot observations (GridWorld):
/// the state id is the argmax of the observation vector.
class QTableAgent {
 public:
  /// @param dev may be null (pure host) — the Q-update runs as a device
  /// kernel when present.
  QTableAgent(Environment& env, const QLearningConfig& config,
              gpu::Device* dev);

  /// Greedy action for @p state.
  int greedy_action(std::size_t state) const;

  /// Runs one epsilon-greedy episode with online Q updates.
  EpisodeStats run_episode();

  std::vector<EpisodeStats> train(int episodes);

  float epsilon() const { return epsilon_; }
  double q_value(std::size_t state, int action) const;
  std::size_t state_count() const { return states_; }

 private:
  static std::size_t state_of(const std::vector<float>& observation);
  void update(std::size_t s, int a, float reward, std::size_t s2, bool done);

  Environment& env_;
  QLearningConfig config_;
  gpu::Device* dev_;
  stats::Rng rng_;
  std::size_t states_;
  std::size_t actions_;
  std::vector<double> q_;  ///< states_ x actions_, row-major
  float epsilon_;
};

}  // namespace sagesim::rl
