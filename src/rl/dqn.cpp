#include "rl/dqn.hpp"

#include <algorithm>

#include "nn/dense.hpp"
#include "nn/loss.hpp"

namespace sagesim::rl {

namespace {

void build_mlp(nn::Sequential& model, std::size_t in, std::size_t hidden,
               std::size_t out, stats::Rng& rng) {
  model.emplace<nn::Dense>(in, hidden, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dense>(hidden, hidden, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dense>(hidden, out, rng);
}

tensor::Tensor batch_of(const std::vector<TransitionView>& batch,
                        bool next_state, std::size_t obs_size) {
  tensor::Tensor x(batch.size(), obs_size);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto src = next_state ? batch[i].next_state : batch[i].state;
    std::copy(src.begin(), src.end(), x.data() + i * obs_size);
  }
  return x;
}

}  // namespace

DqnAgent::DqnAgent(Environment& env, const DqnConfig& config, gpu::Device* dev)
    : env_(env),
      config_(config),
      dev_(dev),
      rng_(config.seed),
      replay_(config.replay_capacity),
      epsilon_(config.epsilon_start) {
  build_mlp(online_, env.observation_size(), config.hidden,
            env.action_count(), rng_);
  build_mlp(target_, env.observation_size(), config.hidden,
            env.action_count(), rng_);
  target_.copy_params_from(online_);
  optimizer_ = std::make_unique<nn::Adam>(config.lr);
}

int DqnAgent::greedy_action(const std::vector<float>& observation) {
  tensor::Tensor x(1, observation.size());
  std::copy(observation.begin(), observation.end(), x.data());
  const tensor::Tensor q = online_.forward(dev_, x, /*train=*/false);
  return static_cast<int>(q.argmax_row(0));
}

double DqnAgent::train_step() {
  const auto batch = replay_.sample(config_.batch_size, rng_);
  const std::size_t obs = env_.observation_size();

  // TD targets from the target network: r + gamma * max_a' Q_target(s', a').
  const tensor::Tensor next_q =
      target_.forward(dev_, batch_of(batch, true, obs), /*train=*/false);
  std::vector<nn::MseTarget> targets;
  targets.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    float best_next = 0.0f;
    if (!batch[i].done) {
      best_next = next_q.at(i, next_q.argmax_row(i));
    }
    targets.push_back({i, static_cast<std::size_t>(batch[i].action),
                       batch[i].reward + config_.gamma * best_next});
  }

  online_.zero_grad();
  const tensor::Tensor q =
      online_.forward(dev_, batch_of(batch, false, obs), /*train=*/true);
  auto loss = nn::masked_mse(dev_, q, targets);
  online_.backward(dev_, loss.dlogits);
  auto params = online_.params();
  optimizer_->step(dev_, params);

  if (++steps_since_sync_ >= config_.target_sync_every) {
    target_.copy_params_from(online_);
    steps_since_sync_ = 0;
  }
  return loss.loss;
}

EpisodeStats DqnAgent::run_episode() {
  EpisodeStats stats;
  stats.epsilon = epsilon_;
  std::vector<float> obs = env_.reset(rng_);

  double loss_sum = 0.0;
  int loss_count = 0;
  bool done = false;
  while (!done) {
    int action;
    if (rng_.bernoulli(static_cast<double>(epsilon_))) {
      action = static_cast<int>(rng_.uniform_int(
          0, static_cast<std::int64_t>(env_.action_count()) - 1));
    } else {
      action = greedy_action(obs);
    }
    StepResult r = env_.step(action);
    replay_.push({obs, action, r.reward, r.observation, r.done});
    obs = r.observation;
    stats.total_reward += r.reward;
    ++stats.steps;
    done = r.done;

    if (replay_.size() >= config_.warmup_transitions) {
      loss_sum += train_step();
      ++loss_count;
    }
  }
  if (loss_count > 0) stats.mean_loss = loss_sum / loss_count;
  epsilon_ = std::max(config_.epsilon_end, epsilon_ * config_.epsilon_decay);
  return stats;
}

std::vector<EpisodeStats> DqnAgent::train(int episodes) {
  std::vector<EpisodeStats> out;
  out.reserve(static_cast<std::size_t>(episodes));
  for (int e = 0; e < episodes; ++e) out.push_back(run_episode());
  return out;
}

}  // namespace sagesim::rl
