#include "rl/replay.hpp"

#include <algorithm>
#include <stdexcept>

namespace sagesim::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("ReplayBuffer: capacity must be > 0");
}

void ReplayBuffer::push(Transition t) {
  if (!dims_set_) {
    state_dim_ = t.state.size();
    next_dim_ = t.next_state.size();
    if (state_dim_ != 0)
      states_ = mem::TypedBuffer<float>(capacity_ * state_dim_);
    if (next_dim_ != 0)
      next_states_ = mem::TypedBuffer<float>(capacity_ * next_dim_);
    actions_ = mem::TypedBuffer<int>(capacity_);
    rewards_ = mem::TypedBuffer<float>(capacity_);
    dones_ = mem::TypedBuffer<std::uint8_t>(capacity_);
    dims_set_ = true;
  }
  if (t.state.size() != state_dim_ || t.next_state.size() != next_dim_)
    throw std::invalid_argument(
        "ReplayBuffer::push: transition dimensions changed mid-stream");

  const std::size_t slot = size_ < capacity_ ? size_ : next_;
  if (state_dim_ != 0)
    std::copy(t.state.begin(), t.state.end(),
              states_.data() + slot * state_dim_);
  if (next_dim_ != 0)
    std::copy(t.next_state.begin(), t.next_state.end(),
              next_states_.data() + slot * next_dim_);
  actions_[slot] = t.action;
  rewards_[slot] = t.reward;
  dones_[slot] = t.done ? 1 : 0;

  if (size_ < capacity_) ++size_;
  next_ = (next_ + 1) % capacity_;
}

std::vector<TransitionView> ReplayBuffer::sample(std::size_t count,
                                                 stats::Rng& rng) const {
  if (size_ == 0)
    throw std::invalid_argument("ReplayBuffer::sample: empty buffer");
  if (count == 0)
    throw std::invalid_argument("ReplayBuffer::sample: count must be > 0");
  std::vector<TransitionView> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(size_) - 1));
    TransitionView v;
    if (state_dim_ != 0)
      v.state = states_.span().subspan(idx * state_dim_, state_dim_);
    v.action = actions_[idx];
    v.reward = rewards_[idx];
    if (next_dim_ != 0)
      v.next_state = next_states_.span().subspan(idx * next_dim_, next_dim_);
    v.done = dones_[idx] != 0;
    out.push_back(v);
  }
  return out;
}

Status ReplayBuffer::to_device(gpu::Device& device, int stream) {
  if (Status s = states_.to_device(device, stream); !s.ok()) return s;
  if (Status s = next_states_.to_device(device, stream); !s.ok()) return s;
  if (Status s = actions_.to_device(device, stream); !s.ok()) return s;
  if (Status s = rewards_.to_device(device, stream); !s.ok()) return s;
  return dones_.to_device(device, stream);
}

Status ReplayBuffer::to_host(int stream) {
  if (Status s = states_.to_host(stream); !s.ok()) return s;
  if (Status s = next_states_.to_host(stream); !s.ok()) return s;
  if (Status s = actions_.to_host(stream); !s.ok()) return s;
  if (Status s = rewards_.to_host(stream); !s.ok()) return s;
  return dones_.to_host(stream);
}

}  // namespace sagesim::rl
