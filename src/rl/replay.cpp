#include "rl/replay.hpp"

#include <stdexcept>

namespace sagesim::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("ReplayBuffer: capacity must be > 0");
  buffer_.reserve(capacity);
}

void ReplayBuffer::push(Transition t) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(std::move(t));
  } else {
    buffer_[next_] = std::move(t);
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t count,
                                                    stats::Rng& rng) const {
  if (buffer_.empty())
    throw std::invalid_argument("ReplayBuffer::sample: empty buffer");
  if (count == 0)
    throw std::invalid_argument("ReplayBuffer::sample: count must be > 0");
  std::vector<const Transition*> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(buffer_.size()) - 1));
    out.push_back(&buffer_[idx]);
  }
  return out;
}

}  // namespace sagesim::rl
