#include "rl/qlearning.hpp"

#include <algorithm>
#include <stdexcept>

namespace sagesim::rl {

QTableAgent::QTableAgent(Environment& env, const QLearningConfig& config,
                         gpu::Device* dev)
    : env_(env),
      config_(config),
      dev_(dev),
      rng_(config.seed),
      states_(env.observation_size()),
      actions_(env.action_count()),
      q_(states_ * actions_, 0.0),
      epsilon_(config.epsilon_start) {
  if (config.alpha <= 0.0 || config.alpha > 1.0)
    throw std::invalid_argument("QTableAgent: alpha must be in (0, 1]");
}

std::size_t QTableAgent::state_of(const std::vector<float>& observation) {
  return static_cast<std::size_t>(
      std::max_element(observation.begin(), observation.end()) -
      observation.begin());
}

int QTableAgent::greedy_action(std::size_t state) const {
  if (state >= states_)
    throw std::out_of_range("QTableAgent: state out of range");
  const double* row = q_.data() + state * actions_;
  return static_cast<int>(std::max_element(row, row + actions_) - row);
}

double QTableAgent::q_value(std::size_t state, int action) const {
  if (state >= states_ || action < 0 ||
      static_cast<std::size_t>(action) >= actions_)
    throw std::out_of_range("QTableAgent: q_value index out of range");
  return q_[state * actions_ + static_cast<std::size_t>(action)];
}

void QTableAgent::update(std::size_t s, int a, float reward, std::size_t s2,
                         bool done) {
  const double* next_row = q_.data() + s2 * actions_;
  const double best_next =
      done ? 0.0 : *std::max_element(next_row, next_row + actions_);
  const double target = static_cast<double>(reward) + config_.gamma * best_next;
  double* cell = &q_[s * actions_ + static_cast<std::size_t>(a)];

  if (dev_ != nullptr) {
    // The Numba-style vectorized update: one tiny kernel per step.
    dev_->launch_linear("q_update", 1, 32, [&](const gpu::ThreadCtx& ctx) {
      *cell += config_.alpha * (target - *cell);
      ctx.add_flops(3.0);
      ctx.add_bytes(2.0 * sizeof(double));
    });
  } else {
    *cell += config_.alpha * (target - *cell);
  }
}

EpisodeStats QTableAgent::run_episode() {
  EpisodeStats stats;
  stats.epsilon = epsilon_;
  std::size_t s = state_of(env_.reset(rng_));
  bool done = false;
  while (!done) {
    int a;
    if (rng_.bernoulli(static_cast<double>(epsilon_))) {
      a = static_cast<int>(
          rng_.uniform_int(0, static_cast<std::int64_t>(actions_) - 1));
    } else {
      a = greedy_action(s);
    }
    const StepResult r = env_.step(a);
    const std::size_t s2 = state_of(r.observation);
    update(s, a, r.reward, s2, r.done);
    s = s2;
    stats.total_reward += r.reward;
    ++stats.steps;
    done = r.done;
  }
  epsilon_ = std::max(config_.epsilon_end, epsilon_ * config_.epsilon_decay);
  return stats;
}

std::vector<EpisodeStats> QTableAgent::train(int episodes) {
  std::vector<EpisodeStats> out;
  out.reserve(static_cast<std::size_t>(episodes));
  for (int e = 0; e < episodes; ++e) out.push_back(run_episode());
  return out;
}

}  // namespace sagesim::rl
