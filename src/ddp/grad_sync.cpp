#include "ddp/grad_sync.hpp"

#include <stdexcept>

#include "dflow/collectives.hpp"

namespace sagesim::ddp {

GradientSynchronizer::GradientSynchronizer(
    gpu::DeviceManager& devices,
    std::vector<std::vector<nn::Param*>> replicas, AllReduceAlgo algo)
    : devices_(devices), replicas_(std::move(replicas)), algo_(algo) {
  if (replicas_.size() < 2)
    throw std::invalid_argument("GradientSynchronizer: need >= 2 replicas");
  if (replicas_.size() > devices_.device_count())
    throw std::invalid_argument(
        "GradientSynchronizer: more replicas than devices");

  const auto& reference = replicas_.front();
  for (const auto& replica : replicas_) {
    if (replica.size() != reference.size())
      throw std::invalid_argument(
          "GradientSynchronizer: replicas have different parameter counts");
    for (std::size_t i = 0; i < replica.size(); ++i)
      if (!replica[i]->value.same_shape(reference[i]->value))
        throw std::invalid_argument(
            "GradientSynchronizer: parameter shape mismatch across replicas");
  }
  for (const nn::Param* p : reference) flat_size_ += p->size();

  buckets_.reserve(replicas_.size());
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    Expected<mem::Buffer> bucket = mem::Buffer::on_device(
        devices_.device(r), flat_size_ * sizeof(float));
    bucket.status().throw_if_error();
    buckets_.push_back(std::move(bucket).value());
  }
}

void GradientSynchronizer::pack(std::size_t rank) {
  auto& dev = devices_.device(rank);
  float* bucket = buckets_[rank].view<float>().data();
  std::size_t offset = 0;
  for (nn::Param* p : replicas_[rank]) {
    const float* g = p->grad.data();
    const std::size_t n = p->size();
    dev.launch_linear("ddp_pack", n, 256, [&](const gpu::ThreadCtx& ctx) {
      const std::uint64_t i = ctx.global_x();
      bucket[offset + i] = g[i];
      ctx.add_bytes(2.0 * sizeof(float));
    });
    offset += n;
  }
}

void GradientSynchronizer::unpack(std::size_t rank) {
  auto& dev = devices_.device(rank);
  const float* bucket = buckets_[rank].view<float>().data();
  std::size_t offset = 0;
  for (nn::Param* p : replicas_[rank]) {
    float* g = p->grad.data();
    const std::size_t n = p->size();
    dev.launch_linear("ddp_unpack", n, 256, [&](const gpu::ThreadCtx& ctx) {
      const std::uint64_t i = ctx.global_x();
      g[i] = bucket[offset + i];
      ctx.add_bytes(2.0 * sizeof(float));
    });
    offset += n;
  }
}

void GradientSynchronizer::sync() {
  const std::size_t k = replicas_.size();
  for (std::size_t r = 0; r < k; ++r) pack(r);

  std::vector<dflow::CollectiveBuffer> bufs;
  bufs.reserve(k);
  for (std::size_t r = 0; r < k; ++r)
    bufs.push_back({r, buckets_[r].view<float>().data()});

  switch (algo_) {
    case AllReduceAlgo::kRing:
      dflow::ring_allreduce_sum(devices_, bufs, flat_size_);
      break;
    case AllReduceAlgo::kNaive:
      dflow::naive_allreduce_sum(devices_, bufs, flat_size_);
      break;
  }
  dflow::scale_buffers(devices_, bufs, flat_size_,
                       1.0f / static_cast<float>(k));

  for (std::size_t r = 0; r < k; ++r) unpack(r);
}

void broadcast_params(gpu::DeviceManager& devices,
                      std::vector<std::vector<nn::Param*>>& replicas) {
  if (replicas.size() < 2) return;
  const auto& src = replicas.front();
  for (std::size_t r = 1; r < replicas.size(); ++r) {
    if (replicas[r].size() != src.size())
      throw std::invalid_argument("broadcast_params: replica count mismatch");
    for (std::size_t i = 0; i < src.size(); ++i) {
      if (!replicas[r][i]->value.same_shape(src[i]->value))
        throw std::invalid_argument("broadcast_params: shape mismatch");
      std::copy(src[i]->value.data(),
                src[i]->value.data() + src[i]->size(),
                replicas[r][i]->value.data());
      // Charge the broadcast as a peer copy on the wire.
      const std::size_t bytes = src[i]->size() * sizeof(float);
      const double dur =
          devices.device(0).timing().peer_transfer_seconds(bytes);
      devices.device(r).charge("param_broadcast",
                               prof::EventKind::kMemcpyD2D, dur, 0,
                               {{"bytes", static_cast<double>(bytes)}});
    }
  }
}

}  // namespace sagesim::ddp
