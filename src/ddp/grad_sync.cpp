#include "ddp/grad_sync.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "compute/autotuner.hpp"
#include "dflow/collectives.hpp"

namespace sagesim::ddp {

namespace {

/// SAGESIM_DDP_BUCKET_MB in bytes, or 0 when unset/unparseable.
std::size_t env_bucket_bytes() {
  static const std::size_t cached = [] {
    if (const char* env = std::getenv("SAGESIM_DDP_BUCKET_MB")) {
      char* end = nullptr;
      const unsigned long mb = std::strtoul(env, &end, 10);
      if (end != env && mb > 0) return static_cast<std::size_t>(mb) << 20;
    }
    return std::size_t{0};
  }();
  return cached;
}

constexpr std::size_t kDefaultBucketBytes = std::size_t{4} << 20;

}  // namespace

std::size_t default_bucket_bytes() {
  const std::size_t env = env_bucket_bytes();
  return env != 0 ? env : kDefaultBucketBytes;
}

std::size_t resolve_bucket_bytes(std::size_t flat_bytes, std::size_t ranks) {
  // Explicit env override > tuned value > default.  The env var stays the
  // strongest so a user can pin the bucket size while experimenting even
  // with a tuning cache in place.
  const std::size_t env = env_bucket_bytes();
  if (env != 0) return env;
  const std::size_t tuned =
      compute::Autotuner::shared().ddp_bucket_bytes(flat_bytes, ranks);
  if (tuned != 0) return tuned;
  return kDefaultBucketBytes;
}

GradientSynchronizer::GradientSynchronizer(
    gpu::DeviceManager& devices,
    std::vector<std::vector<nn::Param*>> replicas, SyncOptions options)
    : devices_(devices), replicas_(std::move(replicas)), options_(options) {
  if (replicas_.size() < 2)
    throw std::invalid_argument("GradientSynchronizer: need >= 2 replicas");
  if (replicas_.size() > devices_.device_count())
    throw std::invalid_argument(
        "GradientSynchronizer: more replicas than devices");
  const auto& reference = replicas_.front();
  for (const auto& replica : replicas_) {
    if (replica.size() != reference.size())
      throw std::invalid_argument(
          "GradientSynchronizer: replicas have different parameter counts");
    for (std::size_t i = 0; i < replica.size(); ++i)
      if (!replica[i]->value.same_shape(reference[i]->value))
        throw std::invalid_argument(
            "GradientSynchronizer: parameter shape mismatch across replicas");
  }
  for (const nn::Param* p : reference) flat_size_ += p->size();

  // Bucket sizing waits until the replica's flat size is known so the
  // autotuner can be consulted with the real (bytes, ranks) shape key.
  if (options_.bucket_bytes == 0)
    options_.bucket_bytes =
        resolve_bucket_bytes(flat_size_ * sizeof(float), replicas_.size());

  build_plan();

  buckets_.reserve(replicas_.size());
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    Expected<mem::Buffer> bucket = mem::Buffer::on_device(
        devices_.device(r), flat_size_ * sizeof(float));
    bucket.status().throw_if_error();
    buckets_.push_back(std::move(bucket).value());
  }

  index_of_.resize(replicas_.size());
  for (std::size_t r = 0; r < replicas_.size(); ++r)
    for (std::size_t i = 0; i < replicas_[r].size(); ++i)
      index_of_[r].emplace(replicas_[r][i], i);

  state_.resize(plan_.size());
  std::lock_guard lock(mutex_);
  reset_state_locked();
}

GradientSynchronizer::GradientSynchronizer(
    gpu::DeviceManager& devices,
    std::vector<std::vector<nn::Param*>> replicas, AllReduceAlgo algo)
    : GradientSynchronizer(devices, std::move(replicas),
                           SyncOptions{.algo = algo}) {}

void GradientSynchronizer::build_plan() {
  // Reverse registration order: backward produces the last layer's gradients
  // first, so bucket 0 — the first to fill — holds the tail parameters.
  // The flat buffer is laid out in bucket order, so each bucket is one
  // contiguous range.
  const auto& reference = replicas_.front();
  const std::size_t n = reference.size();
  bucket_of_.assign(n, 0);
  std::size_t flat_off = 0;
  Bucket cur;
  auto flush = [&] {
    if (cur.params.empty()) return;
    plan_.push_back(cur);
    cur = Bucket{};
    cur.flat_off = flat_off;
  };
  cur.flat_off = 0;
  for (std::size_t i = n; i-- > 0;) {
    const std::size_t elems = reference[i]->size();
    if (!cur.params.empty() &&
        (cur.elems + elems) * sizeof(float) > options_.bucket_bytes)
      flush();
    cur.params.push_back(i);
    cur.elems += elems;
    flat_off += elems;
  }
  flush();
  for (std::size_t b = 0; b < plan_.size(); ++b)
    for (const std::size_t i : plan_[b].params) bucket_of_[i] = b;
}

void GradientSynchronizer::reset_state_locked() {
  const std::size_t k = replicas_.size();
  for (std::size_t b = 0; b < plan_.size(); ++b) {
    BucketState& st = state_[b];
    st.seen.assign(k * plan_[b].params.size(), 0);
    st.pending.assign(k, plan_[b].params.size());
    st.ready_s.assign(k, 0.0);
    st.ranks_pending = k;
    st.fired = false;
  }
}

void GradientSynchronizer::pack_bucket(std::size_t rank, const Bucket& b,
                                       int stream) {
  auto& dev = devices_.device(rank);
  float* bucket = buckets_[rank].view<float>().data();
  gpu::LaunchOptions opts;
  opts.stream = stream;
  std::size_t offset = b.flat_off;
  for (const std::size_t i : b.params) {
    nn::Param* p = replicas_[rank][i];
    const float* g = p->grad.data();
    const std::size_t n = p->size();
    dev.launch_linear(
        "ddp_pack", n, 256,
        [&](const gpu::ThreadCtx& ctx) {
          const std::uint64_t j = ctx.global_x();
          bucket[offset + j] = g[j];
          ctx.add_bytes(2.0 * sizeof(float));
        },
        opts);
    offset += n;
  }
}

void GradientSynchronizer::unpack_bucket(std::size_t rank, const Bucket& b,
                                         int stream) {
  auto& dev = devices_.device(rank);
  const float* bucket = buckets_[rank].view<float>().data();
  gpu::LaunchOptions opts;
  opts.stream = stream;
  std::size_t offset = b.flat_off;
  for (const std::size_t i : b.params) {
    nn::Param* p = replicas_[rank][i];
    float* g = p->grad.data();
    const std::size_t n = p->size();
    dev.launch_linear(
        "ddp_unpack", n, 256,
        [&](const gpu::ThreadCtx& ctx) {
          const std::uint64_t j = ctx.global_x();
          g[j] = bucket[offset + j];
          ctx.add_bytes(2.0 * sizeof(float));
        },
        opts);
    offset += n;
  }
}

void GradientSynchronizer::run_bucket_locked(std::size_t bi, bool on_comm) {
  const Bucket& b = plan_[bi];
  BucketState& st = state_[bi];
  const std::size_t k = replicas_.size();

  std::vector<dflow::CollectiveBuffer> bufs;
  bufs.reserve(k);
  double bucket_start = 0.0;
  for (std::size_t r = 0; r < k; ++r) {
    auto& dev = devices_.device(r);
    const int stream = on_comm ? dev.comm_stream() : 0;
    if (on_comm) {
      // The bucket's gradients exist only once the rank's backward compute
      // has produced them: floor the comm stream at the stream-0 cursor
      // recorded when the rank completed the bucket (or now, if sync() runs
      // it without notifications).
      const double ready =
          st.ready_s[r] > 0.0 ? st.ready_s[r] : dev.stream_time(0);
      dev.wait_event(stream, gpu::Event{ready, static_cast<int>(r), 0});
    }
    bucket_start = std::max(bucket_start, dev.stream_time(stream));
    pack_bucket(r, b, stream);
    bufs.push_back({r, buckets_[r].view<float>().data() + b.flat_off, stream,
                    0.0});
  }

  switch (options_.algo) {
    case AllReduceAlgo::kRing:
      dflow::ring_allreduce_sum(devices_, bufs, b.elems,
                                static_cast<int>(bi));
      break;
    case AllReduceAlgo::kNaive:
      dflow::naive_allreduce_sum(devices_, bufs, b.elems,
                                 static_cast<int>(bi));
      break;
  }
  dflow::scale_buffers(devices_, bufs, b.elems,
                       1.0f / static_cast<float>(k));
  st.fired = true;

  double bucket_end = bucket_start;
  for (const auto& buf : bufs)
    bucket_end = std::max(
        bucket_end, devices_.device(buf.device).stream_time(buf.stream));
  prof::TraceEvent e;
  e.name = "ddp_bucket";
  e.kind = prof::EventKind::kRange;
  e.start_s = bucket_start;
  e.duration_s = bucket_end - bucket_start;
  e.device = -1;
  e.stream = -1;
  e.counters["bucket"] = static_cast<double>(bi);
  e.counters["elems"] = static_cast<double>(b.elems);
  e.counters["comm"] = 1.0;
  devices_.timeline().record(std::move(e));
}

void GradientSynchronizer::notify_grad_ready(std::size_t rank,
                                             const nn::Param* param) {
  if (rank >= replicas_.size())
    throw std::out_of_range("notify_grad_ready: unknown rank");
  const auto it = index_of_[rank].find(param);
  if (it == index_of_[rank].end())
    throw std::invalid_argument(
        "notify_grad_ready: parameter not registered for this rank");
  const std::size_t i = it->second;
  const std::size_t bi = bucket_of_[i];
  const Bucket& b = plan_[bi];
  const auto slot_it = std::find(b.params.begin(), b.params.end(), i);
  const std::size_t slot =
      static_cast<std::size_t>(slot_it - b.params.begin());

  std::lock_guard lock(mutex_);
  BucketState& st = state_[bi];
  // A retried backward task re-notifies parameters it already reported;
  // recomputed gradients are bit-identical (deterministic compute over
  // unchanged inputs) and unpack is deferred to sync(), so a bucket that
  // already fired stays correct — just ignore the duplicate.
  if (st.fired) return;
  std::uint8_t& seen = st.seen[rank * b.params.size() + slot];
  if (seen != 0) return;
  seen = 1;
  if (--st.pending[rank] != 0) return;
  st.ready_s[rank] = devices_.device(rank).stream_time(0);
  if (--st.ranks_pending != 0) return;
  // Buckets complete in ascending order (every rank notifies bucket b's
  // parameters before bucket b+1's), and the mutex serializes execution, so
  // the comm streams see a deterministic bucket sequence.
  if (options_.overlap) run_bucket_locked(bi, /*on_comm=*/true);
}

void GradientSynchronizer::sync() {
  std::lock_guard lock(mutex_);
  for (std::size_t bi = 0; bi < plan_.size(); ++bi)
    if (!state_[bi].fired) run_bucket_locked(bi, options_.overlap);

  if (options_.overlap) {
    // The iteration's only compute/comm join point: stream 0 resumes after
    // the comm stream drains.  Whatever comm time stream 0 actually waits
    // here is the *exposed* communication; the rest was hidden under
    // backward.
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      auto& dev = devices_.device(r);
      dev.wait_event(0, dev.record_event(dev.comm_stream()));
    }
  }
  for (std::size_t r = 0; r < replicas_.size(); ++r)
    for (const Bucket& b : plan_) unpack_bucket(r, b, /*stream=*/0);
  reset_state_locked();
}

void GradientSynchronizer::reset_pending() {
  std::lock_guard lock(mutex_);
  reset_state_locked();
}

void broadcast_params(gpu::DeviceManager& devices,
                      std::vector<std::vector<nn::Param*>>& replicas) {
  if (replicas.size() < 2) return;
  const auto& src = replicas.front();
  for (std::size_t r = 1; r < replicas.size(); ++r) {
    if (replicas[r].size() != src.size())
      throw std::invalid_argument("broadcast_params: replica count mismatch");
    for (std::size_t i = 0; i < src.size(); ++i) {
      if (!replicas[r][i]->value.same_shape(src[i]->value))
        throw std::invalid_argument("broadcast_params: shape mismatch");
      tensor::Tensor& sv = src[i]->value;
      tensor::Tensor& dv = replicas[r][i]->value;
      const std::size_t bytes = src[i]->size() * sizeof(float);
      gpu::Device* sdev = sv.device();
      gpu::Device* ddev = dv.device();
      if (sv.placement() == mem::Placement::kDevice &&
          dv.placement() == mem::Placement::kDevice && sdev != nullptr &&
          ddev != nullptr && sdev->ordinal() != ddev->ordinal()) {
        // Device-resident replicas: the broadcast is a genuine peer copy —
        // accounted, priced by the actual source device, fencing both ends.
        devices.copy_peer(static_cast<std::size_t>(ddev->ordinal()),
                          dv.data(),
                          static_cast<std::size_t>(sdev->ordinal()),
                          sv.data(), bytes);
        continue;
      }
      std::copy(sv.data(), sv.data() + src[i]->size(), dv.data());
      // Host-placed replicas: model the same wire hop from rank 0's device
      // to rank r's.  Both streams advance to the common completion time —
      // the link is busy on the sending side too.
      const double dur =
          devices.device(0).timing().peer_transfer_seconds(bytes);
      const double start =
          std::max(devices.device(0).stream_time(0),
                   devices.device(r).stream_time(0));
      const gpu::Event fence{start + dur, 0, 0};
      devices.device(0).wait_event(0, fence);
      devices.device(r).wait_event(0, fence);
      prof::TraceEvent e;
      e.name = "param_broadcast";
      e.kind = prof::EventKind::kMemcpyD2D;
      e.start_s = start;
      e.duration_s = dur;
      e.device = 0;
      e.stream = 0;
      e.counters["bytes"] = static_cast<double>(bytes);
      e.counters["dst_device"] = static_cast<double>(r);
      e.counters["comm"] = 1.0;
      devices.timeline().record(std::move(e));
    }
  }
}

}  // namespace sagesim::ddp
