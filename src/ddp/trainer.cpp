#include "ddp/trainer.hpp"

#include <stdexcept>

namespace sagesim::ddp {

DataParallelTrainer::DataParallelTrainer(dflow::Cluster& cluster,
                                         const ModelFactory& model,
                                         const OptimizerFactory& optimizer,
                                         AllReduceAlgo algo)
    : cluster_(cluster) {
  const int world = cluster_.world_size();
  if (world < 2)
    throw std::invalid_argument(
        "DataParallelTrainer: need >= 2 workers (use a plain loop for 1)");
  models_.reserve(static_cast<std::size_t>(world));
  optimizers_.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    models_.push_back(model());
    optimizers_.push_back(optimizer());
  }

  std::vector<std::vector<nn::Param*>> replicas;
  replicas.reserve(models_.size());
  for (auto& m : models_) replicas.push_back(m->params());
  broadcast_params(cluster_.devices(), replicas);
  sync_ = std::make_unique<GradientSynchronizer>(cluster_.devices(), replicas,
                                                 algo);
}

StepStats DataParallelTrainer::step(const tensor::Tensor& x,
                                    std::span<const int> y) {
  if (y.size() != x.rows())
    throw std::invalid_argument("DataParallelTrainer::step: one label per row");
  const auto world = static_cast<std::size_t>(cluster_.world_size());
  if (x.rows() < world)
    throw std::invalid_argument(
        "DataParallelTrainer::step: batch smaller than world size");

  const double t0 = cluster_.devices().now_s();

  // One step = one task DAG on the unified runtime:
  // forward/backward per rank (pinned) -> gradient all-reduce (unpinned,
  // stealable) -> optimizer step per rank (pinned).  The dependency edges
  // replace the two host-side barriers the step used to take.
  std::vector<dflow::Future> grads;
  grads.reserve(world);
  for (std::size_t r = 0; r < world; ++r) {
    grads.push_back(cluster_.submit(
        "ddp_step:" + std::to_string(r),
        [&, r](dflow::WorkerCtx& ctx) -> std::any {
          const std::size_t begin = r * x.rows() / world;
          const std::size_t end = (r + 1) * x.rows() / world;
          const std::size_t rows = end - begin;

          tensor::Tensor shard(rows, x.cols());
          std::copy(x.data() + begin * x.cols(), x.data() + end * x.cols(),
                    shard.data());
          std::vector<int> labels(
              y.begin() + static_cast<std::ptrdiff_t>(begin),
              y.begin() + static_cast<std::ptrdiff_t>(end));

          auto& model = *models_[r];
          model.zero_grad();
          tensor::Tensor logits =
              model.forward(ctx.device, shard, /*train=*/true);
          auto loss = nn::softmax_cross_entropy(ctx.device, logits, labels);
          model.backward(ctx.device, loss.dlogits);
          return loss.loss;
        },
        {}, static_cast<int>(r)));
  }

  dflow::Future reduced = cluster_.submit(
      "ddp_allreduce",
      [&](dflow::WorkerCtx&) -> std::any {
        sync_->sync();
        return {};
      },
      grads, /*rank=*/-1);

  std::vector<dflow::Future> steps;
  steps.reserve(world);
  for (std::size_t r = 0; r < world; ++r) {
    steps.push_back(cluster_.submit(
        "ddp_optim:" + std::to_string(r),
        [&, r](dflow::WorkerCtx& ctx) -> std::any {
          auto params = models_[r]->params();
          optimizers_[r]->step(ctx.device, params);
          return {};
        },
        {reduced}, static_cast<int>(r)));
  }
  for (const auto& f : steps) f.wait();

  StepStats stats;
  for (const auto& f : grads) stats.mean_loss += f.get<double>();
  stats.mean_loss /= static_cast<double>(world);
  stats.sim_time_s = cluster_.devices().now_s() - t0;
  return stats;
}

tensor::Tensor DataParallelTrainer::predict(const tensor::Tensor& x) {
  return models_.front()->forward(&cluster_.devices().device(0), x,
                                  /*train=*/false);
}

}  // namespace sagesim::ddp
