#include "ddp/trainer.hpp"

#include <stdexcept>
#include <utility>

#include "nn/checkpoint.hpp"
#include "tensor/ops.hpp"

namespace sagesim::ddp {

DataParallelTrainer::DataParallelTrainer(dflow::Cluster& cluster,
                                         const ModelFactory& model,
                                         const OptimizerFactory& optimizer,
                                         TrainerOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  const int world = cluster_.world_size();
  if (world < 2)
    throw std::invalid_argument(
        "DataParallelTrainer: need >= 2 workers (use a plain loop for 1)");
  models_.reserve(static_cast<std::size_t>(world));
  optimizers_.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    models_.push_back(model());
    optimizers_.push_back(optimizer());
  }

  std::vector<std::vector<nn::Param*>> replicas;
  replicas.reserve(models_.size());
  for (auto& m : models_) replicas.push_back(m->params());
  // Place every replica's parameters and gradients on its rank's device up
  // front — the explicit placement transition (accounted H2D) that DDP's
  // "model.to(device)" performs.  Compute is unchanged: device storage stays
  // host-reachable, so kernels read the same bits either way.
  for (std::size_t r = 0; r < replicas.size(); ++r) {
    auto& dev = cluster_.devices().device(r);
    for (nn::Param* p : replicas[r]) {
      p->value.to_device(dev).throw_if_error();
      p->grad.to_device(dev).throw_if_error();
    }
  }
  // Broadcast after placement, so rank 0's weights travel the peer links as
  // accounted device-to-device copies.
  broadcast_params(cluster_.devices(), replicas);
  sync_ = std::make_unique<GradientSynchronizer>(
      cluster_.devices(), replicas,
      SyncOptions{.algo = options_.algo,
                  .bucket_bytes = options_.bucket_bytes,
                  .overlap = options_.overlap});
}

Expected<StepStats> DataParallelTrainer::try_step(const tensor::Tensor& x,
                                                  std::span<const int> y) {
  if (y.size() != x.rows())
    throw std::invalid_argument("DataParallelTrainer::step: one label per row");
  const auto world = static_cast<std::size_t>(cluster_.world_size());
  const std::size_t accum = options_.grad_accum_steps;
  if (accum == 0)
    throw std::invalid_argument(
        "DataParallelTrainer::step: grad_accum_steps must be >= 1");
  if (x.rows() < world * accum)
    throw std::invalid_argument(
        "DataParallelTrainer::step: batch smaller than world * accum slices");

  const double t0 = cluster_.devices().now_s();

  // Quiescent here (every prior step's futures were waited out), so any
  // readiness state left by an aborted attempt is safe to drop.
  sync_->reset_pending();

  // One step = one task DAG on the unified runtime:
  // forward/backward per rank (pinned) -> gradient all-reduce (unpinned,
  // stealable) -> optimizer step per rank (pinned).  Every node goes
  // through submit_retry: an injected preemption fails the attempt *before*
  // the body runs, so re-running is always safe; the real bodies are also
  // idempotent (zero_grad at the top; averaging already-equal grads is a
  // fixed point), so a retry after a genuine mid-body failure converges
  // too.
  std::vector<dflow::Future> grads;
  grads.reserve(world);
  for (std::size_t r = 0; r < world; ++r) {
    grads.push_back(cluster_.submit_retry(
        "ddp_step:" + std::to_string(r),
        [&, r](dflow::WorkerCtx& ctx) -> std::any {
          const std::size_t begin = r * x.rows() / world;
          const std::size_t end = (r + 1) * x.rows() / world;
          const std::size_t rows = end - begin;

          auto& model = *models_[r];
          model.zero_grad();
          double shard_loss = 0.0;
          for (std::size_t a = 0; a < accum; ++a) {
            const std::size_t mb = begin + a * rows / accum;
            const std::size_t me = begin + (a + 1) * rows / accum;
            const std::size_t mrows = me - mb;

            tensor::Tensor slice(mrows, x.cols());
            std::copy(x.data() + mb * x.cols(), x.data() + me * x.cols(),
                      slice.data());
            if (ctx.device != nullptr)
              slice.to_device(*ctx.device).throw_if_error();
            std::vector<int> labels(
                y.begin() + static_cast<std::ptrdiff_t>(mb),
                y.begin() + static_cast<std::ptrdiff_t>(me));

            tensor::Tensor logits =
                model.forward(ctx.device, slice, /*train=*/true);
            auto loss = nn::softmax_cross_entropy(ctx.device, logits, labels);
            const float w =
                static_cast<float>(mrows) / static_cast<float>(rows);
            shard_loss += loss.loss * static_cast<double>(w);
            if (accum > 1)
              // Per-slice dlogits are means over mrows; re-weight so the
              // accumulated gradient is the mean over the whole shard.
              tensor::ops::scale(ctx.device, loss.dlogits, w);
            // Sync hooks fire only on the final slice — earlier backwards
            // must accumulate locally, not trigger a partial all-reduce.
            if (options_.overlap && a + 1 == accum) {
              model.backward(ctx.device, loss.dlogits, [&](nn::Param* p) {
                sync_->notify_grad_ready(r, p);
              });
            } else {
              model.backward(ctx.device, loss.dlogits);
            }
          }
          return shard_loss;
        },
        {}, static_cast<int>(r), options_.retry, options_.task_timeout_s));
  }

  dflow::Future reduced = cluster_.submit_retry(
      "ddp_allreduce",
      [&](dflow::WorkerCtx&) -> std::any {
        sync_->sync();
        return {};
      },
      grads, /*rank=*/-1, options_.retry, options_.task_timeout_s);

  std::vector<dflow::Future> steps;
  steps.reserve(world);
  for (std::size_t r = 0; r < world; ++r) {
    steps.push_back(cluster_.submit_retry(
        "ddp_optim:" + std::to_string(r),
        [&, r](dflow::WorkerCtx& ctx) -> std::any {
          auto params = models_[r]->params();
          optimizers_[r]->step(ctx.device, params);
          return {};
        },
        {reduced}, static_cast<int>(r), options_.retry,
        options_.task_timeout_s));
  }
  for (const auto& f : steps) {
    const Status s = f.wait_status();
    if (!s.ok()) return s;
  }

  StepStats stats;
  for (const auto& f : grads) {
    Expected<double> loss = f.result<double>();
    if (!loss) return loss.status();
    stats.mean_loss += *loss;
  }
  stats.mean_loss /= static_cast<double>(world);
  stats.sim_time_s = cluster_.devices().now_s() - t0;
  return stats;
}

Status DataParallelTrainer::save_checkpoint(std::uint64_t epoch) const {
  if (options_.checkpoint_dir.empty())
    return Status::failed_precondition(
        "DataParallelTrainer: checkpointing disabled (no checkpoint_dir)");
  nn::Checkpoint ckpt;
  ckpt.epoch = epoch;
  ckpt.scalars["world"] = static_cast<double>(models_.size());
  for (std::size_t r = 0; r < models_.size(); ++r) {
    const std::string base = "r" + std::to_string(r) + ".";
    auto params = models_[r]->params();
    for (std::size_t p = 0; p < params.size(); ++p)
      ckpt.put(base + "param" + std::to_string(p), params[p]->value);
    const auto opt_state = optimizers_[r]->state();
    for (std::size_t s = 0; s < opt_state.size(); ++s)
      ckpt.put(base + "opt" + std::to_string(s), opt_state[s]);
    ckpt.scalars[base + "opt_n"] = static_cast<double>(opt_state.size());
    ckpt.scalars[base + "opt_t"] =
        static_cast<double>(optimizers_[r]->step_count());
  }
  return nn::save_checkpoint(
      nn::checkpoint_path(options_.checkpoint_dir, options_.checkpoint_prefix,
                          epoch),
      ckpt);
}

Expected<std::uint64_t> DataParallelTrainer::restore_latest() {
  if (options_.checkpoint_dir.empty())
    return Status::failed_precondition(
        "DataParallelTrainer: checkpointing disabled (no checkpoint_dir)");
  Expected<nn::Checkpoint> loaded = nn::load_latest_checkpoint(
      options_.checkpoint_dir, options_.checkpoint_prefix);
  if (!loaded) return loaded.status();
  const nn::Checkpoint& ckpt = *loaded;

  const auto world_it = ckpt.scalars.find("world");
  if (world_it == ckpt.scalars.end() ||
      static_cast<std::size_t>(world_it->second) != models_.size())
    return Status::failed_precondition(
        "DataParallelTrainer: checkpoint world size mismatch");

  for (std::size_t r = 0; r < models_.size(); ++r) {
    const std::string base = "r" + std::to_string(r) + ".";
    auto params = models_[r]->params();
    for (std::size_t p = 0; p < params.size(); ++p) {
      const std::string name = base + "param" + std::to_string(p);
      const auto it = ckpt.tensors.find(name);
      if (it == ckpt.tensors.end() ||
          !it->second.same_shape(params[p]->value))
        return Status::failed_precondition(
            "DataParallelTrainer: checkpoint parameter shape mismatch");
      params[p]->value = it->second;  // host copy; re-place below
      const nn::TensorPlacement place = ckpt.placement_of(name);
      if (place.placement != mem::Placement::kHost) {
        if (place.device < 0 ||
            place.device >=
                static_cast<std::int32_t>(cluster_.devices().device_count()))
          return Status::failed_precondition(
              "DataParallelTrainer: checkpoint placement names device " +
              std::to_string(place.device) + " not present in this cluster");
        const Status moved = params[p]->value.to_device(
            cluster_.devices().device(static_cast<std::size_t>(place.device)));
        if (!moved.ok()) return moved;
      }
    }
    const auto n_it = ckpt.scalars.find(base + "opt_n");
    const std::size_t opt_n =
        n_it == ckpt.scalars.end() ? 0
                                   : static_cast<std::size_t>(n_it->second);
    std::vector<tensor::Tensor> opt_state;
    opt_state.reserve(opt_n);
    for (std::size_t s = 0; s < opt_n; ++s) {
      const auto it = ckpt.tensors.find(base + "opt" + std::to_string(s));
      if (it == ckpt.tensors.end())
        return Status::failed_precondition(
            "DataParallelTrainer: checkpoint optimizer state missing");
      opt_state.push_back(it->second);
    }
    optimizers_[r]->set_state(std::move(opt_state));
    if (const auto t_it = ckpt.scalars.find(base + "opt_t");
        t_it != ckpt.scalars.end())
      optimizers_[r]->set_step_count(
          static_cast<std::uint64_t>(t_it->second));
  }
  return ckpt.epoch;
}

tensor::Tensor DataParallelTrainer::predict(const tensor::Tensor& x) {
  return models_.front()->forward(&cluster_.devices().device(0), x,
                                  /*train=*/false);
}

}  // namespace sagesim::ddp
