// Data-parallel trainer: replicates a Sequential model across simulated
// GPUs, shards the batch, and synchronizes gradients every step — the
// Week-10 "PyTorch DDP across 2 GPUs" lab as a library.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "ddp/grad_sync.hpp"
#include "dflow/cluster.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "nn/sequential.hpp"

namespace sagesim::ddp {

/// Builds one fresh model replica; called once per rank.  Replicas must
/// have identical architecture; initial weights are broadcast from rank 0.
using ModelFactory = std::function<std::unique_ptr<nn::Sequential>()>;

/// Builds one optimizer per rank (optimizers hold per-replica state).
using OptimizerFactory = std::function<std::unique_ptr<nn::Optimizer>()>;

struct StepStats {
  double mean_loss{0.0};
  double sim_time_s{0.0};   ///< simulated wall time consumed by the step
};

class DataParallelTrainer {
 public:
  DataParallelTrainer(dflow::Cluster& cluster, const ModelFactory& model,
                      const OptimizerFactory& optimizer,
                      AllReduceAlgo algo = AllReduceAlgo::kRing);

  int world_size() const { return cluster_.world_size(); }

  /// One synchronous step: shards (X, y) across ranks by contiguous row
  /// ranges, runs forward/backward per rank in parallel, all-reduces
  /// gradients, and steps every optimizer.  Returns the mean loss across
  /// ranks and the simulated time the step consumed.
  StepStats step(const tensor::Tensor& x, std::span<const int> y);

  /// Inference on rank 0's replica.
  tensor::Tensor predict(const tensor::Tensor& x);

  nn::Sequential& replica(int rank) { return *models_.at(static_cast<std::size_t>(rank)); }

 private:
  dflow::Cluster& cluster_;
  std::vector<std::unique_ptr<nn::Sequential>> models_;
  std::vector<std::unique_ptr<nn::Optimizer>> optimizers_;
  std::unique_ptr<GradientSynchronizer> sync_;
};

}  // namespace sagesim::ddp
