// Data-parallel trainer: replicates a Sequential model across simulated
// GPUs, shards the batch, and synchronizes gradients every step — the
// Week-10 "PyTorch DDP across 2 GPUs" lab as a library.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "ddp/grad_sync.hpp"
#include "dflow/cluster.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "nn/sequential.hpp"

namespace sagesim::ddp {

/// Builds one fresh model replica; called once per rank.  Replicas must
/// have identical architecture; initial weights are broadcast from rank 0.
using ModelFactory = std::function<std::unique_ptr<nn::Sequential>()>;

/// Builds one optimizer per rank (optimizers hold per-replica state).
using OptimizerFactory = std::function<std::unique_ptr<nn::Optimizer>()>;

struct StepStats {
  double mean_loss{0.0};
  double sim_time_s{0.0};   ///< simulated wall time consumed by the step
};

/// Aggregate trainer configuration (the ClusterOptions analogue one layer
/// up): collective algorithm, checkpoint placement, retry/deadline policy.
struct TrainerOptions {
  AllReduceAlgo algo{AllReduceAlgo::kRing};
  /// Gradient bucket granularity in bytes; 0 resolves via
  /// ddp::resolve_bucket_bytes — SAGESIM_DDP_BUCKET_MB, then a tuned
  /// compute::Autotuner entry, then 4 MiB.  See SyncOptions::bucket_bytes.
  std::size_t bucket_bytes{0};
  /// Overlap bucketed gradient communication with backward compute on the
  /// per-device comm streams.  See SyncOptions::overlap.
  bool overlap{true};
  /// Micro-batches per optimizer step (>= 1).  Each rank splits its shard
  /// into this many contiguous slices and accumulates gradients across
  /// them before the single all-reduce — the out-of-core trade: peak
  /// activation memory shrinks by ~accum while the synchronized update
  /// matches the full-shard step up to float re-association (per-slice
  /// dlogits are rescaled by slice/shard row ratios, so the accumulated
  /// gradient is the same mean over the shard).
  std::size_t grad_accum_steps{1};
  /// Directory for epoch checkpoints; empty disables save/restore.
  std::string checkpoint_dir{};
  std::string checkpoint_prefix{"ddp"};
  /// Backoff schedule for retryable step-task failures (preemption,
  /// deadline, unavailable rank).
  dflow::RetryPolicy retry{};
  /// Per-attempt wall-clock deadline for each step task; 0 == none.
  double task_timeout_s{0.0};
};

class DataParallelTrainer {
 public:
  DataParallelTrainer(dflow::Cluster& cluster, const ModelFactory& model,
                      const OptimizerFactory& optimizer,
                      TrainerOptions options = {});

  int world_size() const { return cluster_.world_size(); }
  const TrainerOptions& options() const { return options_; }

  /// One synchronous step: shards (X, y) across ranks by contiguous row
  /// ranges, runs forward/backward per rank in parallel, all-reduces
  /// gradients, and steps every optimizer.  Each task rides the cluster's
  /// retry policy, so injected preemptions are absorbed transparently; the
  /// returned Status is the first *unrecovered* failure.  Malformed input
  /// (label/row mismatch, batch < world) still throws — API misuse.
  Expected<StepStats> try_step(const tensor::Tensor& x,
                               std::span<const int> y);

  /// Writes an epoch checkpoint (per-replica parameters + optimizer state)
  /// under options().checkpoint_dir.  kFailedPrecondition when
  /// checkpointing is disabled.
  Status save_checkpoint(std::uint64_t epoch) const;

  /// Restores the newest loadable checkpoint, skipping corrupt files, and
  /// returns its epoch.  kUnavailable when none exists; kFailedPrecondition
  /// when the checkpoint's world size or shapes do not match.
  Expected<std::uint64_t> restore_latest();

  /// Inference on rank 0's replica.
  tensor::Tensor predict(const tensor::Tensor& x);

  nn::Sequential& replica(int rank) { return *models_.at(static_cast<std::size_t>(rank)); }

 private:
  dflow::Cluster& cluster_;
  TrainerOptions options_;
  std::vector<std::unique_ptr<nn::Sequential>> models_;
  std::vector<std::unique_ptr<nn::Optimizer>> optimizers_;
  std::unique_ptr<GradientSynchronizer> sync_;
};

}  // namespace sagesim::ddp
