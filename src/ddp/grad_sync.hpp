// Gradient synchronization across model replicas on multiple simulated
// GPUs — the core of PyTorch DDP as taught in the Week-10 lab, and the
// "Aggregate gradients from all workers" step of Algorithm 1.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "gpusim/device_manager.hpp"
#include "mem/buffer.hpp"
#include "nn/layer.hpp"

namespace sagesim::ddp {

enum class AllReduceAlgo : std::uint8_t {
  kRing,   ///< chunked ring (NCCL-style), bandwidth-optimal
  kNaive,  ///< gather-to-root + broadcast, the ablation baseline
};

/// Gradient-sync configuration (mirrors torch DDP's bucket_cap_mb and the
/// overlap that DDP's backward hooks provide).
struct SyncOptions {
  AllReduceAlgo algo{AllReduceAlgo::kRing};
  /// Bucket granularity in bytes.  0 resolves via resolve_bucket_bytes:
  /// SAGESIM_DDP_BUCKET_MB (MiB) wins, then a compute::Autotuner entry for
  /// the replica's (bytes, ranks) shape, then the 4 MiB default.
  /// Parameters are bucketed in reverse registration order —
  /// the order backward produces gradients — and one parameter never splits
  /// across buckets.
  std::size_t bucket_bytes{0};
  /// Fire each bucket's collective on the per-device comm streams as soon as
  /// every rank has reported the bucket's gradients ready
  /// (notify_grad_ready), overlapping the rest of backward.  When false,
  /// buckets run back-to-back on stream 0 inside sync().
  bool overlap{true};
};

/// Resolves SyncOptions::bucket_bytes == 0 (env var or 4 MiB default).
std::size_t default_bucket_bytes();

/// Full resolution chain for SyncOptions::bucket_bytes == 0: an explicit
/// SAGESIM_DDP_BUCKET_MB wins, then a compute::Autotuner entry for the
/// (replica bytes, rank count) shape, then the 4 MiB default.  This is what
/// the synchronizer's constructor applies once the replica size is known.
std::size_t resolve_bucket_bytes(std::size_t flat_bytes, std::size_t ranks);

/// Synchronizes gradients across replicas.
///
/// Each rank r holds a replica whose parameters are params[r] (same shapes
/// in the same order across ranks).  Gradients are packed into fixed-size
/// buckets (reverse parameter order); each bucket is all-reduced and
/// averaged independently.  With overlap enabled, notify_grad_ready() fires
/// a bucket's collective on the comm streams the moment its last gradient
/// lands, so communication hides under the remaining backward compute;
/// sync() runs whatever has not fired, fences stream 0 on the comm streams,
/// and unpacks — after which every replica holds identical mean gradients.
///
/// Bit-identity: collectives fold in ascending rank order per element
/// (see dflow/collectives.hpp), so the result bits are independent of
/// bucket count, overlap, and algorithm.
class GradientSynchronizer {
 public:
  /// @param devices  rank r's bucket lives on devices.device(r)
  /// @param replicas per-rank parameter lists (borrowed; caller keeps alive)
  GradientSynchronizer(gpu::DeviceManager& devices,
                       std::vector<std::vector<nn::Param*>> replicas,
                       SyncOptions options);

  /// Legacy flat-signature constructor (defaulted bucket size, overlap on).
  GradientSynchronizer(gpu::DeviceManager& devices,
                       std::vector<std::vector<nn::Param*>> replicas,
                       AllReduceAlgo algo = AllReduceAlgo::kRing);

  /// Reports that @p rank finished computing the gradient of @p param this
  /// iteration (DDP's autograd hook).  Thread-safe; duplicate notifications
  /// are ignored, so retried backward tasks are harmless.  When the last
  /// outstanding (rank, param) of a bucket arrives and overlap is enabled,
  /// the notifying thread packs and all-reduces that bucket on the comm
  /// streams before returning.
  void notify_grad_ready(std::size_t rank, const nn::Param* param);

  /// Completes the iteration: runs any bucket that has not fired, fences
  /// each rank's stream 0 on its comm stream, unpacks averaged gradients
  /// into every replica, and resets readiness state for the next iteration.
  void sync();

  /// Drops partial readiness state without communicating — call at a
  /// quiescent point before re-running a failed step/chunk so stale
  /// notifications from the aborted attempt cannot leak into the retry.
  void reset_pending();

  /// Total parameter element count per replica.
  std::size_t flat_size() const { return flat_size_; }

  /// Number of gradient buckets.
  std::size_t bucket_count() const { return plan_.size(); }

  AllReduceAlgo algorithm() const { return options_.algo; }
  const SyncOptions& options() const { return options_; }

 private:
  /// One bucket: a contiguous [flat_off, flat_off+elems) range of the
  /// per-rank flat buffer holding the listed parameters (reverse order).
  struct Bucket {
    std::vector<std::size_t> params;  ///< indices into replicas_[r]
    std::size_t flat_off{0};
    std::size_t elems{0};
  };

  /// Per-iteration readiness state of one bucket.
  struct BucketState {
    std::vector<std::uint8_t> seen;   ///< [rank * params.size() + slot]
    std::vector<std::size_t> pending; ///< params outstanding, per rank
    std::vector<double> ready_s;      ///< rank's stream-0 cursor at readiness
    std::size_t ranks_pending{0};
    bool fired{false};
  };

  void build_plan();
  void reset_state_locked();
  void pack_bucket(std::size_t rank, const Bucket& b, int stream);
  void unpack_bucket(std::size_t rank, const Bucket& b, int stream);
  /// Packs, all-reduces and averages bucket @p bi on the given streams.
  /// @p on_comm selects the comm streams (with per-rank readiness floors)
  /// vs stream 0.  Caller holds mutex_.
  void run_bucket_locked(std::size_t bi, bool on_comm);

  gpu::DeviceManager& devices_;
  std::vector<std::vector<nn::Param*>> replicas_;
  SyncOptions options_;
  std::size_t flat_size_{0};
  std::vector<mem::Buffer> buckets_;  ///< one flat buffer per rank, pooled
  std::vector<Bucket> plan_;
  std::vector<std::size_t> bucket_of_;  ///< param index -> bucket index
  /// Per-rank map from borrowed Param pointer to its index.
  std::vector<std::unordered_map<const nn::Param*, std::size_t>> index_of_;

  std::mutex mutex_;  // guards state_ and serializes bucket collectives
  std::vector<BucketState> state_;
};

/// Copies rank 0's parameter values to every other replica (initial
/// broadcast so replicas start identical).  Device-placed parameters move
/// through DeviceManager::copy_peer — accounted, priced by the actual
/// source device, fencing both ends of the link; host-placed parameters
/// fall back to a host copy charged as the same wire hop.
void broadcast_params(gpu::DeviceManager& devices,
                      std::vector<std::vector<nn::Param*>>& replicas);

}  // namespace sagesim::ddp
