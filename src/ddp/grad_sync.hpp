// Gradient synchronization across model replicas on multiple simulated
// GPUs — the core of PyTorch DDP as taught in the Week-10 lab, and the
// "Aggregate gradients from all workers" step of Algorithm 1.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/device_manager.hpp"
#include "mem/buffer.hpp"
#include "nn/layer.hpp"

namespace sagesim::ddp {

enum class AllReduceAlgo : std::uint8_t {
  kRing,   ///< chunked ring (NCCL-style), bandwidth-optimal
  kNaive,  ///< gather-to-root + broadcast, the ablation baseline
};

/// Synchronizes gradients across replicas.
///
/// Each rank r holds a replica whose parameters are params[r] (same shapes
/// in the same order across ranks).  sync() packs every rank's gradients
/// into a flat device bucket, all-reduces the buckets, averages, and
/// unpacks — after which every replica holds identical mean gradients.
class GradientSynchronizer {
 public:
  /// @param devices  rank r's bucket lives on devices.device(r)
  /// @param replicas per-rank parameter lists (borrowed; caller keeps alive)
  GradientSynchronizer(gpu::DeviceManager& devices,
                       std::vector<std::vector<nn::Param*>> replicas,
                       AllReduceAlgo algo = AllReduceAlgo::kRing);

  /// Average gradients across replicas (in place on every replica).
  void sync();

  /// Total parameter element count per replica.
  std::size_t flat_size() const { return flat_size_; }

  AllReduceAlgo algorithm() const { return algo_; }

 private:
  void pack(std::size_t rank);
  void unpack(std::size_t rank);

  gpu::DeviceManager& devices_;
  std::vector<std::vector<nn::Param*>> replicas_;
  AllReduceAlgo algo_;
  std::size_t flat_size_{0};
  std::vector<mem::Buffer> buckets_;  ///< one per rank, pooled device memory
};

/// Copies rank 0's parameter values to every other replica (initial
/// broadcast so replicas start identical).
void broadcast_params(gpu::DeviceManager& devices,
                      std::vector<std::vector<nn::Param*>>& replicas);

}  // namespace sagesim::ddp
