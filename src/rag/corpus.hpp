// Document corpus plus a synthetic topic-model generator that stands in for
// the course's RAG datasets: documents have a known topic, so retrieval
// recall is measurable without human labels.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rag/tokenizer.hpp"
#include "stats/rng.hpp"

namespace sagesim::rag {

struct Document {
  std::uint32_t id{0};
  std::string text;
  int topic{-1};  ///< ground-truth topic for synthetic corpora, -1 unknown
};

class Corpus {
 public:
  /// Adds a document and returns its id.
  std::uint32_t add(std::string text, int topic = -1);

  std::size_t size() const { return docs_.size(); }
  const Document& doc(std::uint32_t id) const;
  const std::vector<Document>& docs() const { return docs_; }

 private:
  std::vector<Document> docs_;
};

/// Synthetic corpus: @p num_topics topics, each with a distinctive
/// vocabulary of @p words_per_topic words plus a shared background
/// vocabulary.  Documents mix ~85% topic words with background words.
struct SyntheticCorpusParams {
  std::size_t num_docs{1000};
  int num_topics{20};
  std::size_t words_per_topic{50};
  std::size_t background_words{200};
  std::size_t doc_length{40};
  double topic_word_fraction{0.85};
};

struct SyntheticCorpus {
  Corpus corpus;
  std::vector<std::string> all_words;  ///< generated lexicon
};

SyntheticCorpus synthetic_corpus(const SyntheticCorpusParams& params,
                                 stats::Rng& rng);

/// A query about @p topic drawn from the same generator (shorter: 5 words,
/// all topic words).
std::string synthetic_query(const SyntheticCorpusParams& params, int topic,
                            stats::Rng& rng);

}  // namespace sagesim::rag
