#include "rag/server.hpp"

#include <algorithm>
#include <any>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

#include "prof/counters.hpp"

namespace sagesim::rag {

using Clock = std::chrono::steady_clock;

Server::Server(RagPipeline& pipeline, ServeOptions options,
               runtime::Scheduler* scheduler)
    : pipeline_(pipeline),
      options_(options),
      scheduler_(scheduler != nullptr ? scheduler
                                      : &runtime::Scheduler::shared()),
      embed_cache_(options.embed_cache_entries),
      result_cache_(options.result_cache_entries) {
  if (options.max_batch == 0)
    throw std::invalid_argument("Server: max_batch must be > 0");
  batcher_ = std::thread([this] { batcher_main(); });
}

Server::~Server() { stop(); }

runtime::Future<RagAnswer> Server::submit(const std::string& query) {
  const std::uint64_t id = RagPipeline::query_id(query);
  const auto admitted = Clock::now();
  runtime::AnyFuture promise;
  promise.set_name("rag_request");

  bool rejected = false;
  std::optional<RagAnswer> cached;
  {
    std::lock_guard lock(mutex_);
    if (stop_) {
      rejected = true;
    } else {
      ++stats_.submitted;
      cached = result_cache_.get(id);
      if (cached) {
        ++stats_.completed;
        latency_.record(
            std::chrono::duration<double>(Clock::now() - admitted).count());
      } else {
        queue_.push_back(Pending{query, id, promise, admitted});
        cv_.notify_one();
      }
    }
  }

  if (rejected) {
    promise.fail(std::make_exception_ptr(StatusError(
        Status::failed_precondition("rag::Server stopped"))));
  } else if (cached) {
    prof::counter("rag.cache.result.hit").add();
    promise.deliver(std::any(std::move(*cached)));
  } else {
    prof::counter("rag.cache.result.miss").add();
  }
  return runtime::Future<RagAnswer>(promise);
}

Expected<RagAnswer> Server::answer(const std::string& query) {
  return submit(query).result();
}

void Server::drain() {
  std::unique_lock lock(mutex_);
  drained_cv_.wait(lock, [&] { return queue_.empty() && !busy_; });
}

void Server::stop() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

Server::Stats Server::stats() const {
  std::lock_guard lock(mutex_);
  Stats s = stats_;
  s.result_hits = result_cache_.hits();
  s.result_misses = result_cache_.misses();
  s.result_evictions = result_cache_.evictions();
  s.embed_hits = embed_cache_.hits();
  s.embed_misses = embed_cache_.misses();
  s.embed_evictions = embed_cache_.evictions();
  return s;
}

LatencyTracker Server::latency() const {
  std::lock_guard lock(mutex_);
  return latency_;
}

void Server::batcher_main() {
  std::unique_lock lock(mutex_);
  while (true) {
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // stop() flushes: only exit once drained
      continue;
    }

    // Flush when max_batch queries wait or the oldest hits max_delay_us;
    // a stop request flushes immediately.
    if (!stop_ && queue_.size() < options_.max_batch &&
        options_.max_delay_us > 0) {
      const auto flush_at =
          queue_.front().admitted +
          std::chrono::microseconds(options_.max_delay_us);
      cv_.wait_until(lock, flush_at, [&] {
        return stop_ || queue_.size() >= options_.max_batch;
      });
    }

    std::vector<Pending> batch;
    const std::size_t take = std::min(queue_.size(), options_.max_batch);
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    busy_ = true;
    lock.unlock();
    process_batch(std::move(batch));
    lock.lock();
    busy_ = false;
    if (queue_.empty()) drained_cv_.notify_all();
  }
}

void Server::process_batch(std::vector<Pending> batch) {
  // Expire requests that outlived their queueing deadline before doing any
  // work for them — under overload this is the back-pressure signal.
  std::vector<Pending> live;
  live.reserve(batch.size());
  if (options_.deadline_s > 0.0) {
    const auto now = Clock::now();
    std::vector<Pending> expired;
    for (auto& p : batch) {
      const double waited =
          std::chrono::duration<double>(now - p.admitted).count();
      (waited > options_.deadline_s ? expired : live).push_back(std::move(p));
    }
    if (!expired.empty()) {
      {
        std::lock_guard lk(mutex_);
        stats_.failed += expired.size();
        stats_.deadline_misses += expired.size();
      }
      prof::counter("rag.serve.deadline_miss").add(expired.size());
      for (auto& p : expired)
        p.promise.fail(std::make_exception_ptr(DeadlineExceeded(
            "request waited past the " + std::to_string(options_.deadline_s) +
            "s serve deadline")));
    }
  } else {
    live = std::move(batch);
  }
  if (live.empty()) return;

  // Assemble the encoded batch, row by row through the embedding cache.
  const std::size_t dim = pipeline_.config().embed_dim;
  tensor::Tensor encoded(live.size(), dim);
  std::vector<std::string> queries;
  queries.reserve(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    queries.push_back(live[i].query);
    std::optional<std::vector<float>> row;
    {
      std::lock_guard lk(mutex_);
      row = embed_cache_.get(live[i].id);
    }
    if (row) {
      prof::counter("rag.cache.embed.hit").add();
    } else {
      prof::counter("rag.cache.embed.miss").add();
      const tensor::Tensor e = pipeline_.encode_query(live[i].query);
      row.emplace(e.data(), e.data() + e.size());
      std::lock_guard lk(mutex_);
      embed_cache_.put(live[i].id, *row);
    }
    std::copy(row->begin(), row->end(), encoded.data() + i * dim);
  }

  // One retrieval + generation sweep as a task on the runtime pool.  The
  // batcher blocks on it, so batches are strictly sequential and the
  // pipeline sees a single caller.
  auto future = scheduler_->submit(
      "rag_batch", [this, encoded, queries]() -> std::vector<RagAnswer> {
        auto r = pipeline_.answer_encoded(encoded, queries);
        r.status().throw_if_error();
        return std::move(r).value();
      });
  const auto result = future.result();

  {
    std::lock_guard lk(mutex_);
    ++stats_.batches;
    stats_.batched_queries += live.size();
    stats_.largest_batch =
        std::max<std::uint64_t>(stats_.largest_batch, live.size());
  }
  prof::counter("rag.serve.batches").add();
  prof::counter("rag.serve.batched_queries").add(live.size());

  if (!result.has_value()) {
    {
      std::lock_guard lk(mutex_);
      stats_.failed += live.size();
    }
    for (auto& p : live)
      p.promise.fail(std::make_exception_ptr(StatusError(result.status())));
    return;
  }

  const auto done = Clock::now();
  for (std::size_t i = 0; i < live.size(); ++i) {
    RagAnswer a = (*result)[i];
    {
      std::lock_guard lk(mutex_);
      result_cache_.put(live[i].id, a);
      ++stats_.completed;
      latency_.record(
          std::chrono::duration<double>(done - live[i].admitted).count());
    }
    live[i].promise.deliver(std::any(std::move(a)));
  }
}

}  // namespace sagesim::rag
