#include "rag/tokenizer.hpp"

#include <cctype>
#include <stdexcept>

namespace sagesim::rag {

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

Vocabulary::Vocabulary() {
  words_.push_back("<unk>");
  ids_.emplace("<unk>", 0);
}

std::uint32_t Vocabulary::add(const std::string& word) {
  auto [it, inserted] =
      ids_.emplace(word, static_cast<std::uint32_t>(words_.size()));
  if (inserted) words_.push_back(word);
  return it->second;
}

std::uint32_t Vocabulary::id_of(const std::string& word) const {
  auto it = ids_.find(word);
  return it == ids_.end() ? kUnk : it->second;
}

const std::string& Vocabulary::word_of(std::uint32_t id) const {
  if (id >= words_.size())
    throw std::out_of_range("Vocabulary::word_of: unknown id " +
                            std::to_string(id));
  return words_[id];
}

}  // namespace sagesim::rag
