#include "rag/hnsw.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "compute/autotuner.hpp"

namespace sagesim::rag {

namespace {

/// Total order shared with the exact indexes: similarity descending, ties
/// toward the smaller id.
bool better_hit(const SearchHit& a, const SearchHit& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

}  // namespace

HnswIndex::HnswIndex(std::size_t dim, HnswParams params)
    : dim_(dim),
      params_(params),
      level_mult_(1.0 / std::log(static_cast<double>(params.M))),
      level_rng_(params.seed) {
  if (dim == 0) throw std::invalid_argument("HnswIndex: dim == 0");
  if (params.M < 2) throw std::invalid_argument("HnswIndex: M must be >= 2");
  if (params.ef_construction == 0 || params.ef_search == 0)
    throw std::invalid_argument("HnswIndex: ef must be > 0");
  if (params.shard_capacity == 0)
    throw std::invalid_argument("HnswIndex: shard_capacity == 0");
}

void HnswIndex::set_ef_search(std::size_t ef) {
  if (ef == 0) throw std::invalid_argument("set_ef_search: ef must be > 0");
  params_.ef_search = ef;
}

const float* HnswIndex::vec(std::uint32_t id) const {
  const std::size_t cap = params_.shard_capacity;
  return shards_[id / cap].data() + (id % cap) * dim_;
}

float HnswIndex::sim(const float* a, const float* b) const {
  float dot = 0.0f;
  for (std::size_t j = 0; j < dim_; ++j) dot += a[j] * b[j];
  return dot;
}

void HnswIndex::add(const tensor::Tensor& vectors) {
  if (vectors.cols() != dim_)
    throw std::invalid_argument("HnswIndex::add: dim mismatch");
  const std::size_t cap = params_.shard_capacity;
  nodes_.reserve(count_ + vectors.rows());
  for (std::size_t r = 0; r < vectors.rows(); ++r) {
    if (count_ == shards_.size() * cap)
      shards_.emplace_back(cap * dim_);  // pooled, address-stable shard
    float* dst = shards_[count_ / cap].data() + (count_ % cap) * dim_;
    const float* src = vectors.data() + r * dim_;
    std::copy(src, src + dim_, dst);
    const auto id = static_cast<std::uint32_t>(count_);
    nodes_.emplace_back();
    ++count_;
    insert(dst, id);
  }
}

std::uint32_t HnswIndex::greedy_step(const float* q, std::uint32_t start,
                                     int level, std::size_t& evals) const {
  std::uint32_t cur = start;
  float best = sim(q, vec(cur));
  ++evals;
  bool improved = true;
  while (improved) {
    improved = false;
    for (const std::uint32_t nb :
         nodes_[cur].links[static_cast<std::size_t>(level)]) {
      const float d = sim(q, vec(nb));
      ++evals;
      if (d > best) {
        best = d;
        cur = nb;
        improved = true;
      }
    }
  }
  return cur;
}

std::vector<SearchHit> HnswIndex::search_layer(const float* q,
                                               std::uint32_t entry,
                                               std::size_t ef, int level,
                                               std::size_t& evals) const {
  // Best-first beam: `cands` pops the most promising frontier node, `beam`
  // keeps the ef best results seen (top = current worst).
  const auto frontier_less = [](const SearchHit& a, const SearchHit& b) {
    return better_hit(b, a);
  };
  const auto beam_less = [](const SearchHit& a, const SearchHit& b) {
    return better_hit(a, b);
  };
  std::priority_queue<SearchHit, std::vector<SearchHit>,
                      decltype(frontier_less)>
      cands(frontier_less);
  std::priority_queue<SearchHit, std::vector<SearchHit>, decltype(beam_less)>
      beam(beam_less);
  std::vector<char> visited(nodes_.size(), 0);

  const SearchHit first{entry, sim(q, vec(entry))};
  ++evals;
  visited[entry] = 1;
  cands.push(first);
  beam.push(first);

  while (!cands.empty()) {
    const SearchHit c = cands.top();
    cands.pop();
    if (beam.size() >= ef && better_hit(beam.top(), c)) break;
    for (const std::uint32_t nb :
         nodes_[c.id].links[static_cast<std::size_t>(level)]) {
      if (visited[nb]) continue;
      visited[nb] = 1;
      const float d = sim(q, vec(nb));
      ++evals;
      const SearchHit hit{nb, d};
      if (beam.size() < ef || better_hit(hit, beam.top())) {
        cands.push(hit);
        beam.push(hit);
        if (beam.size() > ef) beam.pop();
      }
    }
  }

  std::vector<SearchHit> out;
  out.reserve(beam.size());
  while (!beam.empty()) {
    out.push_back(beam.top());
    beam.pop();
  }
  return out;
}

void HnswIndex::insert(const float* v, std::uint32_t id) {
  // Geometric level draw: floor(-ln(U) / ln(M)), U in (0, 1].
  const double u = 1.0 - level_rng_.uniform();
  const int lvl = static_cast<int>(-std::log(u) * level_mult_);
  Node& node = nodes_[id];
  node.level = lvl;
  node.links.resize(static_cast<std::size_t>(lvl) + 1);

  if (max_level_ < 0) {  // first vector seeds the graph
    entry_ = id;
    max_level_ = lvl;
    return;
  }

  std::size_t evals = 0;
  std::uint32_t cur = entry_;
  for (int l = max_level_; l > lvl; --l) cur = greedy_step(v, cur, l, evals);

  for (int l = std::min(lvl, max_level_); l >= 0; --l) {
    auto cands = search_layer(v, cur, params_.ef_construction, l, evals);
    std::sort(cands.begin(), cands.end(), better_hit);
    const std::size_t max_degree =
        l == 0 ? 2 * params_.M : params_.M;

    // Link the new node to its M best candidates, bidirectionally; shrink
    // any neighbor list that overflows back to its best max_degree.
    const std::size_t take = std::min(params_.M, cands.size());
    auto& own = node.links[static_cast<std::size_t>(l)];
    own.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      const std::uint32_t nb = cands[i].id;
      own.push_back(nb);
      auto& back = nodes_[nb].links[static_cast<std::size_t>(l)];
      back.push_back(id);
      if (back.size() > max_degree) {
        const float* nv = vec(nb);
        std::vector<SearchHit> scored;
        scored.reserve(back.size());
        for (const std::uint32_t b : back) scored.push_back({b, sim(nv, vec(b))});
        std::sort(scored.begin(), scored.end(), better_hit);
        back.clear();
        for (std::size_t j = 0; j < max_degree; ++j)
          back.push_back(scored[j].id);
      }
    }
    cur = cands.front().id;
  }

  if (lvl > max_level_) {
    max_level_ = lvl;
    entry_ = id;
  }
}

std::size_t HnswIndex::effective_ef(std::size_t k) const {
  std::size_t ef = compute::Autotuner::shared().hnsw_ef(count_, dim_, k);
  if (ef == 0) ef = params_.ef_search;
  return std::max(ef, k);
}

Expected<SearchResults> HnswIndex::search(gpu::Device* dev,
                                          const tensor::Tensor& queries,
                                          std::size_t k) const {
  return search_with_ef(dev, queries, k, effective_ef(k));
}

Expected<SearchResults> HnswIndex::search_with_ef(gpu::Device* dev,
                                                  const tensor::Tensor& queries,
                                                  std::size_t k,
                                                  std::size_t ef) const {
  if (Status s = validate_search(queries, k); !s.ok()) return s;
  ef = std::max(ef, k);

  SearchResults out;
  out.reserve(queries.rows());
  std::size_t evals = 0;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    const float* qv = queries.data() + q * dim_;
    std::uint32_t cur = entry_;
    for (int l = max_level_; l > 0; --l) cur = greedy_step(qv, cur, l, evals);
    auto hits = search_layer(qv, cur, ef, 0, evals);
    std::sort(hits.begin(), hits.end(), better_hit);
    if (hits.size() > k) hits.resize(k);
    out.push_back(std::move(hits));
  }

  if (dev != nullptr) {
    // The traversal ran on the host; charge the device analytically for the
    // distance evaluations, mirroring the IVF scan accounting.
    const double flops = 2.0 * static_cast<double>(evals * dim_);
    dev->charge("hnsw_search", prof::EventKind::kKernel,
                flops / dev->spec().peak_flops() +
                    dev->spec().launch_overhead_us * 1e-6,
                0, {{"flops", flops}});
  }
  return out;
}

std::size_t tune_hnsw_ef(const HnswIndex& index, gpu::Device* dev,
                         const tensor::Tensor& queries, std::size_t k,
                         const SearchResults& truth, double recall_target) {
  return compute::Autotuner::shared().tune_hnsw(
      index.size(), index.dim(), k, [&](std::size_t ef) {
        const auto start = std::chrono::steady_clock::now();
        const auto got = index.search_with_ef(dev, queries, k, ef);
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        if (!got.has_value()) return std::numeric_limits<double>::infinity();
        if (recall_at_k(truth, *got) < recall_target)
          return std::numeric_limits<double>::infinity();
        return elapsed;
      });
}

}  // namespace sagesim::rag
