// The "small LLM" of the RAG labs: a bigram language model with
// retrieval-conditioned decoding.  Retrieved documents re-weight the next-
// token distribution toward their vocabulary, which is exactly the
// mechanism (context conditions generation) the lab exercises measure.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rag/corpus.hpp"
#include "rag/tokenizer.hpp"
#include "stats/rng.hpp"

namespace sagesim::rag {

struct GeneratorConfig {
  std::size_t max_tokens{20};
  double retrieval_boost{8.0};  ///< multiplicative weight for context words
  double temperature{1.0};
  std::uint64_t seed{23};
};

class BigramGenerator {
 public:
  explicit BigramGenerator(GeneratorConfig config = {});

  /// Learns bigram counts (with add-one smoothing at query time) from
  /// @p corpus.
  void fit(const Corpus& corpus);

  /// Generates a continuation of @p prompt conditioned on @p context_docs
  /// (retrieved documents' text).  Deterministic given the config seed and
  /// call order.  Throws std::logic_error before fit().
  std::string generate(const std::string& prompt,
                       const std::vector<std::string>& context_docs);

  /// Like generate(), but sampling from a fresh stream seeded with @p seed
  /// instead of advancing the shared member stream: the output depends only
  /// on (model, inputs, seed), never on call order, and the call is const
  /// and safe from concurrent threads — the property the serving path needs
  /// for serial == batched == cached bit-identity.
  std::string generate_seeded(const std::string& prompt,
                              const std::vector<std::string>& context_docs,
                              std::uint64_t seed) const;

  /// Perplexity of @p text under the unconditioned bigram model (quality
  /// probe for tests).
  double perplexity(const std::string& text) const;

  bool fitted() const { return fitted_; }
  const Vocabulary& vocabulary() const { return vocab_; }

 private:
  double bigram_prob(std::uint32_t prev, std::uint32_t next) const;
  std::string generate_with(stats::Rng& rng, const std::string& prompt,
                            const std::vector<std::string>& context_docs) const;

  GeneratorConfig config_;
  stats::Rng rng_;
  bool fitted_{false};
  Vocabulary vocab_;
  std::unordered_map<std::uint64_t, std::uint32_t> bigram_counts_;
  std::vector<std::uint32_t> unigram_counts_;
  std::uint64_t total_tokens_{0};
};

}  // namespace sagesim::rag
