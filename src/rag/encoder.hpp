// Text encoders producing fixed-dimension dense vectors for the vector
// index.  TF-IDF weights with the feature-hashing trick keep the vectors
// dense and GPU-batchable (the role the course's sentence-transformer
// embeddings play, with the same cosine-similarity geometry: documents
// sharing vocabulary land close together).
#pragma once

#include <cstdint>

#include "rag/corpus.hpp"
#include "tensor/tensor.hpp"

namespace sagesim::rag {

class TfIdfEncoder {
 public:
  /// @param dim hashed embedding dimension (power of two recommended).
  explicit TfIdfEncoder(std::size_t dim = 256);

  /// Computes document frequencies over @p corpus.  Must be called before
  /// encode().
  void fit(const Corpus& corpus);

  /// Encodes one text to an L2-normalized dim-vector.
  /// Throws std::logic_error when called before fit().
  tensor::Tensor encode(const std::string& text) const;

  /// Encodes all documents of @p corpus as rows of a matrix.
  tensor::Tensor encode_corpus(const Corpus& corpus) const;

  std::size_t dim() const { return dim_; }
  bool fitted() const { return fitted_; }

 private:
  double idf_of(const std::string& word) const;
  static std::uint64_t hash_word(const std::string& word);

  std::size_t dim_;
  bool fitted_{false};
  std::size_t num_docs_{0};
  std::unordered_map<std::string, std::size_t> doc_freq_;
};

}  // namespace sagesim::rag
