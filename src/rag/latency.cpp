#include "rag/latency.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace sagesim::rag {

void LatencyTracker::record(double seconds) {
  if (seconds < 0.0)
    throw std::invalid_argument("LatencyTracker: negative latency");
  samples_.push_back(seconds);
}

double LatencyTracker::mean() const {
  if (samples_.empty())
    throw std::invalid_argument("LatencyTracker: no samples");
  double s = 0.0;
  for (double v : samples_) s += v;
  return s / static_cast<double>(samples_.size());
}

double LatencyTracker::percentile(double p) const {
  if (samples_.empty())
    throw std::invalid_argument("LatencyTracker: no samples");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("LatencyTracker: percentile outside [0,100]");
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double LatencyTracker::max() const { return percentile(100.0); }

bool LatencyTracker::meets_slo(double quantile, double budget_s) const {
  return percentile(quantile) <= budget_s;
}

std::string LatencyTracker::summary() const {
  std::ostringstream os;
  os.precision(3);
  os << "n=" << count() << " mean=" << mean() * 1e3
     << "ms p50=" << p50() * 1e3 << "ms p95=" << p95() * 1e3
     << "ms p99=" << p99() * 1e3 << "ms";
  return os.str();
}

}  // namespace sagesim::rag
