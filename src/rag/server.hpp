// rag::Server — the serving front end over RagPipeline.
//
// Requests enter an admission queue; a dedicated batcher thread flushes it
// into the pipeline whenever `max_batch` queries are waiting or the oldest
// has waited `max_delay_us` (the classic dynamic-batching tradeoff: larger
// batches amortize the GEMM retrieval sweep, the delay cap bounds the
// latency cost of waiting for peers).  Each flushed batch runs as one
// "rag_batch" task on the work-stealing runtime scheduler, so serving
// shares workers with everything else built on it.
//
// Two caches short-circuit the pipeline, both keyed by the stable query id
// (RagPipeline::query_id, FNV-1a of the text):
//  * the result cache answers exact repeats at submit time without ever
//    queueing, and
//  * the embedding cache skips re-encoding known queries inside a batch.
// Generation is seeded per query id, so cached, batched and serial answers
// are bit-identical (text, hit lists, ids) — caching can only change
// latency, never content.
//
// Failures are values end to end: a request that outlives
// ServeOptions::deadline_s in the queue completes its future with
// kDeadlineExceeded (retryable), and pipeline failures propagate their
// Status through Future::result().  Hit/miss/batch counts are mirrored
// into prof's named counters ("rag.serve.*", "rag.cache.*").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rag/cache.hpp"
#include "rag/latency.hpp"
#include "rag/pipeline.hpp"
#include "runtime/scheduler.hpp"

namespace sagesim::rag {

class Server {
 public:
  /// Snapshot of lifetime serving counters.
  struct Stats {
    std::uint64_t submitted{0};
    std::uint64_t completed{0};        ///< answered (cached or computed)
    std::uint64_t failed{0};           ///< any failure, deadline included
    std::uint64_t deadline_misses{0};
    std::uint64_t batches{0};
    std::uint64_t batched_queries{0};  ///< queries that went through batches
    std::uint64_t largest_batch{0};
    std::uint64_t result_hits{0};
    std::uint64_t result_misses{0};
    std::uint64_t embed_hits{0};
    std::uint64_t embed_misses{0};
    std::uint64_t result_evictions{0};
    std::uint64_t embed_evictions{0};
  };

  /// Serves @p pipeline with @p options, running batch tasks on
  /// @p scheduler (the process-shared runtime pool when null).  The
  /// pipeline must outlive the server; the server is the pipeline's only
  /// user while serving (RagPipeline itself is not thread-safe).
  Server(RagPipeline& pipeline, ServeOptions options,
         runtime::Scheduler* scheduler = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admits one query; the future completes with its RagAnswer, a
  /// kDeadlineExceeded failure, or the pipeline's error.  Result-cache hits
  /// complete before submit returns.
  runtime::Future<RagAnswer> submit(const std::string& query);

  /// Synchronous convenience: submit + result().
  Expected<RagAnswer> answer(const std::string& query);

  /// Blocks until every admitted request has completed.
  void drain();

  /// Flushes the queue (no new admissions race it — callers stop first),
  /// completes outstanding requests, and joins the batcher.  Idempotent;
  /// the destructor calls it.
  void stop();

  Stats stats() const;
  /// Admission-to-completion wall latency of completed requests (copy).
  LatencyTracker latency() const;
  const ServeOptions& options() const { return options_; }

 private:
  struct Pending {
    std::string query;
    std::uint64_t id{0};
    runtime::AnyFuture promise;
    std::chrono::steady_clock::time_point admitted;
  };

  void batcher_main();
  void process_batch(std::vector<Pending> batch);

  RagPipeline& pipeline_;
  ServeOptions options_;
  runtime::Scheduler* scheduler_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;          ///< wakes the batcher
  std::condition_variable drained_cv_;  ///< wakes drain()
  std::deque<Pending> queue_;
  bool stop_{false};
  bool busy_{false};  ///< a batch is being processed
  LruCache<std::uint64_t, std::vector<float>> embed_cache_;
  LruCache<std::uint64_t, RagAnswer> result_cache_;
  Stats stats_;
  LatencyTracker latency_;

  std::thread batcher_;  ///< last member: started after state is ready
};

}  // namespace sagesim::rag
