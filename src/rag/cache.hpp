// Bounded LRU map — the building block behind the Server's embedding and
// result caches.  Header-only and deliberately not thread-safe: the Server
// serializes access under its own admission lock, and keeping the lock
// outside lets one critical section cover a lookup plus the stats update.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace sagesim::rag {

/// Fixed-capacity LRU cache.  Capacity 0 disables the cache entirely (every
/// get misses, put is a no-op) so "caching off" needs no special casing at
/// call sites.
template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// The cached value (refreshing its recency), or nullopt on a miss.
  std::optional<V> get(const K& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or refreshes @p key, evicting the least-recently-used entry
  /// when full.
  void put(const K& key, V value) {
    if (capacity_ == 0) return;
    if (const auto it = map_.find(key); it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (order_.size() >= capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
  }

  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool contains(const K& key) const { return map_.contains(key); }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  std::size_t capacity_;
  std::list<std::pair<K, V>> order_;  ///< front = most recently used
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> map_;
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
  std::uint64_t evictions_{0};
};

}  // namespace sagesim::rag
