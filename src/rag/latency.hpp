// Serving-latency accounting for the Week-14 "real-time inference" lab:
// percentile tracking and a simple SLO check over simulated request times.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sagesim::rag {

/// Collects per-request latencies and reports percentiles.
class LatencyTracker {
 public:
  void record(double seconds);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// Percentile in [0, 100] with linear interpolation; throws
  /// std::invalid_argument when empty or p outside range.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }
  double max() const;

  /// True when the @p quantile-percentile latency meets @p budget_s.
  bool meets_slo(double quantile, double budget_s) const;

  /// "n=64 mean=1.2ms p50=1.1ms p95=2.0ms p99=2.4ms"
  std::string summary() const;

 private:
  std::vector<double> samples_;
};

}  // namespace sagesim::rag
