// End-to-end RAG pipeline: encode -> retrieve -> generate, with the
// per-stage latency breakdown the Week-14 "real-time inference" lab
// optimizes.  Latencies are simulated seconds from the device timeline
// (retrieval kernels) plus analytic generator cost.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rag/corpus.hpp"
#include "rag/encoder.hpp"
#include "rag/generator.hpp"
#include "rag/index.hpp"

namespace sagesim::rag {

struct RagAnswer {
  std::string text;
  std::vector<SearchHit> retrieved;
  double encode_s{0.0};    ///< simulated query-encoding time
  double retrieve_s{0.0};  ///< simulated retrieval time
  double generate_s{0.0};  ///< simulated generation time
  double total_s() const { return encode_s + retrieve_s + generate_s; }
};

struct RagConfig {
  std::size_t top_k{4};
  std::size_t embed_dim{256};
  GeneratorConfig generator;
};

class RagPipeline {
 public:
  /// Builds the pipeline over @p corpus with the given index.  The index
  /// must already be trained if it requires training; the pipeline fits the
  /// encoder and generator and fills the index.  @p dev may be null for the
  /// CPU baseline.
  RagPipeline(const Corpus& corpus, std::unique_ptr<VectorIndex> index,
              gpu::Device* dev, const RagConfig& config = {});

  /// Answers one query.
  RagAnswer answer(const std::string& query);

  /// Answers a batch; retrieval is batched into one kernel sweep, which is
  /// where the GPU throughput win comes from.
  std::vector<RagAnswer> answer_batch(const std::vector<std::string>& queries);

  const VectorIndex& index() const { return *index_; }
  const TfIdfEncoder& encoder() const { return encoder_; }
  gpu::Device* device() { return dev_; }

 private:
  double generator_cost_s(std::size_t tokens) const;

  const Corpus& corpus_;
  std::unique_ptr<VectorIndex> index_;
  gpu::Device* dev_;
  RagConfig config_;
  TfIdfEncoder encoder_;
  BigramGenerator generator_;
};

}  // namespace sagesim::rag
