// End-to-end RAG pipeline: encode -> retrieve -> generate, with the
// per-stage latency breakdown the Week-14 "real-time inference" lab
// optimizes.  Latencies are simulated seconds from the device timeline
// (retrieval kernels) plus analytic generator cost.
//
// The answer surface is Status-first (Expected<...>; kInvalidArgument on
// misuse) and deterministic: every answer carries a stable query id (FNV-1a
// of the query text) that also seeds generation, so the serial, batched and
// cached serving paths produce bit-identical text and hit lists for the
// same query.  ServeOptions carries the rag::Server knobs (batching, cache
// sizes, per-request deadline) so one RagConfig describes both the offline
// lab pipeline and the serving front end.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rag/corpus.hpp"
#include "rag/encoder.hpp"
#include "rag/generator.hpp"
#include "rag/index.hpp"
#include "runtime/status.hpp"

namespace sagesim::rag {

/// Serving knobs consumed by rag::Server (and recorded in RagConfig so the
/// bench and labs configure one struct).  Defaults favor low latency at
/// modest load; from_env() reads the SAGESIM_RAG_* overrides documented in
/// the README.
struct ServeOptions {
  std::size_t max_batch{16};     ///< flush the batcher at this many queries
  std::size_t max_delay_us{200};  ///< ... or when the oldest waits this long
  std::size_t embed_cache_entries{1024};   ///< LRU query-embedding cache (0 = off)
  std::size_t result_cache_entries{4096};  ///< exact-match answer cache (0 = off)
  double deadline_s{0.0};  ///< per-request wall deadline, 0 = none
                           ///< (missed -> kDeadlineExceeded, retryable)

  /// Overrides from SAGESIM_RAG_MAX_BATCH, SAGESIM_RAG_MAX_DELAY_US,
  /// SAGESIM_RAG_EMBED_CACHE, SAGESIM_RAG_RESULT_CACHE,
  /// SAGESIM_RAG_DEADLINE_S; unset variables keep the defaults.
  static ServeOptions from_env();
};

struct RagAnswer {
  std::uint64_t id{0};  ///< stable query id — cache key and generation seed
  std::string text;
  std::vector<SearchHit> retrieved;
  double encode_s{0.0};    ///< simulated query-encoding time
  double retrieve_s{0.0};  ///< simulated retrieval time
  double generate_s{0.0};  ///< simulated generation time
  double total_s() const { return encode_s + retrieve_s + generate_s; }
};

struct RagConfig {
  std::size_t top_k{4};
  std::size_t embed_dim{256};
  GeneratorConfig generator;
  ServeOptions serve;
};

class RagPipeline {
 public:
  /// Builds the pipeline over @p corpus with the given index.  The index
  /// must already be trained if it requires training; the pipeline fits the
  /// encoder and generator and fills the index.  @p dev may be null for the
  /// CPU baseline.  Throws std::invalid_argument on construction misuse
  /// (null index, dim mismatch, empty corpus, top_k outside [1, corpus]).
  RagPipeline(const Corpus& corpus, std::unique_ptr<VectorIndex> index,
              gpu::Device* dev, const RagConfig& config = {});

  /// Answers one query.
  Expected<RagAnswer> answer(const std::string& query);

  /// Answers a batch; retrieval is batched into one kernel sweep, which is
  /// where the GPU throughput win comes from.  Fails with kInvalidArgument
  /// on an empty batch.
  Expected<std::vector<RagAnswer>> answer_batch(
      const std::vector<std::string>& queries);

  /// The serving fast path: retrieval + generation over queries that are
  /// already encoded (row i of @p encoded is @p queries[i] — the Server's
  /// embedding cache supplies rows without re-encoding).  encode_s is left 0
  /// for the caller to fill in.  Fails with kInvalidArgument on shape
  /// mismatch.
  Expected<std::vector<RagAnswer>> answer_encoded(
      const tensor::Tensor& encoded, const std::vector<std::string>& queries);

  /// Encodes one query into a 1 x embed_dim row (the embedding the Server
  /// caches).  Pure w.r.t. pipeline state.
  tensor::Tensor encode_query(const std::string& query) const;

  /// Stable 64-bit id of a query text (FNV-1a) — identical across serial,
  /// batched and cached paths; doubles as the result-cache key and the
  /// per-query generation seed.
  static std::uint64_t query_id(const std::string& query);

  const VectorIndex& index() const { return *index_; }
  const TfIdfEncoder& encoder() const { return encoder_; }
  const RagConfig& config() const { return config_; }
  gpu::Device* device() { return dev_; }

 private:
  double generator_cost_s(std::size_t tokens) const;

  const Corpus& corpus_;
  std::unique_ptr<VectorIndex> index_;
  gpu::Device* dev_;
  RagConfig config_;
  TfIdfEncoder encoder_;
  BigramGenerator generator_;
};

}  // namespace sagesim::rag
