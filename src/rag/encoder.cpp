#include "rag/encoder.hpp"

#include <cmath>
#include <set>
#include <stdexcept>

namespace sagesim::rag {

TfIdfEncoder::TfIdfEncoder(std::size_t dim) : dim_(dim) {
  if (dim == 0) throw std::invalid_argument("TfIdfEncoder: dim must be > 0");
}

void TfIdfEncoder::fit(const Corpus& corpus) {
  if (corpus.size() == 0)
    throw std::invalid_argument("TfIdfEncoder::fit: empty corpus");
  doc_freq_.clear();
  num_docs_ = corpus.size();
  for (const auto& doc : corpus.docs()) {
    std::set<std::string> seen;
    for (auto& tok : tokenize(doc.text)) seen.insert(std::move(tok));
    for (const auto& tok : seen) ++doc_freq_[tok];
  }
  fitted_ = true;
}

double TfIdfEncoder::idf_of(const std::string& word) const {
  const auto it = doc_freq_.find(word);
  const double df = it == doc_freq_.end() ? 0.0 : static_cast<double>(it->second);
  // Smoothed idf, sklearn-style.
  return std::log((1.0 + static_cast<double>(num_docs_)) / (1.0 + df)) + 1.0;
}

std::uint64_t TfIdfEncoder::hash_word(const std::string& word) {
  // FNV-1a 64-bit.
  std::uint64_t h = 14695981039346656037ull;
  for (char c : word) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

tensor::Tensor TfIdfEncoder::encode(const std::string& text) const {
  if (!fitted_)
    throw std::logic_error("TfIdfEncoder::encode before fit()");
  tensor::Tensor v(1, dim_);

  std::unordered_map<std::string, std::size_t> tf;
  for (auto& tok : tokenize(text)) ++tf[tok];

  for (const auto& [word, count] : tf) {
    const std::uint64_t h = hash_word(word);
    const std::size_t slot = h % dim_;
    // Sign bit from an independent hash bit decorrelates collisions.
    const float sign = (h >> 63) != 0 ? -1.0f : 1.0f;
    v[slot] += sign * static_cast<float>(
                          static_cast<double>(count) * idf_of(word));
  }
  const float n = v.norm();
  if (n > 0.0f)
    for (std::size_t i = 0; i < v.size(); ++i) v[i] /= n;
  return v;
}

tensor::Tensor TfIdfEncoder::encode_corpus(const Corpus& corpus) const {
  if (corpus.size() == 0)
    throw std::invalid_argument("encode_corpus: empty corpus");
  tensor::Tensor m(corpus.size(), dim_);
  for (std::size_t d = 0; d < corpus.size(); ++d) {
    const tensor::Tensor row =
        encode(corpus.doc(static_cast<std::uint32_t>(d)).text);
    std::copy(row.data(), row.data() + dim_, m.data() + d * dim_);
  }
  return m;
}

}  // namespace sagesim::rag
