#include "rag/pipeline.hpp"

#include <stdexcept>

namespace sagesim::rag {

RagPipeline::RagPipeline(const Corpus& corpus,
                         std::unique_ptr<VectorIndex> index, gpu::Device* dev,
                         const RagConfig& config)
    : corpus_(corpus),
      index_(std::move(index)),
      dev_(dev),
      config_(config),
      encoder_(config.embed_dim),
      generator_(config.generator) {
  if (!index_) throw std::invalid_argument("RagPipeline: null index");
  if (index_->dim() != config.embed_dim)
    throw std::invalid_argument("RagPipeline: index dim != embed dim");
  if (corpus.size() == 0)
    throw std::invalid_argument("RagPipeline: empty corpus");

  encoder_.fit(corpus);
  generator_.fit(corpus);
  index_->add(encoder_.encode_corpus(corpus));
}

double RagPipeline::generator_cost_s(std::size_t tokens) const {
  // Each generated token scores the full vocabulary: ~2 flops per vocab
  // entry per token on the generation device (or a 10x slower host path).
  const double flops = 2.0 * static_cast<double>(tokens) *
                       static_cast<double>(generator_.vocabulary().size());
  if (dev_ != nullptr)
    return flops / dev_->spec().peak_flops() +
           static_cast<double>(tokens) * dev_->spec().launch_overhead_us * 1e-6;
  return flops / 5e9;  // host scalar rate
}

std::vector<RagAnswer> RagPipeline::answer_batch(
    const std::vector<std::string>& queries) {
  if (queries.empty())
    throw std::invalid_argument("answer_batch: no queries");

  // Encode all queries (host-side feature hashing; charged analytically to
  // the device as an embedding kernel when one is present).
  tensor::Tensor q(queries.size(), config_.embed_dim);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const tensor::Tensor row = encoder_.encode(queries[i]);
    std::copy(row.data(), row.data() + row.size(),
              q.data() + i * config_.embed_dim);
  }
  double encode_s;
  if (dev_ != nullptr) {
    const double flops =
        20.0 * static_cast<double>(queries.size() * config_.embed_dim);
    encode_s = flops / dev_->spec().peak_flops() +
               dev_->spec().launch_overhead_us * 1e-6;
    dev_->charge("rag_encode", prof::EventKind::kKernel, encode_s, 0,
                 {{"flops", flops}});
  } else {
    encode_s = 20.0 * static_cast<double>(queries.size() * config_.embed_dim) /
               5e9;
  }
  encode_s /= static_cast<double>(queries.size());

  // Batched retrieval: one sweep over the index.
  const double t0 = dev_ != nullptr ? dev_->stream_time(0) : 0.0;
  const auto hits = index_->search(dev_, q, config_.top_k);
  const double retrieve_total =
      dev_ != nullptr
          ? dev_->stream_time(0) - t0
          : 2.0 * static_cast<double>(queries.size()) *
                static_cast<double>(index_->size()) *
                static_cast<double>(config_.embed_dim) / 5e9;
  const double retrieve_s = retrieve_total / static_cast<double>(queries.size());

  std::vector<RagAnswer> answers;
  answers.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    RagAnswer a;
    a.retrieved = hits[i];
    std::vector<std::string> context;
    context.reserve(a.retrieved.size());
    for (const auto& h : a.retrieved) context.push_back(corpus_.doc(h.id).text);
    a.text = generator_.generate(queries[i], context);
    a.encode_s = encode_s;
    a.retrieve_s = retrieve_s;
    a.generate_s = generator_cost_s(config_.generator.max_tokens);
    answers.push_back(std::move(a));
  }
  return answers;
}

RagAnswer RagPipeline::answer(const std::string& query) {
  return answer_batch({query}).front();
}

}  // namespace sagesim::rag
