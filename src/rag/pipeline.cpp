#include "rag/pipeline.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace sagesim::rag {

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

}  // namespace

ServeOptions ServeOptions::from_env() {
  ServeOptions o;
  o.max_batch = env_size("SAGESIM_RAG_MAX_BATCH", o.max_batch);
  o.max_delay_us = env_size("SAGESIM_RAG_MAX_DELAY_US", o.max_delay_us);
  o.embed_cache_entries =
      env_size("SAGESIM_RAG_EMBED_CACHE", o.embed_cache_entries);
  o.result_cache_entries =
      env_size("SAGESIM_RAG_RESULT_CACHE", o.result_cache_entries);
  o.deadline_s = env_double("SAGESIM_RAG_DEADLINE_S", o.deadline_s);
  return o;
}

RagPipeline::RagPipeline(const Corpus& corpus,
                         std::unique_ptr<VectorIndex> index, gpu::Device* dev,
                         const RagConfig& config)
    : corpus_(corpus),
      index_(std::move(index)),
      dev_(dev),
      config_(config),
      encoder_(config.embed_dim),
      generator_(config.generator) {
  if (!index_) throw std::invalid_argument("RagPipeline: null index");
  if (index_->dim() != config.embed_dim)
    throw std::invalid_argument("RagPipeline: index dim != embed dim");
  if (corpus.size() == 0)
    throw std::invalid_argument("RagPipeline: empty corpus");
  if (config.top_k == 0 || config.top_k > corpus.size())
    throw std::invalid_argument("RagPipeline: need 0 < top_k <= corpus size");

  encoder_.fit(corpus);
  generator_.fit(corpus);
  index_->add(encoder_.encode_corpus(corpus));
}

std::uint64_t RagPipeline::query_id(const std::string& query) {
  // FNV-1a, 64-bit: stable across processes, runs and serving paths.
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : query) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

tensor::Tensor RagPipeline::encode_query(const std::string& query) const {
  return encoder_.encode(query);
}

double RagPipeline::generator_cost_s(std::size_t tokens) const {
  // Each generated token scores the full vocabulary: ~2 flops per vocab
  // entry per token on the generation device (or a 10x slower host path).
  const double flops = 2.0 * static_cast<double>(tokens) *
                       static_cast<double>(generator_.vocabulary().size());
  if (dev_ != nullptr)
    return flops / dev_->spec().peak_flops() +
           static_cast<double>(tokens) * dev_->spec().launch_overhead_us * 1e-6;
  return flops / 5e9;  // host scalar rate
}

Expected<std::vector<RagAnswer>> RagPipeline::answer_encoded(
    const tensor::Tensor& encoded, const std::vector<std::string>& queries) {
  if (queries.empty())
    return Status::invalid_argument("answer_encoded: no queries");
  if (encoded.rows() != queries.size() || encoded.cols() != config_.embed_dim)
    return Status::invalid_argument(
        "answer_encoded: encoded shape " + encoded.shape_str() + " != " +
        std::to_string(queries.size()) + "x" +
        std::to_string(config_.embed_dim));

  // Batched retrieval: one sweep over the index.
  const double t0 = dev_ != nullptr ? dev_->stream_time(0) : 0.0;
  auto hits = index_->search(dev_, encoded, config_.top_k);
  if (!hits.has_value()) return hits.status();
  const double retrieve_total =
      dev_ != nullptr
          ? dev_->stream_time(0) - t0
          : 2.0 * static_cast<double>(queries.size()) *
                static_cast<double>(index_->size()) *
                static_cast<double>(config_.embed_dim) / 5e9;
  const double retrieve_s =
      retrieve_total / static_cast<double>(queries.size());

  std::vector<RagAnswer> answers;
  answers.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    RagAnswer a;
    a.id = query_id(queries[i]);
    a.retrieved = (*hits)[i];
    std::vector<std::string> context;
    context.reserve(a.retrieved.size());
    for (const auto& h : a.retrieved) context.push_back(corpus_.doc(h.id).text);
    // Seed from (config seed, query id): the text depends only on the model
    // and the query, never on batch composition or call order.
    a.text = generator_.generate_seeded(queries[i], context,
                                        config_.generator.seed ^ a.id);
    a.retrieve_s = retrieve_s;
    a.generate_s = generator_cost_s(config_.generator.max_tokens);
    answers.push_back(std::move(a));
  }
  return answers;
}

Expected<std::vector<RagAnswer>> RagPipeline::answer_batch(
    const std::vector<std::string>& queries) {
  if (queries.empty())
    return Status::invalid_argument("answer_batch: no queries");

  // Encode all queries (host-side feature hashing; charged analytically to
  // the device as an embedding kernel when one is present).
  tensor::Tensor q(queries.size(), config_.embed_dim);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const tensor::Tensor row = encoder_.encode(queries[i]);
    std::copy(row.data(), row.data() + row.size(),
              q.data() + i * config_.embed_dim);
  }
  double encode_s;
  if (dev_ != nullptr) {
    const double flops =
        20.0 * static_cast<double>(queries.size() * config_.embed_dim);
    encode_s = flops / dev_->spec().peak_flops() +
               dev_->spec().launch_overhead_us * 1e-6;
    dev_->charge("rag_encode", prof::EventKind::kKernel, encode_s, 0,
                 {{"flops", flops}});
  } else {
    encode_s = 20.0 * static_cast<double>(queries.size() * config_.embed_dim) /
               5e9;
  }
  encode_s /= static_cast<double>(queries.size());

  auto answers = answer_encoded(q, queries);
  if (!answers.has_value()) return answers.status();
  for (auto& a : *answers) a.encode_s = encode_s;
  return answers;
}

Expected<RagAnswer> RagPipeline::answer(const std::string& query) {
  auto batch = answer_batch({query});
  if (!batch.has_value()) return batch.status();
  return std::move(batch->front());
}

}  // namespace sagesim::rag
