// HNSW (hierarchical navigable small-world) approximate index: the graph
// ANN structure production vector stores (FAISS/hnswlib) default to, added
// alongside the brute-force/IVF pair so the serving bench can trade recall
// for latency at scale.
//
// Vectors live in fixed-capacity Buffer-backed shards (pooled allocations,
// stable addresses — inserts never reallocate earlier rows).  The graph is
// the standard multi-layer skip-list-of-graphs: each node draws a level
// from a geometric distribution (deterministic per the params seed);
// queries greedily descend the upper layers and run a best-first beam of
// width ef_search over layer 0.  Similarity is inner product over the
// L2-normalized embeddings, matching the exact indexes.
//
// ef_search resolves through compute::Autotuner ("hnsw" entries keyed by
// (count, dim, k)) when tuned — tune_hnsw_ef() searches the candidate grid
// for the cheapest beam meeting a recall target — and falls back to
// HnswParams::ef_search otherwise.
#pragma once

#include <cstdint>
#include <vector>

#include "rag/index.hpp"

namespace sagesim::rag {

struct HnswParams {
  std::size_t M{16};                ///< out-degree above layer 0 (2M at 0)
  std::size_t ef_construction{200};  ///< insert-time beam width
  std::size_t ef_search{64};  ///< query-time beam fallback when untuned
  std::uint64_t seed{42};     ///< level-assignment stream
  std::size_t shard_capacity{4096};  ///< vectors per storage shard
};

class HnswIndex final : public VectorIndex {
 public:
  HnswIndex(std::size_t dim, HnswParams params = {});

  /// Inserts rows one at a time (graph construction is per-vector).
  void add(const tensor::Tensor& vectors) override;

  Expected<SearchResults> search(gpu::Device* dev,
                                 const tensor::Tensor& queries,
                                 std::size_t k) const override;

  std::size_t size() const override { return count_; }
  std::size_t dim() const override { return dim_; }

  const HnswParams& params() const { return params_; }
  void set_ef_search(std::size_t ef);
  int max_level() const { return max_level_; }

  /// The beam width a search with this @p k would run: the autotuned value
  /// for (size, dim, k) when present, else params().ef_search — always at
  /// least k.
  std::size_t effective_ef(std::size_t k) const;

  /// search() with an explicit beam width, bypassing the autotuner — the
  /// probe path tune_hnsw_ef() times.  @p ef is raised to k internally.
  Expected<SearchResults> search_with_ef(gpu::Device* dev,
                                         const tensor::Tensor& queries,
                                         std::size_t k, std::size_t ef) const;

 private:
  struct Node {
    int level{0};
    /// links[l] = neighbor ids at layer l, l in [0, level].
    std::vector<std::vector<std::uint32_t>> links;
  };

  const float* vec(std::uint32_t id) const;
  float sim(const float* a, const float* b) const;
  /// Greedy hill-climb at @p level from @p start; counts distance evals.
  std::uint32_t greedy_step(const float* q, std::uint32_t start, int level,
                            std::size_t& evals) const;
  /// Best-first beam of width @p ef at @p level; returns (id, sim) pairs,
  /// unordered.
  std::vector<SearchHit> search_layer(const float* q, std::uint32_t entry,
                                      std::size_t ef, int level,
                                      std::size_t& evals) const;
  void insert(const float* v, std::uint32_t id);

  std::size_t dim_;
  HnswParams params_;
  double level_mult_;  ///< 1 / ln(M)
  stats::Rng level_rng_;
  std::size_t count_{0};
  std::vector<mem::TypedBuffer<float>> shards_;
  std::vector<Node> nodes_;
  std::uint32_t entry_{0};
  int max_level_{-1};  ///< -1 while empty
};

/// Autotunes ef_search for @p index's (size, dim, k) shape: times every
/// Autotuner::hnsw_ef_candidates() beam over @p queries and records the
/// fastest whose recall@k against the exact @p truth meets
/// @p recall_target (candidates below target cost +inf, so the cheapest
/// acceptable beam wins).  Returns the recorded ef, or 0 when no candidate
/// met the target (nothing recorded; the index keeps its fallback).
std::size_t tune_hnsw_ef(const HnswIndex& index, gpu::Device* dev,
                         const tensor::Tensor& queries, std::size_t k,
                         const SearchResults& truth, double recall_target);

}  // namespace sagesim::rag
