#include "rag/corpus.hpp"

#include <stdexcept>

namespace sagesim::rag {

std::uint32_t Corpus::add(std::string text, int topic) {
  Document d;
  d.id = static_cast<std::uint32_t>(docs_.size());
  d.text = std::move(text);
  d.topic = topic;
  docs_.push_back(std::move(d));
  return docs_.back().id;
}

const Document& Corpus::doc(std::uint32_t id) const {
  if (id >= docs_.size())
    throw std::out_of_range("Corpus::doc: unknown id " + std::to_string(id));
  return docs_[id];
}

namespace {

/// Deterministic pseudo-word for lexicon slot @p i ("wd0", "wd1", ...); the
/// generator needs distinct strings, not realistic morphology.
std::string word_for(std::size_t i) { return "wd" + std::to_string(i); }

std::string topic_word(const SyntheticCorpusParams& p, int topic,
                       std::size_t j) {
  return word_for(static_cast<std::size_t>(topic) * p.words_per_topic + j);
}

std::string background_word(const SyntheticCorpusParams& p, std::size_t j) {
  return word_for(static_cast<std::size_t>(p.num_topics) * p.words_per_topic +
                  j);
}

}  // namespace

SyntheticCorpus synthetic_corpus(const SyntheticCorpusParams& params,
                                 stats::Rng& rng) {
  if (params.num_topics <= 0)
    throw std::invalid_argument("synthetic_corpus: num_topics <= 0");
  if (params.words_per_topic == 0 || params.doc_length == 0)
    throw std::invalid_argument("synthetic_corpus: degenerate sizes");

  SyntheticCorpus out;
  const std::size_t lexicon =
      static_cast<std::size_t>(params.num_topics) * params.words_per_topic +
      params.background_words;
  out.all_words.reserve(lexicon);
  for (std::size_t i = 0; i < lexicon; ++i)
    out.all_words.push_back(word_for(i));

  for (std::size_t d = 0; d < params.num_docs; ++d) {
    const int topic = static_cast<int>(
        rng.uniform_int(0, static_cast<std::int64_t>(params.num_topics) - 1));
    std::string text;
    for (std::size_t w = 0; w < params.doc_length; ++w) {
      if (!text.empty()) text += ' ';
      if (rng.bernoulli(params.topic_word_fraction)) {
        const auto j = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(params.words_per_topic) - 1));
        text += topic_word(params, topic, j);
      } else if (params.background_words > 0) {
        const auto j = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(params.background_words) - 1));
        text += background_word(params, j);
      } else {
        text += topic_word(params, topic, 0);
      }
    }
    out.corpus.add(std::move(text), topic);
  }
  return out;
}

std::string synthetic_query(const SyntheticCorpusParams& params, int topic,
                            stats::Rng& rng) {
  if (topic < 0 || topic >= params.num_topics)
    throw std::invalid_argument("synthetic_query: topic out of range");
  std::string text;
  for (int w = 0; w < 5; ++w) {
    if (!text.empty()) text += ' ';
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(params.words_per_topic) - 1));
    text += topic_word(params, topic, j);
  }
  return text;
}

}  // namespace sagesim::rag
