#include "rag/generator.hpp"

#include <cmath>
#include <set>
#include <stdexcept>

namespace sagesim::rag {

namespace {
std::uint64_t key_of(std::uint32_t prev, std::uint32_t next) {
  return (static_cast<std::uint64_t>(prev) << 32) | next;
}
}  // namespace

BigramGenerator::BigramGenerator(GeneratorConfig config)
    : config_(config), rng_(config.seed) {
  if (config.temperature <= 0.0)
    throw std::invalid_argument("BigramGenerator: temperature must be > 0");
}

void BigramGenerator::fit(const Corpus& corpus) {
  if (corpus.size() == 0)
    throw std::invalid_argument("BigramGenerator::fit: empty corpus");
  for (const auto& doc : corpus.docs()) {
    const auto tokens = tokenize(doc.text);
    std::uint32_t prev = Vocabulary::kUnk;
    for (const auto& tok : tokens) {
      const std::uint32_t id = vocab_.add(tok);
      if (unigram_counts_.size() <= id) unigram_counts_.resize(id + 1, 0);
      ++unigram_counts_[id];
      ++total_tokens_;
      if (prev != Vocabulary::kUnk) ++bigram_counts_[key_of(prev, id)];
      prev = id;
    }
  }
  fitted_ = true;
}

double BigramGenerator::bigram_prob(std::uint32_t prev,
                                    std::uint32_t next) const {
  const double v = static_cast<double>(vocab_.size());
  const double prev_count =
      prev < unigram_counts_.size()
          ? static_cast<double>(unigram_counts_[prev])
          : 0.0;
  double big = 0.0;
  if (auto it = bigram_counts_.find(key_of(prev, next));
      it != bigram_counts_.end())
    big = static_cast<double>(it->second);
  return (big + 1.0) / (prev_count + v);  // add-one smoothing
}

std::string BigramGenerator::generate(
    const std::string& prompt, const std::vector<std::string>& context_docs) {
  return generate_with(rng_, prompt, context_docs);
}

std::string BigramGenerator::generate_seeded(
    const std::string& prompt, const std::vector<std::string>& context_docs,
    std::uint64_t seed) const {
  stats::Rng rng(seed);
  return generate_with(rng, prompt, context_docs);
}

std::string BigramGenerator::generate_with(
    stats::Rng& rng, const std::string& prompt,
    const std::vector<std::string>& context_docs) const {
  if (!fitted_) throw std::logic_error("BigramGenerator::generate before fit");

  // Context vocabulary for retrieval conditioning.
  std::set<std::uint32_t> context_words;
  for (const auto& doc : context_docs)
    for (const auto& tok : tokenize(doc))
      context_words.insert(vocab_.id_of(tok));
  context_words.erase(Vocabulary::kUnk);

  const auto prompt_tokens = tokenize(prompt);
  std::uint32_t prev = Vocabulary::kUnk;
  for (auto it = prompt_tokens.rbegin(); it != prompt_tokens.rend(); ++it) {
    const std::uint32_t id = vocab_.id_of(*it);
    if (id != Vocabulary::kUnk) {
      prev = id;
      break;
    }
  }
  if (prev == Vocabulary::kUnk && !context_words.empty())
    prev = *context_words.begin();
  if (prev == Vocabulary::kUnk) prev = 1 % static_cast<std::uint32_t>(vocab_.size());

  std::string out;
  std::vector<double> weights(vocab_.size());
  for (std::size_t t = 0; t < config_.max_tokens; ++t) {
    for (std::uint32_t w = 1; w < vocab_.size(); ++w) {
      double p = bigram_prob(prev, w);
      if (context_words.contains(w)) p *= config_.retrieval_boost;
      weights[w] = std::pow(p, 1.0 / config_.temperature);
    }
    weights[Vocabulary::kUnk] = 0.0;
    const auto next =
        static_cast<std::uint32_t>(rng.categorical(weights));
    if (!out.empty()) out += ' ';
    out += vocab_.word_of(next);
    prev = next;
  }
  return out;
}

double BigramGenerator::perplexity(const std::string& text) const {
  if (!fitted_) throw std::logic_error("BigramGenerator::perplexity before fit");
  const auto tokens = tokenize(text);
  if (tokens.size() < 2)
    throw std::invalid_argument("perplexity: need at least 2 tokens");
  double log_sum = 0.0;
  std::size_t count = 0;
  std::uint32_t prev = vocab_.id_of(tokens.front());
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::uint32_t next = vocab_.id_of(tokens[i]);
    log_sum += std::log(bigram_prob(prev, next));
    ++count;
    prev = next;
  }
  return std::exp(-log_sum / static_cast<double>(count));
}

}  // namespace sagesim::rag
