// Word tokenizer and vocabulary for the RAG stack.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace sagesim::rag {

/// Lowercases and splits on non-alphanumeric characters; drops empty tokens.
std::vector<std::string> tokenize(const std::string& text);

/// Bidirectional word <-> id map.  Id 0 is reserved for <unk>.
class Vocabulary {
 public:
  Vocabulary();

  /// Returns the id for @p word, inserting it if new.
  std::uint32_t add(const std::string& word);

  /// Id for @p word, or 0 (<unk>) when absent.
  std::uint32_t id_of(const std::string& word) const;

  /// Word for @p id; throws std::out_of_range for unknown ids.
  const std::string& word_of(std::uint32_t id) const;

  std::size_t size() const { return words_.size(); }

  static constexpr std::uint32_t kUnk = 0;

 private:
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<std::string> words_;
};

}  // namespace sagesim::rag
