#include "rag/index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace sagesim::rag {

namespace {

/// Comparator shared by every index: score descending, ties toward the
/// smaller id — total order, so hit lists are reproducible across paths.
bool better_hit(const SearchHit& a, const SearchHit& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

std::vector<SearchHit> top_k_from_scores(const float* scores,
                                         const std::uint32_t* ids,
                                         std::size_t n, std::size_t k) {
  std::vector<SearchHit> hits(n);
  for (std::size_t i = 0; i < n; ++i)
    hits[i] = {ids == nullptr ? static_cast<std::uint32_t>(i) : ids[i],
               scores[i]};
  // Approximate indexes may gather fewer than k candidates; the hit list is
  // simply shorter then (k itself was validated against the index size).
  const std::size_t kk = std::min(k, n);
  std::partial_sort(hits.begin(),
                    hits.begin() + static_cast<std::ptrdiff_t>(kk), hits.end(),
                    better_hit);
  hits.resize(kk);
  return hits;
}

}  // namespace

Status VectorIndex::validate_search(const tensor::Tensor& queries,
                                    std::size_t k) const {
  if (queries.cols() != dim())
    return Status::invalid_argument(
        "search: query dim " + std::to_string(queries.cols()) +
        " != index dim " + std::to_string(dim()));
  if (k == 0) return Status::invalid_argument("search: k must be > 0");
  if (size() == 0)
    return Status::failed_precondition("search: empty index");
  if (k > size())
    return Status::invalid_argument("search: k " + std::to_string(k) +
                                    " > index size " + std::to_string(size()));
  return {};
}

BruteForceIndex::BruteForceIndex(std::size_t dim) : dim_(dim) {
  if (dim == 0) throw std::invalid_argument("BruteForceIndex: dim == 0");
}

void BruteForceIndex::add(const tensor::Tensor& vectors) {
  if (vectors.cols() != dim_)
    throw std::invalid_argument("BruteForceIndex::add: dim mismatch");
  // Grow by rebuilding the matrix on the host (adds are batched at corpus
  // build time, so this is a handful of pooled allocations, not per-row).
  const tensor::Tensor old = data_.placement() == mem::Placement::kHost
                                 ? std::move(data_)
                                 : data_.host_copy();
  tensor::Tensor grown(old.rows() + vectors.rows(), dim_);
  std::copy(old.data(), old.data() + old.size(), grown.data());
  std::copy(vectors.data(), vectors.data() + vectors.size(),
            grown.data() + old.size());
  data_ = std::move(grown);
}

Status BruteForceIndex::to_device(gpu::Device& device, int stream) {
  return data_.to_device(device, stream);
}

Status BruteForceIndex::to_host(int stream) { return data_.to_host(stream); }

Expected<SearchResults> BruteForceIndex::search(gpu::Device* dev,
                                                const tensor::Tensor& queries,
                                                std::size_t k) const {
  if (Status s = validate_search(queries, k); !s.ok()) return s;

  // scores[q][d] = <query_q, doc_d>; one fused kernel sweep via gemm with
  // the stored collection as the count x dim right operand (no copy).
  const std::size_t count = data_.rows();
  tensor::Tensor scores(queries.rows(), count);
  tensor::ops::gemm(dev, queries, data_, scores, /*ta=*/false,
                    /*tb=*/true);

  SearchResults out;
  out.reserve(queries.rows());
  for (std::size_t q = 0; q < queries.rows(); ++q)
    out.push_back(
        top_k_from_scores(scores.data() + q * count, nullptr, count, k));
  return out;
}

IvfFlatIndex::IvfFlatIndex(std::size_t dim, std::size_t nlist,
                           std::size_t nprobe, std::uint64_t seed)
    : dim_(dim), nlist_(nlist), nprobe_(nprobe), seed_(seed) {
  if (dim == 0) throw std::invalid_argument("IvfFlatIndex: dim == 0");
  if (nlist == 0) throw std::invalid_argument("IvfFlatIndex: nlist == 0");
  if (nprobe == 0 || nprobe > nlist)
    throw std::invalid_argument("IvfFlatIndex: need 0 < nprobe <= nlist");
  list_ids_.resize(nlist);
  list_vecs_.resize(nlist);
}

void IvfFlatIndex::set_nprobe(std::size_t nprobe) {
  if (nprobe == 0 || nprobe > nlist_)
    throw std::invalid_argument("set_nprobe: need 0 < nprobe <= nlist");
  nprobe_ = nprobe;
}

void IvfFlatIndex::train(gpu::Device* dev, const tensor::Tensor& sample,
                         int iters) {
  if (sample.cols() != dim_)
    throw std::invalid_argument("IvfFlatIndex::train: dim mismatch");
  if (sample.rows() < nlist_)
    throw std::invalid_argument(
        "IvfFlatIndex::train: need at least nlist sample rows");

  // Init: distinct random rows.
  stats::Rng rng(seed_);
  const auto perm = rng.permutation(sample.rows());
  centroids_ = mem::TypedBuffer<float>(nlist_ * dim_);
  for (std::size_t c = 0; c < nlist_; ++c)
    std::copy(sample.data() + perm[c] * dim_,
              sample.data() + (perm[c] + 1) * dim_,
              centroids_.data() + c * dim_);

  std::vector<std::size_t> assign(sample.rows(), 0);
  for (int it = 0; it < iters; ++it) {
    // Assignment step (device kernel: one thread per sample row).
    const float* ps = sample.data();
    const float* pc = centroids_.data();
    auto* pa = assign.data();
    const std::size_t nl = nlist_, d = dim_;
    auto assign_row = [=](std::size_t r) {
      const float* v = ps + r * d;
      float best = -std::numeric_limits<float>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < nl; ++c) {
        const float* cen = pc + c * d;
        float dot = 0.0f;
        for (std::size_t j = 0; j < d; ++j) dot += v[j] * cen[j];
        if (dot > best) {
          best = dot;
          best_c = c;
        }
      }
      pa[r] = best_c;
    };
    if (dev != nullptr) {
      dev->launch_linear("kmeans_assign", sample.rows(), 128,
                         [&](const gpu::ThreadCtx& ctx) {
                           assign_row(ctx.global_x());
                           ctx.add_flops(2.0 * static_cast<double>(nl * d));
                           ctx.add_bytes(static_cast<double>((nl + 1) * d) *
                                         sizeof(float));
                         });
    } else {
      for (std::size_t r = 0; r < sample.rows(); ++r) assign_row(r);
    }

    // Update step on host (centroid count is small).
    std::vector<double> sums(nlist_ * dim_, 0.0);
    std::vector<std::size_t> counts(nlist_, 0);
    for (std::size_t r = 0; r < sample.rows(); ++r) {
      ++counts[assign[r]];
      const float* v = sample.data() + r * dim_;
      double* s = sums.data() + assign[r] * dim_;
      for (std::size_t j = 0; j < dim_; ++j) s[j] += v[j];
    }
    for (std::size_t c = 0; c < nlist_; ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid
      float* cen = centroids_.data() + c * dim_;
      double norm = 0.0;
      for (std::size_t j = 0; j < dim_; ++j) {
        cen[j] = static_cast<float>(sums[c * dim_ + j] /
                                    static_cast<double>(counts[c]));
        norm += static_cast<double>(cen[j]) * cen[j];
      }
      // Re-normalize: cosine geometry.
      if (norm > 0.0) {
        const float inv = static_cast<float>(1.0 / std::sqrt(norm));
        for (std::size_t j = 0; j < dim_; ++j) cen[j] *= inv;
      }
    }
  }
  trained_ = true;
}

std::size_t IvfFlatIndex::nearest_centroid(const float* vec) const {
  float best = -std::numeric_limits<float>::infinity();
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < nlist_; ++c) {
    const float* cen = centroids_.data() + c * dim_;
    float dot = 0.0f;
    for (std::size_t j = 0; j < dim_; ++j) dot += vec[j] * cen[j];
    if (dot > best) {
      best = dot;
      best_c = c;
    }
  }
  return best_c;
}

void IvfFlatIndex::add(const tensor::Tensor& vectors) {
  if (!trained_)
    throw std::logic_error("IvfFlatIndex::add before train()");
  if (vectors.cols() != dim_)
    throw std::invalid_argument("IvfFlatIndex::add: dim mismatch");
  for (std::size_t r = 0; r < vectors.rows(); ++r) {
    const float* v = vectors.data() + r * dim_;
    const std::size_t c = nearest_centroid(v);
    list_ids_[c].push_back(static_cast<std::uint32_t>(count_ + r));
    list_vecs_[c].insert(list_vecs_[c].end(), v, v + dim_);
  }
  count_ += vectors.rows();
}

Expected<SearchResults> IvfFlatIndex::search(gpu::Device* dev,
                                             const tensor::Tensor& queries,
                                             std::size_t k) const {
  if (!trained_)
    return Status::failed_precondition("IvfFlatIndex::search before train()");
  if (Status s = validate_search(queries, k); !s.ok()) return s;

  SearchResults out;
  out.reserve(queries.rows());

  for (std::size_t q = 0; q < queries.rows(); ++q) {
    const float* qv = queries.data() + q * dim_;

    // Probe selection: score all centroids, take the best nprobe.
    std::vector<float> cscores(nlist_);
    for (std::size_t c = 0; c < nlist_; ++c) {
      const float* cen = centroids_.data() + c * dim_;
      float dot = 0.0f;
      for (std::size_t j = 0; j < dim_; ++j) dot += qv[j] * cen[j];
      cscores[c] = dot;
    }
    std::vector<std::size_t> order(nlist_);
    for (std::size_t c = 0; c < nlist_; ++c) order[c] = c;
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(nprobe_),
                      order.end(), [&](std::size_t a, std::size_t b) {
                        return cscores[a] > cscores[b];
                      });

    // Gather candidates from the probed lists.
    std::vector<std::uint32_t> cand_ids;
    std::vector<const float*> cand_vecs;
    for (std::size_t p = 0; p < nprobe_; ++p) {
      const std::size_t c = order[p];
      for (std::size_t i = 0; i < list_ids_[c].size(); ++i) {
        cand_ids.push_back(list_ids_[c][i]);
        cand_vecs.push_back(list_vecs_[c].data() + i * dim_);
      }
    }
    if (cand_ids.empty()) {
      out.emplace_back();
      continue;
    }

    // Score candidates (device kernel: one thread per candidate).
    std::vector<float> scores(cand_ids.size());
    const std::size_t d = dim_;
    auto score_one = [&, qv, d](std::size_t i) {
      const float* v = cand_vecs[i];
      float dot = 0.0f;
      for (std::size_t j = 0; j < d; ++j) dot += qv[j] * v[j];
      scores[i] = dot;
    };
    if (dev != nullptr) {
      // Centroid scoring charged together with candidate scan.
      dev->launch_linear(
          "ivf_scan", cand_ids.size(), 128, [&](const gpu::ThreadCtx& ctx) {
            score_one(ctx.global_x());
            ctx.add_flops(2.0 * static_cast<double>(d));
            ctx.add_bytes(2.0 * static_cast<double>(d) * sizeof(float));
          });
      const double cen_flops = 2.0 * static_cast<double>(nlist_ * d);
      dev->charge("ivf_centroid_score", prof::EventKind::kKernel,
                  cen_flops / dev->spec().peak_flops() +
                      dev->spec().launch_overhead_us * 1e-6,
                  0, {{"flops", cen_flops}});
    } else {
      for (std::size_t i = 0; i < cand_ids.size(); ++i) score_one(i);
    }

    out.push_back(top_k_from_scores(scores.data(), cand_ids.data(),
                                    cand_ids.size(), k));
  }
  return out;
}

double recall_at_k(const SearchResults& exact, const SearchResults& approx) {
  if (exact.size() != approx.size() || exact.empty())
    throw std::invalid_argument("recall_at_k: mismatched query counts");
  double total = 0.0;
  for (std::size_t q = 0; q < exact.size(); ++q) {
    if (exact[q].empty()) continue;
    std::size_t found = 0;
    for (const auto& e : exact[q])
      for (const auto& a : approx[q])
        if (a.id == e.id) {
          ++found;
          break;
        }
    total += static_cast<double>(found) / static_cast<double>(exact[q].size());
  }
  return total / static_cast<double>(exact.size());
}

}  // namespace sagesim::rag
