// Vector indexes: exact brute-force scan and IVF-Flat (inverted-file with
// k-means coarse quantizer) — the FAISS pair the course's RAG labs contrast.
// Scoring is inner product over L2-normalized vectors (cosine).
//
// The query surface is Status-first: search() returns Expected<SearchResults>
// and classifies misuse (dim mismatch, k == 0, k > size()) as
// kInvalidArgument and state errors (empty index, untrained IVF) as
// kFailedPrecondition instead of throwing or silently clamping.  Hit lists
// are deterministically ordered — ties in score break toward the smaller id —
// so serial, batched and cached retrieval paths are bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/device.hpp"
#include "mem/buffer.hpp"
#include "runtime/status.hpp"
#include "stats/rng.hpp"
#include "tensor/tensor.hpp"

namespace sagesim::rag {

struct SearchHit {
  std::uint32_t id{0};
  float score{0.0f};
  bool operator==(const SearchHit&) const = default;
};

/// One hit list per query row, best first; ties broken by ascending id.
using SearchResults = std::vector<std::vector<SearchHit>>;

class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Appends @p vectors (rows) to the index; ids are assigned sequentially.
  /// Throws std::invalid_argument on dim mismatch (construction-time
  /// misuse, per the repo's exception conventions).
  virtual void add(const tensor::Tensor& vectors) = 0;

  /// Top-@p k hits per query row, best first.  Runs scoring kernels on
  /// @p dev when non-null.  Fails with kInvalidArgument when the query dim
  /// differs from the index dim, k == 0, or k > size(); kFailedPrecondition
  /// when the index is empty (or requires training that has not happened).
  virtual Expected<SearchResults> search(gpu::Device* dev,
                                         const tensor::Tensor& queries,
                                         std::size_t k) const = 0;

  virtual std::size_t size() const = 0;
  virtual std::size_t dim() const = 0;

 protected:
  /// The shared argument checks behind every search() implementation.
  Status validate_search(const tensor::Tensor& queries, std::size_t k) const;
};

/// Exact scan: scores = Q D^T, then top-k per row.
class BruteForceIndex final : public VectorIndex {
 public:
  explicit BruteForceIndex(std::size_t dim);

  void add(const tensor::Tensor& vectors) override;
  Expected<SearchResults> search(gpu::Device* dev,
                                 const tensor::Tensor& queries,
                                 std::size_t k) const override;
  std::size_t size() const override { return data_.rows(); }
  std::size_t dim() const override { return dim_; }

  /// Moves the embedding matrix to @p device (accounted H2D) / back.
  /// add() rebuilds on the host; move again afterwards if needed.
  Status to_device(gpu::Device& device, int stream = 0);
  Status to_host(int stream = 0);
  mem::Placement placement() const { return data_.placement(); }

 private:
  std::size_t dim_;
  tensor::Tensor data_;  ///< row-major count x dim_ embedding matrix
};

/// IVF-Flat: k-means centroids partition the collection; queries probe the
/// @p nprobe nearest lists only.  Approximate — the bench measures the
/// recall-vs-latency tradeoff against BruteForceIndex.
class IvfFlatIndex final : public VectorIndex {
 public:
  IvfFlatIndex(std::size_t dim, std::size_t nlist, std::size_t nprobe,
               std::uint64_t seed = 17);

  /// Runs k-means (Lloyd's, @p iters iterations) over @p sample rows to
  /// place the centroids.  Must be called before add().
  void train(gpu::Device* dev, const tensor::Tensor& sample, int iters = 10);

  void add(const tensor::Tensor& vectors) override;
  Expected<SearchResults> search(gpu::Device* dev,
                                 const tensor::Tensor& queries,
                                 std::size_t k) const override;
  std::size_t size() const override { return count_; }
  std::size_t dim() const override { return dim_; }

  bool trained() const { return trained_; }
  std::size_t nlist() const { return nlist_; }
  std::size_t nprobe() const { return nprobe_; }
  void set_nprobe(std::size_t nprobe);

 private:
  std::size_t nearest_centroid(const float* vec) const;

  std::size_t dim_;
  std::size_t nlist_;
  std::size_t nprobe_;
  std::uint64_t seed_;
  bool trained_{false};
  std::size_t count_{0};
  mem::TypedBuffer<float> centroids_;         ///< nlist_ x dim_
  std::vector<std::vector<std::uint32_t>> list_ids_;
  std::vector<std::vector<float>> list_vecs_;  ///< flattened rows per list
};

/// Recall@k of @p approx against ground-truth @p exact (fraction of exact
/// ids recovered), averaged over queries.
double recall_at_k(const SearchResults& exact, const SearchResults& approx);

}  // namespace sagesim::rag
