#include "compute/autotuner.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "compute/plan.hpp"

namespace sagesim::compute {

namespace {

constexpr const char* kCacheHeader = "sagesim-tune-cache v1";

std::string gemm_key(std::size_t m, std::size_t n, std::size_t k) {
  std::ostringstream os;
  os << isa_name() << ' ' << m << ' ' << n << ' ' << k;
  return os.str();
}

std::string spmm_key(std::size_t nodes, std::size_t nnz, std::size_t d) {
  std::ostringstream os;
  os << isa_name() << ' ' << nodes << ' ' << nnz << ' ' << d;
  return os.str();
}

std::string ddp_key(std::size_t flat_bytes, std::size_t ranks) {
  std::ostringstream os;
  os << flat_bytes << ' ' << ranks;
  return os.str();
}

std::string hnsw_key(std::size_t count, std::size_t dim, std::size_t k) {
  std::ostringstream os;
  os << count << ' ' << dim << ' ' << k;
  return os.str();
}

/// Heuristic defaults — the hand-picked PR 3 constants, so an empty cache
/// reproduces the previous engine exactly.
GemmTiling default_gemm_tiling() {
  GemmTiling t;
  t.mr = 4;
  t.nr = isa() == Isa::kAvx2 ? 16 : 8;
  t.mc = 64;
  t.nc = 0;  // pack all of B
  t.kc = 0;  // no reduction slabbing
  return t;
}

SpmmTiling default_spmm_tiling() {
  SpmmTiling t;
  t.row_block = 64;
  t.tile_width = isa() == Isa::kAvx2 ? 64 : 16;
  return t;
}

}  // namespace

Autotuner& Autotuner::shared() {
  static Autotuner* instance = [] {
    auto* t = new Autotuner();
    const std::string path = cache_path_from_env();
    if (!path.empty()) {
      t->persist_ = true;
      t->persist_path_ = path;
      t->load(path);
    }
    return t;
  }();
  return *instance;
}

std::string Autotuner::cache_path_from_env() {
  const char* env = std::getenv("SAGESIM_TUNE_CACHE");
  return env != nullptr ? std::string(env) : std::string();
}

// --- consult ---------------------------------------------------------------

GemmTiling Autotuner::gemm_tiling(std::size_t m, std::size_t n,
                                  std::size_t k) {
  std::lock_guard lock(mutex_);
  const auto it = gemm_.find(gemm_key(m, n, k));
  if (it != gemm_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  return default_gemm_tiling();
}

SpmmTiling Autotuner::spmm_tiling(std::size_t nodes, std::size_t nnz,
                                  std::size_t d) {
  std::lock_guard lock(mutex_);
  const auto it = spmm_.find(spmm_key(nodes, nnz, d));
  if (it != spmm_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  return default_spmm_tiling();
}

std::size_t Autotuner::ddp_bucket_bytes(std::size_t flat_bytes,
                                        std::size_t ranks) {
  std::lock_guard lock(mutex_);
  const auto it = ddp_.find(ddp_key(flat_bytes, ranks));
  if (it != ddp_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  return 0;
}

std::size_t Autotuner::hnsw_ef(std::size_t count, std::size_t dim,
                               std::size_t k) {
  std::lock_guard lock(mutex_);
  const auto it = hnsw_.find(hnsw_key(count, dim, k));
  if (it != hnsw_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  return 0;
}

// --- record ----------------------------------------------------------------

void Autotuner::record_gemm(std::size_t m, std::size_t n, std::size_t k,
                            GemmTiling t) {
  std::lock_guard lock(mutex_);
  gemm_[gemm_key(m, n, k)] = t;
  maybe_persist_locked();
}

void Autotuner::record_spmm(std::size_t nodes, std::size_t nnz, std::size_t d,
                            SpmmTiling t) {
  std::lock_guard lock(mutex_);
  spmm_[spmm_key(nodes, nnz, d)] = t;
  maybe_persist_locked();
}

void Autotuner::record_ddp(std::size_t flat_bytes, std::size_t ranks,
                           std::size_t bucket_bytes) {
  std::lock_guard lock(mutex_);
  ddp_[ddp_key(flat_bytes, ranks)] = bucket_bytes;
  maybe_persist_locked();
}

void Autotuner::record_hnsw(std::size_t count, std::size_t dim, std::size_t k,
                            std::size_t ef_search) {
  std::lock_guard lock(mutex_);
  hnsw_[hnsw_key(count, dim, k)] = ef_search;
  maybe_persist_locked();
}

// --- candidate grids -------------------------------------------------------

std::vector<GemmTiling> Autotuner::gemm_candidates(std::size_t m,
                                                   std::size_t n,
                                                   std::size_t k) {
  // Micro-tiles are constrained by the register file (see gemm_host.cpp):
  // 4x8 / 8x8 on the portable path, 4x16 / 6x16 / 4x8 with AVX2.
  std::vector<std::pair<std::size_t, std::size_t>> micro;
  if (isa() == Isa::kAvx2)
    micro = {{4, 16}, {6, 16}, {4, 8}};
  else
    micro = {{4, 8}, {8, 8}};

  std::vector<GemmTiling> out;
  for (const auto& [mr, nr] : micro) {
    for (std::size_t mc : {std::size_t{32}, std::size_t{64}, std::size_t{128}}) {
      for (std::size_t nc : {std::size_t{0}, std::size_t{128}, std::size_t{256}}) {
        for (std::size_t kc : {std::size_t{0}, std::size_t{128}, std::size_t{256}}) {
          GemmTiling t;
          t.mr = mr;
          t.nr = nr;
          t.mc = std::max(mr, mc - mc % mr);  // whole micro-panels per panel
          t.nc = nc >= n ? 0 : nc;            // full-extent blocks collapse
          t.kc = kc >= k ? 0 : kc;
          if (t.mc > m + mr) continue;        // panel larger than the matrix
          if (std::find(out.begin(), out.end(), t) == out.end())
            out.push_back(t);
        }
      }
    }
  }
  return out;
}

std::vector<SpmmTiling> Autotuner::spmm_candidates(std::size_t d) {
  std::vector<std::size_t> widths;
  if (isa() == Isa::kAvx2)
    widths = {16, 32, 64};
  else
    widths = {16};

  std::vector<SpmmTiling> out;
  for (std::size_t rb : {std::size_t{32}, std::size_t{64}, std::size_t{128},
                         std::size_t{256}}) {
    for (const std::size_t w : widths) {
      if (w > 16 && w > d) continue;  // wider than the feature dim
      out.push_back(SpmmTiling{rb, w});
    }
  }
  return out;
}

std::vector<std::size_t> Autotuner::ddp_bucket_candidates() {
  return {std::size_t{1} << 20, std::size_t{2} << 20, std::size_t{4} << 20,
          std::size_t{8} << 20, std::size_t{16} << 20};
}

std::vector<std::size_t> Autotuner::hnsw_ef_candidates() {
  return {16, 32, 64, 128, 256};
}

// --- search ----------------------------------------------------------------

GemmTiling Autotuner::tune_gemm(
    std::size_t m, std::size_t n, std::size_t k,
    const std::function<double(const GemmTiling&)>& time_fn) {
  GemmTiling best;
  double best_s = std::numeric_limits<double>::infinity();
  for (const GemmTiling& t : gemm_candidates(m, n, k)) {
    const double s = time_fn(t);
    if (s < best_s) {
      best_s = s;
      best = t;
    }
  }
  {
    std::lock_guard lock(mutex_);
    ++stats_.searches;
    gemm_[gemm_key(m, n, k)] = best;
    maybe_persist_locked();
  }
  return best;
}

SpmmTiling Autotuner::tune_spmm(
    std::size_t nodes, std::size_t nnz, std::size_t d,
    const std::function<double(const SpmmTiling&)>& time_fn) {
  SpmmTiling best;
  double best_s = std::numeric_limits<double>::infinity();
  for (const SpmmTiling& t : spmm_candidates(d)) {
    const double s = time_fn(t);
    if (s < best_s) {
      best_s = s;
      best = t;
    }
  }
  {
    std::lock_guard lock(mutex_);
    ++stats_.searches;
    spmm_[spmm_key(nodes, nnz, d)] = best;
    maybe_persist_locked();
  }
  return best;
}

std::size_t Autotuner::tune_ddp(
    std::size_t flat_bytes, std::size_t ranks,
    const std::function<double(std::size_t)>& time_fn) {
  std::size_t best = 0;
  double best_s = std::numeric_limits<double>::infinity();
  for (const std::size_t b : ddp_bucket_candidates()) {
    const double s = time_fn(b);
    if (s < best_s) {
      best_s = s;
      best = b;
    }
  }
  {
    std::lock_guard lock(mutex_);
    ++stats_.searches;
    ddp_[ddp_key(flat_bytes, ranks)] = best;
    maybe_persist_locked();
  }
  return best;
}

std::size_t Autotuner::tune_hnsw(
    std::size_t count, std::size_t dim, std::size_t k,
    const std::function<double(std::size_t)>& time_fn) {
  // Candidates are ordered smallest-ef first; with strict '<' the cheapest
  // candidate that meets the recall target (time_fn returns +inf below it)
  // wins, so ties in measured time resolve toward the faster search.
  std::size_t best = 0;
  double best_s = std::numeric_limits<double>::infinity();
  for (const std::size_t ef : hnsw_ef_candidates()) {
    const double s = time_fn(ef);
    if (s < best_s) {
      best_s = s;
      best = ef;
    }
  }
  if (best == 0) return 0;  // nothing met the target: leave untuned
  {
    std::lock_guard lock(mutex_);
    ++stats_.searches;
    hnsw_[hnsw_key(count, dim, k)] = best;
    maybe_persist_locked();
  }
  return best;
}

// --- persistence -----------------------------------------------------------

bool Autotuner::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return true;  // missing cache: start empty, not an error

  std::map<std::string, GemmTiling> gemm;
  std::map<std::string, SpmmTiling> spmm;
  std::map<std::string, std::size_t> ddp;
  std::map<std::string, std::size_t> hnsw;

  const auto reject = [&](const char* why) {
    std::fprintf(stderr,
                 "sagesim: warning: tuning cache '%s' %s; falling back to "
                 "default tilings\n",
                 path.c_str(), why);
    std::lock_guard lock(mutex_);
    gemm_.clear();
    spmm_.clear();
    ddp_.clear();
    hnsw_.clear();
    stats_.corrupt = true;
    return false;
  };

  std::string line;
  if (!std::getline(in, line) || line != kCacheHeader)
    return reject("has an unknown header/version");

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "gemm") {
      std::string isa_tag;
      std::size_t m = 0, n = 0, k = 0;
      GemmTiling t;
      ls >> isa_tag >> m >> n >> k >> t.mr >> t.nr >> t.mc >> t.nc >> t.kc;
      if (ls.fail() || t.mr == 0 || t.nr == 0 || t.mc == 0)
        return reject("has a corrupt gemm entry");
      std::ostringstream key;
      key << isa_tag << ' ' << m << ' ' << n << ' ' << k;
      gemm[key.str()] = t;
    } else if (tag == "spmm") {
      std::string isa_tag;
      std::size_t nodes = 0, nnz = 0, d = 0;
      SpmmTiling t;
      ls >> isa_tag >> nodes >> nnz >> d >> t.row_block >> t.tile_width;
      if (ls.fail() || t.row_block == 0 || t.tile_width == 0)
        return reject("has a corrupt spmm entry");
      std::ostringstream key;
      key << isa_tag << ' ' << nodes << ' ' << nnz << ' ' << d;
      spmm[key.str()] = t;
    } else if (tag == "ddp") {
      std::size_t flat_bytes = 0, ranks = 0, bucket = 0;
      ls >> flat_bytes >> ranks >> bucket;
      if (ls.fail() || bucket == 0) return reject("has a corrupt ddp entry");
      std::ostringstream key;
      key << flat_bytes << ' ' << ranks;
      ddp[key.str()] = bucket;
    } else if (tag == "hnsw") {
      std::size_t count = 0, dim = 0, k = 0, ef = 0;
      ls >> count >> dim >> k >> ef;
      if (ls.fail() || ef == 0) return reject("has a corrupt hnsw entry");
      std::ostringstream key;
      key << count << ' ' << dim << ' ' << k;
      hnsw[key.str()] = ef;
    } else {
      return reject("has an unknown entry kind");
    }
  }

  std::lock_guard lock(mutex_);
  gemm_ = std::move(gemm);
  spmm_ = std::move(spmm);
  ddp_ = std::move(ddp);
  hnsw_ = std::move(hnsw);
  stats_.loaded = true;
  return true;
}

bool Autotuner::save(const std::string& path) const {
  std::lock_guard lock(mutex_);
  return save_locked(path);
}

bool Autotuner::save_locked(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << kCacheHeader << '\n';
  for (const auto& [key, t] : gemm_)
    out << "gemm " << key << ' ' << t.mr << ' ' << t.nr << ' ' << t.mc << ' '
        << t.nc << ' ' << t.kc << '\n';
  for (const auto& [key, t] : spmm_)
    out << "spmm " << key << ' ' << t.row_block << ' ' << t.tile_width << '\n';
  for (const auto& [key, b] : ddp_) out << "ddp " << key << ' ' << b << '\n';
  for (const auto& [key, ef] : hnsw_)
    out << "hnsw " << key << ' ' << ef << '\n';
  return static_cast<bool>(out);
}

void Autotuner::maybe_persist_locked() {
  if (persist_) save_locked(persist_path_);
}

TunerStats Autotuner::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void Autotuner::reset_stats() {
  std::lock_guard lock(mutex_);
  stats_ = TunerStats{};
}

void Autotuner::clear() {
  std::lock_guard lock(mutex_);
  gemm_.clear();
  spmm_.clear();
  ddp_.clear();
  hnsw_.clear();
}

std::size_t Autotuner::entry_count() const {
  std::lock_guard lock(mutex_);
  return gemm_.size() + spmm_.size() + ddp_.size() + hnsw_.size();
}

}  // namespace sagesim::compute
