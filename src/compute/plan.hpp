// Kernel-plan layer: the one way to launch a host compute kernel.
//
// A compute::Plan describes a macro-tile decomposition as a small task
// graph — pack tasks feeding tile tasks, each node an opaque callable with
// explicit dependencies — and compute::run executes it on the work-stealing
// runtime.  The kernel layers (tensor/gemm_host, graph/spmm) build plans;
// they never talk to the scheduler directly anymore.
//
// Execution model (see DESIGN.md "Compute plans & autotuning"):
//
//  * Dependency-counted: a node becomes ready only when every dependency
//    has finished; workers never block on dependencies.
//  * Lane-aware: a node may pin itself to a scheduler lane (worker index);
//    pinned nodes are submitted to runtime::Scheduler's pinned queues at
//    ready time, stealable nodes go through a shared claim pool that the
//    *calling thread participates in*.  Caller participation is what makes
//    plan execution safe to launch from inside a pool worker (a nested
//    plan still completes on a 1-worker pool — the same property
//    gpusim::Executor::parallel_for has).
//  * Cancellation-safe: the first node that throws aborts the plan — nodes
//    claimed afterwards complete without running their body, dependents
//    drain, and the exception is rethrown on the calling thread once every
//    node has reached a terminal state.
//  * Min-grain: RunOptions::min_grain is the minimum number of nodes per
//    worker below which the plan runs serially on the calling thread
//    (topological index order), so tiny shapes never pay fork/join.
//
// Determinism: a plan partitions output elements across nodes — every
// element is written by exactly one node, and each node folds its
// reduction in the kernel's canonical (ascending-k / ascending-edge)
// order.  Scheduling order can therefore never perturb result bits, at
// any worker count.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "gpusim/executor.hpp"
#include "runtime/status.hpp"

namespace sagesim::compute {

/// One node of a plan.  `deps` are indices of previously added nodes
/// (topological order is enforced at add time).
struct PlanNode {
  std::function<void()> fn;
  std::vector<std::size_t> deps;
  int lane{-1};  ///< pinned scheduler lane, -1 == stealable
};

/// A macro-tile decomposition: an immutable-once-run task graph.
class Plan {
 public:
  explicit Plan(std::string name = "plan") : name_(std::move(name)) {}

  /// Adds a node depending on @p deps (all must index earlier nodes —
  /// throws std::invalid_argument otherwise, which also rules out cycles).
  /// Returns the node's index for use in later deps.
  std::size_t add(std::function<void()> fn, std::vector<std::size_t> deps = {},
                  int lane = -1);

  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  const std::string& name() const { return name_; }
  const std::vector<PlanNode>& nodes() const { return nodes_; }

 private:
  std::string name_;
  std::vector<PlanNode> nodes_;
};

struct RunOptions {
  /// Pool to execute on; nullptr uses compute::executor().
  gpu::Executor* executor{nullptr};
  /// Minimum nodes per worker before going parallel: with fewer than
  /// 2 * min_grain stealable nodes (or a 1-worker pool) the plan runs
  /// serially on the calling thread.
  std::size_t min_grain{1};
};

/// Executes @p plan to completion; rethrows the first node exception after
/// every node has reached a terminal state.
void run(const Plan& plan, const RunOptions& options = {});

/// The executor kernel plans run on by default: gpu::Executor::shared()
/// unless overridden.  set_executor(nullptr) restores the shared pool.
/// The override exists for worker-count sweeps (tests, microbenches) —
/// swap in a private pool of exactly N workers without re-execing under a
/// different SAGESIM_WORKERS.  Not intended to be raced against in-flight
/// plans.
gpu::Executor& executor();
void set_executor(gpu::Executor* ex);

/// Host ISA the kernel micro-kernels dispatch on, resolved once at runtime.
enum class Isa { kPortable, kAvx2 };
Isa isa();
/// "avx2" / "portable" — the string benches record so BENCH deltas are
/// attributable to the dispatch choice.
const char* isa_name();
/// True when the CPU supports FMA3 (informational; FMA kernels are opt-in).
bool isa_has_fma();

/// Opt-in fused-multiply-add micro-kernels: first use reads
/// SAGESIM_FAST_MATH (1/on/true).  FMA contracts the multiply-add, so the
/// fast-math path is *excluded* from the bit-identity guarantees — results
/// match the reference to tolerance, not bitwise (see the FastMath
/// conformance test).  Off by default.
bool fast_math();
void set_fast_math(bool on);

/// RAII scratch block drawn from mem::host_pool() — the packing buffers of
/// a plan, recycled across tasks by the pool's free lists instead of hitting
/// the host heap per launch.
class Scratch {
 public:
  explicit Scratch(std::size_t bytes);
  ~Scratch();
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  float* floats() { return static_cast<float*>(ptr_); }
  void* data() { return ptr_; }

 private:
  void* ptr_{nullptr};
};

}  // namespace sagesim::compute
