// Shape-keyed kernel autotuner: searched tile parameters instead of frozen
// constants.
//
// Every host kernel family exposes its tunable knobs as a small POD tiling
// (GEMM macro/micro tiles, SpMM row block + feature tile width, the DDP
// gradient-bucket size).  The Autotuner maps an exact shape key to the
// winning tiling:
//
//  * consult (gemm_tiling / spmm_tiling / ddp_bucket_bytes) is cheap — a
//    cache lookup falling back to the built-in heuristic defaults — and is
//    what tensor::ops, graph::spmm and ddp::SyncOptions call on the hot
//    path.  Training reuses identical shapes every step, so exact keys hit.
//  * search (tune_gemm / tune_spmm / tune_ddp) times caller-provided
//    candidates, records the winner, and persists it.  Benches and the
//    conformance tests drive search explicitly; it never runs implicitly
//    inside a kernel launch.
//
// Results are bit-identical across tilings by the plan-layer determinism
// argument (tiles partition outputs; reduction order per element is fixed),
// so a stale or missing cache entry can only cost time, never correctness.
//
// Persistence: SAGESIM_TUNE_CACHE names an on-disk cache consulted by
// Autotuner::shared() at first use and rewritten after each search.  The
// file is a versioned text format ("sagesim-tune-cache v1"); a corrupt or
// version-mismatched file is discarded with a warning and the tuner falls
// back to defaults — tuning state can never poison a run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sagesim::compute {

/// GEMM macro/micro tile parameters (see tensor/gemm_host.cpp).
/// mr x nr is the register micro-tile; mc rows per packed A panel (the
/// parallel grain along M); nc columns per packed B block (the grain along
/// N); kc the reduction slab kept L1-hot between repacks.  nc == 0 / kc == 0
/// mean "full extent" (no blocking along that dimension).
struct GemmTiling {
  std::size_t mr{4}, nr{0}, mc{64}, nc{0}, kc{0};
  bool operator==(const GemmTiling&) const = default;
};

/// SpMM tile parameters: rows per parallel block and the widest vector
/// feature tile (floats) held in registers across a row's edge loop.
struct SpmmTiling {
  std::size_t row_block{64}, tile_width{64};
  bool operator==(const SpmmTiling&) const = default;
};

struct TunerStats {
  std::uint64_t hits{0};    ///< consults served from the cache
  std::uint64_t misses{0};  ///< consults that fell back to defaults
  std::uint64_t searches{0};
  bool loaded{false};       ///< a cache file was read successfully
  bool corrupt{false};      ///< a cache file was rejected (warned, defaulted)
};

class Autotuner {
 public:
  Autotuner() = default;

  /// Process-wide instance; loads the SAGESIM_TUNE_CACHE file (if set) on
  /// first use.
  static Autotuner& shared();

  // --- consult (hot path) --------------------------------------------------
  GemmTiling gemm_tiling(std::size_t m, std::size_t n, std::size_t k);
  SpmmTiling spmm_tiling(std::size_t nodes, std::size_t nnz, std::size_t d);
  /// Tuned DDP bucket size for (replica bytes, ranks), or 0 when untuned —
  /// the caller (ddp::resolve_bucket_bytes) applies its own default.
  std::size_t ddp_bucket_bytes(std::size_t flat_bytes, std::size_t ranks);
  /// Tuned HNSW search beam (ef_search) for an (index size, dim, k) shape,
  /// or 0 when untuned — rag::HnswIndex applies its configured default.
  std::size_t hnsw_ef(std::size_t count, std::size_t dim, std::size_t k);

  // --- record / search -----------------------------------------------------
  void record_gemm(std::size_t m, std::size_t n, std::size_t k, GemmTiling t);
  void record_spmm(std::size_t nodes, std::size_t nnz, std::size_t d,
                   SpmmTiling t);
  void record_ddp(std::size_t flat_bytes, std::size_t ranks,
                  std::size_t bucket_bytes);
  void record_hnsw(std::size_t count, std::size_t dim, std::size_t k,
                   std::size_t ef_search);

  /// Candidate grids, pruned to the shape and the runtime ISA.
  static std::vector<GemmTiling> gemm_candidates(std::size_t m, std::size_t n,
                                                 std::size_t k);
  static std::vector<SpmmTiling> spmm_candidates(std::size_t d);
  static std::vector<std::size_t> ddp_bucket_candidates();
  static std::vector<std::size_t> hnsw_ef_candidates();

  /// Times every candidate with @p time_fn (seconds; lower is better),
  /// records the winner, persists the cache (when this is the shared
  /// instance and SAGESIM_TUNE_CACHE is set), and returns it.
  GemmTiling tune_gemm(std::size_t m, std::size_t n, std::size_t k,
                       const std::function<double(const GemmTiling&)>& time_fn);
  SpmmTiling tune_spmm(std::size_t nodes, std::size_t nnz, std::size_t d,
                       const std::function<double(const SpmmTiling&)>& time_fn);
  std::size_t tune_ddp(std::size_t flat_bytes, std::size_t ranks,
                       const std::function<double(std::size_t)>& time_fn);
  /// Smaller ef is always faster but recalls less, so unlike the kernel
  /// searches the cost function must fold the quality constraint in: return
  /// +inf for candidates whose measured recall misses the caller's target
  /// and seconds otherwise (rag::tune_hnsw_ef does exactly that).
  std::size_t tune_hnsw(std::size_t count, std::size_t dim, std::size_t k,
                        const std::function<double(std::size_t)>& time_fn);

  // --- persistence ---------------------------------------------------------
  /// Replaces the in-memory entries with the file's.  Returns false (and
  /// warns on stderr, leaving the tuner at defaults) when the file exists
  /// but is corrupt or carries an unknown version.  A missing file is not
  /// an error — the tuner simply starts empty.
  bool load(const std::string& path);
  /// Writes every entry (deterministic key order).  Returns false on I/O
  /// failure.
  bool save(const std::string& path) const;

  /// Path persisted to by searches: SAGESIM_TUNE_CACHE, or "" when unset.
  static std::string cache_path_from_env();

  TunerStats stats() const;
  void reset_stats();
  /// Drops every entry (tests).
  void clear();
  std::size_t entry_count() const;

 private:
  bool save_locked(const std::string& path) const;
  void maybe_persist_locked();

  mutable std::mutex mutex_;
  std::map<std::string, GemmTiling> gemm_;
  std::map<std::string, SpmmTiling> spmm_;
  std::map<std::string, std::size_t> ddp_;
  std::map<std::string, std::size_t> hnsw_;
  TunerStats stats_;
  bool persist_{false};  ///< set for the shared instance when env path set
  std::string persist_path_;
};

}  // namespace sagesim::compute
