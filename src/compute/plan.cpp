#include "compute/plan.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>

#include "mem/pool.hpp"

namespace sagesim::compute {

std::size_t Plan::add(std::function<void()> fn, std::vector<std::size_t> deps,
                      int lane) {
  for (const std::size_t d : deps)
    if (d >= nodes_.size())
      throw std::invalid_argument("Plan::add: dep " + std::to_string(d) +
                                  " is not an earlier node of '" + name_ +
                                  "'");
  nodes_.push_back(PlanNode{std::move(fn), std::move(deps), lane});
  return nodes_.size() - 1;
}

namespace {

// Heap-allocated so helper tasks (and pinned-node wrappers) can outlive the
// caller's stack frame: a helper woken after the plan finished touches only
// this state, never the caller-owned Plan.
struct RunState {
  const std::vector<PlanNode>* nodes{nullptr};
  runtime::Scheduler* sched{nullptr};
  std::size_t total{0};

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<int> pending;                 ///< deps left, guarded by mutex
  std::vector<std::vector<std::size_t>> children;
  std::deque<std::size_t> ready;            ///< stealable ready nodes
  std::size_t finished{0};
  std::exception_ptr first_error;           ///< guarded by mutex
  std::atomic<bool> aborted{false};
};

void submit_pinned(const std::shared_ptr<RunState>& state, std::size_t idx);

/// Runs node @p idx (body skipped after an abort), then retires it:
/// decrements children's dep counts, queues newly-ready nodes, and signals
/// completion.  This is the dependency-counting heart of the executor.
void run_one(const std::shared_ptr<RunState>& state, std::size_t idx) {
  std::exception_ptr error;
  if (!state->aborted.load(std::memory_order_acquire)) {
    try {
      (*state->nodes)[idx].fn();
    } catch (...) {
      error = std::current_exception();
      state->aborted.store(true, std::memory_order_release);
    }
  }
  std::vector<std::size_t> pinned_ready;
  {
    std::lock_guard lock(state->mutex);
    if (error && !state->first_error) state->first_error = error;
    for (const std::size_t c : state->children[idx]) {
      if (--state->pending[c] == 0) {
        if ((*state->nodes)[c].lane >= 0)
          pinned_ready.push_back(c);
        else
          state->ready.push_back(c);
      }
    }
    ++state->finished;
    if (state->finished == state->total || !state->ready.empty())
      state->cv.notify_all();
  }
  for (const std::size_t c : pinned_ready) submit_pinned(state, c);
}

void submit_pinned(const std::shared_ptr<RunState>& state, std::size_t idx) {
  runtime::SubmitOptions opts;
  opts.lane = (*state->nodes)[idx].lane;
  state->sched->submit_any(std::move(opts), [state, idx]() -> std::any {
    run_one(state, idx);
    return {};
  });
}

/// Claim loop shared by the calling thread and the stealable helper tasks:
/// pop ready nodes until every node of the plan has retired.
void drain(const std::shared_ptr<RunState>& state) {
  std::unique_lock lock(state->mutex);
  for (;;) {
    state->cv.wait(lock, [&] {
      return !state->ready.empty() || state->finished == state->total;
    });
    if (state->ready.empty()) return;  // finished == total
    const std::size_t idx = state->ready.front();
    state->ready.pop_front();
    lock.unlock();
    run_one(state, idx);
    lock.lock();
  }
}

void run_serial(const Plan& plan) {
  // Nodes are in topological order by construction, so index order
  // satisfies every dependency.
  std::exception_ptr error;
  for (const PlanNode& node : plan.nodes()) {
    if (error) break;  // cancelled: remaining bodies drain without running
    try {
      node.fn();
    } catch (...) {
      error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

std::atomic<gpu::Executor*>& executor_slot() {
  static std::atomic<gpu::Executor*> slot{nullptr};
  return slot;
}

}  // namespace

void run(const Plan& plan, const RunOptions& options) {
  if (plan.empty()) return;
  gpu::Executor& ex =
      options.executor != nullptr ? *options.executor : executor();
  const unsigned workers = ex.worker_count();

  bool has_pinned = false;
  for (const PlanNode& node : plan.nodes()) {
    if (node.lane < 0) continue;
    has_pinned = true;
    if (static_cast<unsigned>(node.lane) >= workers)
      throw std::out_of_range("compute::run: plan '" + plan.name() +
                              "' pins lane " + std::to_string(node.lane) +
                              " on a " + std::to_string(workers) +
                              "-worker pool");
  }

  // Min-grain: tiny plans (or a 1-worker pool) run on the calling thread —
  // no helper submission, no cv hand-off.  Pinned nodes always take the
  // scheduler path, since affinity is part of their contract.
  const std::size_t min_parallel = 2 * std::max<std::size_t>(options.min_grain, 1);
  if (!has_pinned && (workers <= 1 || plan.size() < min_parallel)) {
    run_serial(plan);
    return;
  }

  auto state = std::make_shared<RunState>();
  state->nodes = &plan.nodes();
  state->sched = &ex.scheduler();
  state->total = plan.size();
  state->pending.resize(plan.size(), 0);
  state->children.resize(plan.size());
  std::size_t stealable_roots = 0;
  std::vector<std::size_t> pinned_roots;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const PlanNode& node = plan.nodes()[i];
    state->pending[i] = static_cast<int>(node.deps.size());
    for (const std::size_t d : node.deps) state->children[d].push_back(i);
    if (node.deps.empty()) {
      if (node.lane >= 0)
        pinned_roots.push_back(i);
      else {
        state->ready.push_back(i);
        ++stealable_roots;
      }
    }
  }
  for (const std::size_t i : pinned_roots) submit_pinned(state, i);

  // Stealable helpers, as in Executor::parallel_for: the caller participates
  // too, so the plan completes even when launched from inside a pool worker.
  // Helpers are unnamed — per-tile spans would swamp the runtime timeline.
  const std::size_t helper_cap =
      std::max<std::size_t>(stealable_roots, std::size_t{1});
  for (unsigned i = 0; i + 1 < workers && i < helper_cap; ++i)
    state->sched->submit_any({}, [state]() -> std::any {
      drain(state);
      return {};
    });
  drain(state);

  std::unique_lock lock(state->mutex);
  state->cv.wait(lock, [&] { return state->finished == state->total; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

gpu::Executor& executor() {
  gpu::Executor* ex = executor_slot().load(std::memory_order_acquire);
  return ex != nullptr ? *ex : gpu::Executor::shared();
}

void set_executor(gpu::Executor* ex) {
  executor_slot().store(ex, std::memory_order_release);
}

// --- ISA dispatch & fast-math opt-in ---------------------------------------

Isa isa() {
#if defined(__GNUC__) && defined(__x86_64__)
  static const Isa v =
      __builtin_cpu_supports("avx2") > 0 ? Isa::kAvx2 : Isa::kPortable;
  return v;
#else
  return Isa::kPortable;
#endif
}

const char* isa_name() { return isa() == Isa::kAvx2 ? "avx2" : "portable"; }

bool isa_has_fma() {
#if defined(__GNUC__) && defined(__x86_64__)
  static const bool v =
      __builtin_cpu_supports("fma") > 0 && isa() == Isa::kAvx2;
  return v;
#else
  return false;
#endif
}

namespace {

bool fast_math_from_env() {
  const char* env = std::getenv("SAGESIM_FAST_MATH");
  if (env == nullptr) return false;
  const std::string v(env);
  return v == "1" || v == "on" || v == "true";
}

std::atomic<bool>& fast_math_slot() {
  static std::atomic<bool> slot{fast_math_from_env()};
  return slot;
}

}  // namespace

bool fast_math() { return fast_math_slot().load(std::memory_order_relaxed); }
void set_fast_math(bool on) {
  fast_math_slot().store(on, std::memory_order_relaxed);
}

// --- pooled scratch ---------------------------------------------------------

Scratch::Scratch(std::size_t bytes) {
  if (bytes == 0) return;
  auto block = mem::host_pool().allocate(bytes);
  if (!block.has_value()) throw std::bad_alloc();
  ptr_ = block.value();
}

Scratch::~Scratch() {
  if (ptr_ != nullptr) mem::host_pool().free(ptr_);
}

}  // namespace sagesim::compute
