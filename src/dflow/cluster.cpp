#include "dflow/cluster.hpp"

#include <stdexcept>
#include <utility>

namespace sagesim::dflow {

// Scheduling safety: the runtime only makes a task runnable once every
// declared dependency has completed, so workers never block inside the pool
// waiting for another task.  Blocking on an *undeclared* future inside a
// task body is safe exactly when the old per-rank-FIFO induction held:
// the blocked-on task was submitted earlier and is pinned to a different
// rank, unpinned (stealable by any idle worker), or earlier in the same
// rank's FIFO lane.
Cluster::Cluster(gpu::DeviceManager& devices)
    : devices_(devices),
      scheduler_(static_cast<unsigned>(devices.device_count())) {}

Future Cluster::submit(std::string name, TaskFn fn, std::vector<Future> deps,
                       int rank) {
  if (rank >= world_size())
    throw std::out_of_range("Cluster::submit: rank " + std::to_string(rank) +
                            " >= world size " + std::to_string(world_size()));
  if (!fn) throw std::invalid_argument("Cluster::submit: null task function");

  runtime::SubmitOptions opts;
  opts.name = std::move(name);
  opts.lane = rank < 0 ? -1 : rank;
  opts.deps = std::move(deps);
  return scheduler_.submit_any(
      std::move(opts), [this, f = std::move(fn)]() -> std::any {
        WorkerCtx ctx;
        ctx.rank = scheduler_.current_worker();
        ctx.world_size = world_size();
        ctx.device = &devices_.device(static_cast<std::size_t>(ctx.rank));
        return f(ctx);
      });
}

std::vector<Future> Cluster::map(const std::string& name, const TaskFn& fn) {
  std::vector<Future> futures;
  futures.reserve(static_cast<std::size_t>(world_size()));
  for (int r = 0; r < world_size(); ++r)
    futures.push_back(submit(name + ":" + std::to_string(r), fn, {}, r));
  return futures;
}

std::vector<std::any> Cluster::run_on_all(const std::string& name,
                                          const TaskFn& fn) {
  return gather(map(name, fn));
}

std::vector<Future> Cluster::scatter(std::vector<std::any> values) {
  if (values.size() != static_cast<std::size_t>(world_size()))
    throw std::invalid_argument(
        "Cluster::scatter: need exactly one value per worker");
  std::vector<Future> futures;
  futures.reserve(values.size());
  for (auto& v : values) futures.push_back(Future::immediate(std::move(v)));
  return futures;
}

std::vector<std::any> Cluster::gather(const std::vector<Future>& futures) {
  std::vector<std::any> out;
  out.reserve(futures.size());
  for (const auto& f : futures) out.push_back(f.get_any());
  return out;
}

void Cluster::wait_all() { scheduler_.wait_idle(); }

}  // namespace sagesim::dflow
