#include "dflow/cluster.hpp"

#include <stdexcept>

namespace sagesim::dflow {

// Scheduling safety: a task's dependencies are always futures obtained from
// *earlier* submit/scatter calls, so dependency order agrees with submission
// order.  Per-worker FIFO queues therefore guarantee that blocking on a
// dependency inside a worker cannot deadlock: the globally earliest
// unfinished task always has all dependencies finished and is either running
// or at the head of its queue (induction over submission order).
struct Cluster::TaskNode {
  std::string name;
  TaskFn fn;
  std::vector<Future> deps;
  Future future;
  int rank{0};
};

Cluster::Cluster(gpu::DeviceManager& devices) : devices_(devices) {
  const auto n = devices_.device_count();
  queues_.resize(n);
  workers_.reserve(n);
  for (std::size_t r = 0; r < n; ++r)
    workers_.emplace_back([this, r] { worker_loop(static_cast<int>(r)); });
}

Cluster::~Cluster() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

Future Cluster::submit(std::string name, TaskFn fn, std::vector<Future> deps,
                       int rank) {
  if (rank >= world_size())
    throw std::out_of_range("Cluster::submit: rank " + std::to_string(rank) +
                            " >= world size " + std::to_string(world_size()));
  auto node = std::make_shared<TaskNode>();
  node->name = std::move(name);
  node->fn = std::move(fn);
  node->deps = std::move(deps);
  node->future.set_name(node->name);

  {
    std::lock_guard lock(mutex_);
    node->rank = rank >= 0 ? rank : next_rank_;
    if (rank < 0) next_rank_ = (next_rank_ + 1) % world_size();
    queues_[static_cast<std::size_t>(node->rank)].push_back(node);
    ++pending_;
  }
  cv_.notify_all();
  return node->future;
}

std::vector<Future> Cluster::map(const std::string& name, const TaskFn& fn) {
  std::vector<Future> futures;
  futures.reserve(static_cast<std::size_t>(world_size()));
  for (int r = 0; r < world_size(); ++r)
    futures.push_back(submit(name + ":" + std::to_string(r), fn, {}, r));
  return futures;
}

std::vector<std::any> Cluster::run_on_all(const std::string& name,
                                          const TaskFn& fn) {
  return gather(map(name, fn));
}

std::vector<Future> Cluster::scatter(std::vector<std::any> values) {
  if (values.size() != static_cast<std::size_t>(world_size()))
    throw std::invalid_argument(
        "Cluster::scatter: need exactly one value per worker");
  std::vector<Future> futures;
  futures.reserve(values.size());
  for (auto& v : values) futures.push_back(Future::immediate(std::move(v)));
  return futures;
}

std::vector<std::any> Cluster::gather(const std::vector<Future>& futures) {
  std::vector<std::any> out;
  out.reserve(futures.size());
  for (const auto& f : futures) out.push_back(f.get_any());
  return out;
}

void Cluster::wait_all() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return pending_ == 0; });
}

void Cluster::worker_loop(int rank) {
  auto& queue = queues_[static_cast<std::size_t>(rank)];
  WorkerCtx ctx;
  ctx.rank = rank;
  ctx.world_size = world_size();
  ctx.device = &devices_.device(static_cast<std::size_t>(rank));

  for (;;) {
    std::shared_ptr<TaskNode> node;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !queue.empty(); });
      if (queue.empty()) return;  // stop requested and drained
      node = std::move(queue.front());
      queue.pop_front();
    }

    try {
      for (const auto& dep : node->deps) dep.wait();  // rethrows failures
      std::any result = node->fn(ctx);
      node->future.deliver(std::move(result));
    } catch (...) {
      node->future.fail(std::current_exception());
    }

    completed_.fetch_add(1);
    {
      std::lock_guard lock(mutex_);
      --pending_;
      if (pending_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace sagesim::dflow
