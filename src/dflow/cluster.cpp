#include "dflow/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

namespace sagesim::dflow {

// Scheduling safety: the runtime only makes a task runnable once every
// declared dependency has completed, so workers never block inside the pool
// waiting for another task.  Blocking on an *undeclared* future inside a
// task body is safe exactly when the old per-rank-FIFO induction held:
// the blocked-on task was submitted earlier and is pinned to a different
// rank, unpinned (stealable by any idle worker), or earlier in the same
// rank's FIFO lane.
Cluster::Cluster(gpu::DeviceManager& devices)
    : Cluster(devices, ClusterOptions{}) {}

Cluster::Cluster(gpu::DeviceManager& devices, ClusterOptions options)
    : devices_(devices),
      options_(std::move(options)),
      scheduler_(static_cast<unsigned>(devices.device_count())),
      rank_up_(devices.device_count(), 1) {
  if (options_.faults)
    scheduler_.set_fault_injector(
        std::make_shared<runtime::FaultInjector>(*options_.faults));
  if (options_.lease &&
      options_.lease->instance_ids.size() != devices.device_count())
    throw std::invalid_argument(
        "Cluster: lease holds " +
        std::to_string(options_.lease->instance_ids.size()) +
        " instances for " + std::to_string(devices.device_count()) +
        " devices");
}

const std::string& Cluster::instance_id(int rank) const {
  if (!options_.lease)
    throw std::logic_error("Cluster::instance_id: cluster holds no lease");
  if (rank < 0 || rank >= world_size())
    throw std::out_of_range("Cluster::instance_id: rank " +
                            std::to_string(rank) + " out of range");
  return options_.lease->instance_ids[static_cast<std::size_t>(rank)];
}

Future Cluster::submit(std::string name, TaskFn fn, std::vector<Future> deps,
                       int rank, double timeout_s) {
  if (rank >= world_size())
    throw std::out_of_range("Cluster::submit: rank " + std::to_string(rank) +
                            " >= world size " + std::to_string(world_size()));
  if (!fn) throw std::invalid_argument("Cluster::submit: null task function");

  if (options_.control && options_.control->cancel_requested()) {
    // Job-level cancellation: a cancelled job must stop growing its task
    // graph — new submits fail immediately instead of queueing.
    Future failed;
    failed.set_name(name);
    failed.fail(std::make_exception_ptr(StatusError(Status::cancelled(
        "job cancelled: " + options_.control->cancel_reason()))));
    return failed;
  }

  if (rank >= 0 && !rank_available(rank)) {
    // Spot semantics: the lane's instance is reclaimed.  Fail fast and
    // retryably instead of queueing onto capacity that may never return.
    Future failed;
    failed.set_name(name);
    failed.fail(std::make_exception_ptr(StatusError(Status::unavailable(
        "rank " + std::to_string(rank) + " is preempted"))));
    return failed;
  }

  runtime::SubmitOptions opts;
  opts.name = std::move(name);
  opts.lane = rank < 0 ? -1 : rank;
  opts.deps = std::move(deps);
  opts.timeout_s = timeout_s > 0.0 ? timeout_s : options_.default_timeout_s;
  if (options_.control)
    opts.timeout_s = options_.control->effective_timeout_s(opts.timeout_s);
  Future future = scheduler_.submit_any(
      std::move(opts), [this, f = std::move(fn)]() -> std::any {
        WorkerCtx ctx;
        ctx.rank = scheduler_.current_worker();
        ctx.world_size = world_size();
        ctx.device = &devices_.device(static_cast<std::size_t>(ctx.rank));
        return f(ctx);
      });
  if (options_.control) {
    options_.control->attach(future);
    // Fault routing: terminal failures surface on the job control so the
    // owning control plane reads one Status instead of scraping futures.
    future.on_ready([control = options_.control](const Future& done) {
      control->route_fault(done.wait_status());
    });
  }
  return future;
}

namespace {

/// One logical submit_retry call.  Owns the outer promise; each attempt's
/// completion callback either settles it or launches the next attempt.
/// Keeps itself alive through the callback captures.
struct RetryJob : std::enable_shared_from_this<RetryJob> {
  Cluster* cluster{nullptr};
  std::string name;
  TaskFn fn;
  std::vector<Future> deps;
  int rank{-1};
  RetryPolicy policy;
  double timeout_s{0.0};
  int attempt{0};
  Future outer;

  void launch() {
    ++attempt;
    double backoff_ms = 0.0;
    if (attempt >= 2) {
      backoff_ms = policy.initial_backoff_ms *
                   std::pow(policy.multiplier, attempt - 2);
      backoff_ms = std::min(backoff_ms, policy.max_backoff_ms);
    }
    // Retries of work pinned to a reclaimed rank degrade to the stealable
    // pool: surviving ranks absorb it instead of waiting for re-acquisition.
    int target = rank;
    if (target >= 0 && !cluster->rank_available(target)) target = -1;

    std::string attempt_name = name;
    if (attempt > 1)
      attempt_name += ":retry" + std::to_string(attempt - 1);

    Future f = cluster->submit(
        std::move(attempt_name),
        [self = shared_from_this(), backoff_ms](WorkerCtx& ctx) {
          if (backoff_ms > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(backoff_ms));
          return self->fn(ctx);
        },
        deps, target, timeout_s);
    f.on_ready([self = shared_from_this()](const Future& done) {
      const Status s = done.wait_status();  // ready: does not block
      if (s.ok()) {
        self->outer.deliver(done.get_any());
      } else if (s.retryable() && self->attempt < self->policy.max_attempts) {
        self->launch();
      } else {
        self->outer.fail(std::make_exception_ptr(StatusError(s)));
      }
    });
  }
};

}  // namespace

Future Cluster::submit_retry(std::string name, TaskFn fn,
                             std::vector<Future> deps, int rank,
                             std::optional<RetryPolicy> policy,
                             double timeout_s) {
  if (!fn)
    throw std::invalid_argument("Cluster::submit_retry: null task function");
  auto job = std::make_shared<RetryJob>();
  job->cluster = this;
  job->name = std::move(name);
  job->fn = std::move(fn);
  job->deps = std::move(deps);
  job->rank = rank;
  job->policy = policy.value_or(options_.retry);
  job->timeout_s = timeout_s;
  job->outer.set_name(job->name);
  job->launch();
  return job->outer;
}

std::vector<Future> Cluster::map(const std::string& name, const TaskFn& fn) {
  std::vector<Future> futures;
  futures.reserve(static_cast<std::size_t>(world_size()));
  for (int r = 0; r < world_size(); ++r)
    futures.push_back(submit(name + ":" + std::to_string(r), fn, {}, r));
  return futures;
}

std::vector<std::any> Cluster::run_on_all(const std::string& name,
                                          const TaskFn& fn) {
  return gather(map(name, fn));
}

std::vector<Future> Cluster::scatter(std::vector<std::any> values) {
  if (values.size() != static_cast<std::size_t>(world_size()))
    throw std::invalid_argument(
        "Cluster::scatter: need exactly one value per worker");
  std::vector<Future> futures;
  futures.reserve(values.size());
  for (auto& v : values) futures.push_back(Future::immediate(std::move(v)));
  return futures;
}

std::vector<std::any> Cluster::gather(const std::vector<Future>& futures) {
  std::vector<std::any> out;
  out.reserve(futures.size());
  for (const auto& f : futures) out.push_back(f.get_any());
  return out;
}

Expected<std::vector<std::any>> Cluster::try_gather(
    const std::vector<Future>& futures) {
  std::vector<std::any> out;
  out.reserve(futures.size());
  for (const auto& f : futures) {
    const Status s = f.wait_status();
    if (!s.ok()) return s;
    out.push_back(f.get_any());
  }
  return out;
}

void Cluster::preempt_rank(int rank) {
  if (rank < 0 || rank >= world_size())
    throw std::out_of_range("Cluster::preempt_rank: rank " +
                            std::to_string(rank) + " out of range");
  std::lock_guard lock(ranks_mutex_);
  rank_up_[static_cast<std::size_t>(rank)] = 0;
}

void Cluster::restore_rank(int rank) {
  if (rank < 0 || rank >= world_size())
    throw std::out_of_range("Cluster::restore_rank: rank " +
                            std::to_string(rank) + " out of range");
  std::lock_guard lock(ranks_mutex_);
  rank_up_[static_cast<std::size_t>(rank)] = 1;
}

bool Cluster::rank_available(int rank) const {
  if (rank < 0 || rank >= world_size()) return false;
  std::lock_guard lock(ranks_mutex_);
  return rank_up_[static_cast<std::size_t>(rank)] != 0;
}

std::vector<int> Cluster::active_ranks() const {
  std::lock_guard lock(ranks_mutex_);
  std::vector<int> up;
  for (std::size_t r = 0; r < rank_up_.size(); ++r)
    if (rank_up_[r] != 0) up.push_back(static_cast<int>(r));
  return up;
}

void Cluster::wait_all() { scheduler_.wait_idle(); }

}  // namespace sagesim::dflow
