// Multi-GPU collectives over simulated devices — the gradient-aggregation
// layer of Algorithm 1 ("Aggregate gradients from all workers") and of the
// Week-10 DDP lab.  Data movement goes through DeviceManager::copy_peer or
// the ring-hop schedule, so simulated time reflects the collective's real
// communication pattern.
//
// Accumulation-order contract: every reduction folds contributions in
// ascending rank order (rank 0 + rank 1 + ... + rank k-1) regardless of the
// algorithm, the chunking, or how a caller splits one logical reduction into
// buckets.  Float addition is not associative, so this is what makes a
// bucketed ring bit-identical to a flat naive all-reduce — the contract the
// DDP bit-identity tests pin.
#pragma once

#include <cstddef>
#include <vector>

#include "gpusim/device_manager.hpp"

namespace sagesim::dflow {

/// One participant's view of a collective: its device ordinal, its device
/// buffer of @p count floats, the stream the collective occupies on that
/// device, and the earliest simulated time the data is valid (0 == already
/// valid at the stream cursor).
struct CollectiveBuffer {
  std::size_t device{0};
  float* data{nullptr};
  int stream{0};
  double ready_s{0.0};
};

/// Ring all-reduce (sum): reduce-scatter then all-gather, the standard
/// 2*(k-1)-step ring used by NCCL/DDP.  After the call every buffer holds
/// the element-wise sum, folded in ascending rank order (see the contract
/// above); the hop schedule — what each link carries at each step — is the
/// genuine ring, which is what the simulated clock charges.  Chunked so each
/// step moves ~count/k elements.  @p bucket tags the recorded trace events
/// (counter "bucket") when >= 0.  Throws std::invalid_argument for
/// mismatched/empty/duplicate-device inputs.
void ring_allreduce_sum(gpu::DeviceManager& devices,
                        const std::vector<CollectiveBuffer>& buffers,
                        std::size_t count, int bucket = -1);

/// Naive all-reduce baseline: gather everything to rank 0, reduce there,
/// broadcast back.  Same result bits (ascending fold), (2k - 2) full-size
/// transfers through one hot link — the ablation bench contrasts this with
/// the ring.
void naive_allreduce_sum(gpu::DeviceManager& devices,
                         const std::vector<CollectiveBuffer>& buffers,
                         std::size_t count, int bucket = -1);

/// In-place average after a sum all-reduce: divides by participant count on
/// each device (charged as a tiny device kernel on each buffer's stream).
void scale_buffers(gpu::DeviceManager& devices,
                   const std::vector<CollectiveBuffer>& buffers,
                   std::size_t count, float factor);

/// Broadcast @p count floats from buffers[root] to all other buffers.
void broadcast(gpu::DeviceManager& devices,
               const std::vector<CollectiveBuffer>& buffers,
               std::size_t count, std::size_t root = 0);

}  // namespace sagesim::dflow
