// Multi-GPU collectives over simulated devices — the gradient-aggregation
// layer of Algorithm 1 ("Aggregate gradients from all workers") and of the
// Week-10 DDP lab.  Data movement goes through DeviceManager::copy_peer, so
// simulated time reflects the collective's real communication pattern.
#pragma once

#include <cstddef>
#include <vector>

#include "gpusim/device_manager.hpp"

namespace sagesim::dflow {

/// One participant's view of a collective: its device ordinal and its device
/// buffer of @p count floats.
struct CollectiveBuffer {
  std::size_t device{0};
  float* data{nullptr};
};

/// Ring all-reduce (sum): reduce-scatter then all-gather, the standard
/// 2*(k-1)-step ring used by NCCL/DDP.  After the call every buffer holds
/// the element-wise sum.  Chunked so each step moves count/k elements.
/// Throws std::invalid_argument for mismatched/empty inputs.
void ring_allreduce_sum(gpu::DeviceManager& devices,
                        const std::vector<CollectiveBuffer>& buffers,
                        std::size_t count);

/// Naive all-reduce baseline: gather everything to rank 0, reduce there,
/// broadcast back.  Same result, (2k - 2) full-size transfers through one
/// hot link — the ablation bench contrasts this with the ring.
void naive_allreduce_sum(gpu::DeviceManager& devices,
                         const std::vector<CollectiveBuffer>& buffers,
                         std::size_t count);

/// In-place average after a sum all-reduce: divides by participant count on
/// each device (charged as a tiny device kernel).
void scale_buffers(gpu::DeviceManager& devices,
                   const std::vector<CollectiveBuffer>& buffers,
                   std::size_t count, float factor);

/// Broadcast @p count floats from buffers[root] to all other buffers.
void broadcast(gpu::DeviceManager& devices,
               const std::vector<CollectiveBuffer>& buffers,
               std::size_t count, std::size_t root = 0);

}  // namespace sagesim::dflow
