#include "dflow/collectives.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "gpusim/device.hpp"

namespace sagesim::dflow {

namespace {

void validate(const std::vector<CollectiveBuffer>& buffers,
              std::size_t count) {
  if (buffers.size() < 2)
    throw std::invalid_argument("collective: need at least 2 participants");
  if (count == 0) throw std::invalid_argument("collective: empty buffers");
  for (const auto& b : buffers)
    if (b.data == nullptr)
      throw std::invalid_argument("collective: null buffer");
}

/// Element-wise a += b on device @p dev, charged as a bandwidth-bound kernel.
void device_axpy(gpu::Device& dev, float* a, const float* b,
                 std::size_t count, const char* name) {
  dev.launch_linear(name, count, 256, [&](const gpu::ThreadCtx& ctx) {
    const std::uint64_t i = ctx.global_x();
    a[i] += b[i];
    ctx.add_flops(1.0);
    ctx.add_bytes(3.0 * sizeof(float));
  });
}

}  // namespace

void ring_allreduce_sum(gpu::DeviceManager& devices,
                        const std::vector<CollectiveBuffer>& buffers,
                        std::size_t count) {
  validate(buffers, count);
  const std::size_t k = buffers.size();

  // Chunk boundaries: chunk c covers [off[c], off[c+1]).
  std::vector<std::size_t> off(k + 1);
  for (std::size_t c = 0; c <= k; ++c) off[c] = c * count / k;

  // Per-device staging buffers sized for the largest chunk.
  std::size_t max_chunk = 0;
  for (std::size_t c = 0; c < k; ++c)
    max_chunk = std::max(max_chunk, off[c + 1] - off[c]);
  std::vector<gpu::DeviceBuffer<float>> staging;
  staging.reserve(k);
  for (const auto& b : buffers)
    staging.emplace_back(devices.device(b.device), max_chunk);

  // One ring transfer: data + simulated-time bookkeeping.  All transfers of
  // a round start at the same fence and overlap (each hop uses its own
  // point-to-point link), which is exactly why the ring is bandwidth-
  // optimal; DeviceManager::copy_peer would serialize them pairwise.
  struct Hop {
    std::size_t src_dev, dst_dev;
    const float* src;
    float* dst;
    std::size_t n;
  };
  auto run_round = [&](const std::vector<Hop>& hops) {
    double round_start = 0.0;
    for (const auto& h : hops) {
      round_start = std::max(round_start,
                             devices.device(h.src_dev).stream_time(0));
      round_start = std::max(round_start,
                             devices.device(h.dst_dev).stream_time(0));
    }
    for (const auto& h : hops) {
      if (h.n == 0) continue;
      std::memcpy(h.dst, h.src, h.n * sizeof(float));
      const double dur = devices.device(h.src_dev)
                             .timing()
                             .peer_transfer_seconds(h.n * sizeof(float));
      const gpu::Event fence{round_start + dur,
                             static_cast<int>(h.src_dev), 0};
      devices.device(h.src_dev).wait_event(0, fence);
      devices.device(h.dst_dev).wait_event(0, fence);

      prof::TraceEvent e;
      e.name = "ring_hop";
      e.kind = prof::EventKind::kMemcpyD2D;
      e.start_s = round_start;
      e.duration_s = dur;
      e.device = static_cast<int>(h.src_dev);
      e.stream = 0;
      e.counters["bytes"] = static_cast<double>(h.n * sizeof(float));
      e.counters["dst_device"] = static_cast<double>(h.dst_dev);
      devices.timeline().record(std::move(e));
    }
  };

  // Phase 1: reduce-scatter.  At step s, rank r sends chunk (r - s) mod k to
  // rank r+1, which accumulates it.
  for (std::size_t step = 0; step + 1 < k; ++step) {
    std::vector<Hop> hops;
    for (std::size_t r = 0; r < k; ++r) {
      const std::size_t send_chunk = (r + k - step) % k;
      const std::size_t dst = (r + 1) % k;
      const std::size_t n = off[send_chunk + 1] - off[send_chunk];
      hops.push_back({buffers[r].device, buffers[dst].device,
                      buffers[r].data + off[send_chunk], staging[dst].data(),
                      n});
    }
    run_round(hops);
    for (std::size_t r = 0; r < k; ++r) {
      const std::size_t send_chunk = (r + k - step) % k;
      const std::size_t dst = (r + 1) % k;
      const std::size_t n = off[send_chunk + 1] - off[send_chunk];
      if (n == 0) continue;
      device_axpy(devices.device(buffers[dst].device),
                  buffers[dst].data + off[send_chunk], staging[dst].data(), n,
                  "allreduce_accumulate");
    }
  }

  // Phase 2: all-gather.  Rank r owns the fully reduced chunk (r + 1) % k;
  // circulate the finished chunks around the ring.
  for (std::size_t step = 0; step + 1 < k; ++step) {
    std::vector<Hop> hops;
    for (std::size_t r = 0; r < k; ++r) {
      const std::size_t send_chunk = (r + 1 + k - step) % k;
      const std::size_t dst = (r + 1) % k;
      const std::size_t n = off[send_chunk + 1] - off[send_chunk];
      hops.push_back({buffers[r].device, buffers[dst].device,
                      buffers[r].data + off[send_chunk],
                      buffers[dst].data + off[send_chunk], n});
    }
    run_round(hops);
  }
}

void naive_allreduce_sum(gpu::DeviceManager& devices,
                         const std::vector<CollectiveBuffer>& buffers,
                         std::size_t count) {
  validate(buffers, count);
  const std::size_t k = buffers.size();
  const std::size_t root_dev = buffers[0].device;
  gpu::DeviceBuffer<float> staging(devices.device(root_dev), count);

  // Gather to rank 0 and reduce there.
  for (std::size_t r = 1; r < k; ++r) {
    devices.copy_peer(root_dev, staging.data(), buffers[r].device,
                      buffers[r].data, count * sizeof(float));
    device_axpy(devices.device(root_dev), buffers[0].data, staging.data(),
                count, "naive_reduce");
  }
  // Broadcast the result.
  broadcast(devices, buffers, count, 0);
}

void scale_buffers(gpu::DeviceManager& devices,
                   const std::vector<CollectiveBuffer>& buffers,
                   std::size_t count, float factor) {
  validate(buffers, count);
  for (const auto& b : buffers) {
    auto& dev = devices.device(b.device);
    dev.launch_linear("allreduce_scale", count, 256,
                      [&](const gpu::ThreadCtx& ctx) {
                        const std::uint64_t i = ctx.global_x();
                        b.data[i] *= factor;
                        ctx.add_flops(1.0);
                        ctx.add_bytes(2.0 * sizeof(float));
                      });
  }
}

void broadcast(gpu::DeviceManager& devices,
               const std::vector<CollectiveBuffer>& buffers,
               std::size_t count, std::size_t root) {
  validate(buffers, count);
  if (root >= buffers.size())
    throw std::out_of_range("broadcast: root " + std::to_string(root) +
                            " out of range");
  for (std::size_t r = 0; r < buffers.size(); ++r) {
    if (r == root) continue;
    devices.copy_peer(buffers[r].device, buffers[r].data,
                      buffers[root].device, buffers[root].data,
                      count * sizeof(float));
  }
}

}  // namespace sagesim::dflow
