#include "dflow/collectives.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "gpusim/device.hpp"

namespace sagesim::dflow {

namespace {

void validate(const std::vector<CollectiveBuffer>& buffers,
              std::size_t count) {
  if (buffers.size() < 2)
    throw std::invalid_argument("collective: need at least 2 participants");
  if (count == 0) throw std::invalid_argument("collective: empty buffers");
  for (const auto& b : buffers)
    if (b.data == nullptr)
      throw std::invalid_argument("collective: null buffer");
  // Duplicate devices would share staging and peer links; the reduction
  // result would silently double-count.
  std::vector<std::size_t> ids;
  ids.reserve(buffers.size());
  for (const auto& b : buffers) ids.push_back(b.device);
  std::sort(ids.begin(), ids.end());
  if (std::adjacent_find(ids.begin(), ids.end()) != ids.end())
    throw std::invalid_argument("collective: duplicate device ids");
}

/// Advances each participant's stream to its data-ready time, so no hop or
/// kernel of the collective can start before the inputs exist.
void apply_readiness(gpu::DeviceManager& devices,
                     const std::vector<CollectiveBuffer>& buffers) {
  for (const auto& b : buffers)
    if (b.ready_s > 0.0)
      devices.device(b.device).wait_event(
          b.stream,
          gpu::Event{b.ready_s, static_cast<int>(b.device), b.stream});
}

/// Chunk boundaries: chunk c covers [off[c], off[c+1]).  floor(c*count/k)
/// computed without the c*count intermediate, which overflows size_t for
/// large counts: c*count/k == c*(count/k) + c*(count%k)/k exactly, because
/// the first term is already an integer.
std::vector<std::size_t> chunk_offsets(std::size_t count, std::size_t k) {
  std::vector<std::size_t> off(k + 1);
  for (std::size_t c = 0; c <= k; ++c)
    off[c] = c * (count / k) + (c * (count % k)) / k;
  return off;
}

/// Element-wise a += b on device @p dev, charged as a bandwidth-bound kernel.
void device_axpy(gpu::Device& dev, float* a, const float* b,
                 std::size_t count, const char* name, int stream) {
  gpu::LaunchOptions opts;
  opts.stream = stream;
  dev.launch_linear(
      name, count, 256,
      [&](const gpu::ThreadCtx& ctx) {
        const std::uint64_t i = ctx.global_x();
        a[i] += b[i];
        ctx.add_flops(1.0);
        ctx.add_bytes(3.0 * sizeof(float));
      },
      opts);
}

}  // namespace

void ring_allreduce_sum(gpu::DeviceManager& devices,
                        const std::vector<CollectiveBuffer>& buffers,
                        std::size_t count, int bucket) {
  validate(buffers, count);
  apply_readiness(devices, buffers);
  const std::size_t k = buffers.size();
  const std::vector<std::size_t> off = chunk_offsets(count, k);

  // Per-device staging buffers sized for the largest chunk.
  std::size_t max_chunk = 0;
  for (std::size_t c = 0; c < k; ++c)
    max_chunk = std::max(max_chunk, off[c + 1] - off[c]);
  std::vector<gpu::DeviceBuffer<float>> staging;
  staging.reserve(k);
  for (const auto& b : buffers)
    staging.emplace_back(devices.device(b.device), max_chunk);

  // Canonical partial sums.  The wire schedule below is the genuine ring —
  // it decides what the simulated clock charges — but the *values* fold in
  // ascending rank order into this scratch, so the result bits do not depend
  // on which rank a chunk happens to visit first (the ring's rotated visit
  // order would make chunk c fold starting at rank c).  Kernels execute on
  // the host anyway; only explicit transfers model data locality, and the
  // hop schedule charges exactly the transfers a real ring performs.
  std::vector<float> partial(count);
  std::copy(buffers[0].data, buffers[0].data + count, partial.begin());

  // One ring transfer: data + simulated-time bookkeeping.  All transfers of
  // a round start at the same fence and overlap (each hop uses its own
  // point-to-point link), which is exactly why the ring is bandwidth-
  // optimal; DeviceManager::copy_peer would serialize them pairwise.
  struct Hop {
    std::size_t src_rank, dst_rank;
    const float* src;
    float* dst;
    std::size_t n;
  };
  auto run_round = [&](const std::vector<Hop>& hops) {
    double round_start = 0.0;
    for (const auto& h : hops) {
      const auto& sb = buffers[h.src_rank];
      const auto& db = buffers[h.dst_rank];
      round_start = std::max(
          round_start, devices.device(sb.device).stream_time(sb.stream));
      round_start = std::max(
          round_start, devices.device(db.device).stream_time(db.stream));
    }
    for (const auto& h : hops) {
      if (h.n == 0) continue;
      const auto& sb = buffers[h.src_rank];
      const auto& db = buffers[h.dst_rank];
      std::memcpy(h.dst, h.src, h.n * sizeof(float));
      const double dur = devices.device(sb.device)
                             .timing()
                             .peer_transfer_seconds(h.n * sizeof(float));
      const gpu::Event fence{round_start + dur, static_cast<int>(sb.device),
                             sb.stream};
      devices.device(sb.device).wait_event(sb.stream, fence);
      devices.device(db.device).wait_event(db.stream, fence);

      prof::TraceEvent e;
      e.name = "ring_hop";
      e.kind = prof::EventKind::kMemcpyD2D;
      e.start_s = round_start;
      e.duration_s = dur;
      e.device = static_cast<int>(sb.device);
      e.stream = sb.stream;
      e.counters["bytes"] = static_cast<double>(h.n * sizeof(float));
      e.counters["dst_device"] = static_cast<double>(db.device);
      e.counters["comm"] = 1.0;
      if (bucket >= 0) e.counters["bucket"] = static_cast<double>(bucket);
      devices.timeline().record(std::move(e));
    }
  };

  // Phase 1: reduce-scatter.  At step s, rank r sends chunk (r - s) mod k to
  // rank r+1, which accumulates one more contribution into it.  The wire
  // carries the rotated partials; the accumulate kernel folds rank s+1's
  // contribution (the ascending-order one) into the canonical scratch, with
  // the same element count, flops and bytes the in-place fold would charge.
  for (std::size_t step = 0; step + 1 < k; ++step) {
    std::vector<Hop> hops;
    for (std::size_t r = 0; r < k; ++r) {
      const std::size_t send_chunk = (r + k - step) % k;
      const std::size_t dst = (r + 1) % k;
      const std::size_t n = off[send_chunk + 1] - off[send_chunk];
      hops.push_back({r, dst, buffers[r].data + off[send_chunk],
                      staging[dst].data(), n});
    }
    run_round(hops);
    for (std::size_t r = 0; r < k; ++r) {
      const std::size_t send_chunk = (r + k - step) % k;
      const std::size_t dst = (r + 1) % k;
      const std::size_t n = off[send_chunk + 1] - off[send_chunk];
      if (n == 0) continue;
      float* acc = partial.data() + off[send_chunk];
      const float* contrib = buffers[step + 1].data + off[send_chunk];
      device_axpy(devices.device(buffers[dst].device), acc, contrib, n,
                  "allreduce_accumulate", buffers[dst].stream);
    }
  }

  // Every buffer takes the canonically folded sums; the all-gather below
  // decides *when* each rank's copy becomes valid on the simulated clock.
  for (const auto& b : buffers)
    std::copy(partial.begin(), partial.end(), b.data);

  // Phase 2: all-gather.  Rank r owns the fully reduced chunk (r + 1) % k;
  // circulate the finished chunks around the ring.
  for (std::size_t step = 0; step + 1 < k; ++step) {
    std::vector<Hop> hops;
    for (std::size_t r = 0; r < k; ++r) {
      const std::size_t send_chunk = (r + 1 + k - step) % k;
      const std::size_t dst = (r + 1) % k;
      const std::size_t n = off[send_chunk + 1] - off[send_chunk];
      hops.push_back({r, dst, buffers[r].data + off[send_chunk],
                      buffers[dst].data + off[send_chunk], n});
    }
    run_round(hops);
  }
}

void naive_allreduce_sum(gpu::DeviceManager& devices,
                         const std::vector<CollectiveBuffer>& buffers,
                         std::size_t count, int bucket) {
  (void)bucket;
  validate(buffers, count);
  apply_readiness(devices, buffers);
  const std::size_t k = buffers.size();
  const std::size_t root_dev = buffers[0].device;
  gpu::DeviceBuffer<float> staging(devices.device(root_dev), count);

  // Gather to rank 0 and reduce there (ascending rank order).
  for (std::size_t r = 1; r < k; ++r) {
    devices.copy_peer(root_dev, staging.data(), buffers[r].device,
                      buffers[r].data, count * sizeof(float),
                      buffers[0].stream, buffers[r].stream);
    device_axpy(devices.device(root_dev), buffers[0].data, staging.data(),
                count, "naive_reduce", buffers[0].stream);
  }
  // Broadcast the result.
  broadcast(devices, buffers, count, 0);
}

void scale_buffers(gpu::DeviceManager& devices,
                   const std::vector<CollectiveBuffer>& buffers,
                   std::size_t count, float factor) {
  validate(buffers, count);
  for (const auto& b : buffers) {
    auto& dev = devices.device(b.device);
    gpu::LaunchOptions opts;
    opts.stream = b.stream;
    dev.launch_linear(
        "allreduce_scale", count, 256,
        [&](const gpu::ThreadCtx& ctx) {
          const std::uint64_t i = ctx.global_x();
          b.data[i] *= factor;
          ctx.add_flops(1.0);
          ctx.add_bytes(2.0 * sizeof(float));
        },
        opts);
  }
}

void broadcast(gpu::DeviceManager& devices,
               const std::vector<CollectiveBuffer>& buffers,
               std::size_t count, std::size_t root) {
  validate(buffers, count);
  if (root >= buffers.size())
    throw std::out_of_range("broadcast: root " + std::to_string(root) +
                            " out of range");
  for (std::size_t r = 0; r < buffers.size(); ++r) {
    if (r == root) continue;
    devices.copy_peer(buffers[r].device, buffers[r].data,
                      buffers[root].device, buffers[root].data,
                      count * sizeof(float), buffers[r].stream,
                      buffers[root].stream);
  }
}

}  // namespace sagesim::dflow
