#include "dflow/future.hpp"

// dflow::Future is an alias of runtime::AnyFuture (see runtime/future.hpp);
// this TU anchors the library target and keeps the header compiling
// standalone.
