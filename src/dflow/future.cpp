#include "dflow/future.hpp"

// Header-only today; this TU anchors the library target and keeps the header
// compiling standalone.
