// Futures for the dflow scheduler — dask.distributed.Future analogue.
// Values are type-erased (std::any); typed access goes through get<T>().
#pragma once

#include <any>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

namespace sagesim::dflow {

namespace detail {

struct FutureState {
  std::mutex mutex;
  std::condition_variable cv;
  bool ready{false};
  std::any value;
  std::exception_ptr error;
  std::string name;
};

}  // namespace detail

/// Shared handle to a task's eventual result.  Copyable; all copies observe
/// the same completion.
class Future {
 public:
  Future() : state_(std::make_shared<detail::FutureState>()) {}
  explicit Future(std::shared_ptr<detail::FutureState> state)
      : state_(std::move(state)) {}

  /// Task display name (empty for immediate futures).
  const std::string& name() const { return state_->name; }

  /// True once a value or error has been delivered.
  bool ready() const {
    std::lock_guard lock(state_->mutex);
    return state_->ready;
  }

  /// Blocks until completion; rethrows the task's exception if it failed.
  void wait() const {
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->ready; });
    if (state_->error) std::rethrow_exception(state_->error);
  }

  /// Blocks and returns the value as T.  Throws std::bad_any_cast on type
  /// mismatch and rethrows task failures.
  template <typename T>
  T get() const {
    wait();
    std::lock_guard lock(state_->mutex);
    return std::any_cast<T>(state_->value);
  }

  /// Blocks and returns the raw type-erased value.
  std::any get_any() const {
    wait();
    std::lock_guard lock(state_->mutex);
    return state_->value;
  }

  /// Creates an already-completed future holding @p value.
  static Future immediate(std::any value) {
    Future f;
    f.deliver(std::move(value));
    return f;
  }

  // --- producer side (used by the scheduler) ---

  void deliver(std::any value) {
    {
      std::lock_guard lock(state_->mutex);
      if (state_->ready)
        throw std::logic_error("Future: value delivered twice");
      state_->value = std::move(value);
      state_->ready = true;
    }
    state_->cv.notify_all();
  }

  void fail(std::exception_ptr error) {
    {
      std::lock_guard lock(state_->mutex);
      if (state_->ready) throw std::logic_error("Future: completed twice");
      state_->error = std::move(error);
      state_->ready = true;
    }
    state_->cv.notify_all();
  }

  void set_name(std::string name) { state_->name = std::move(name); }

 private:
  std::shared_ptr<detail::FutureState> state_;
};

}  // namespace sagesim::dflow
