// Futures for the dflow scheduler — dask.distributed.Future analogue.
//
// Since the runtime unification this is an alias of the runtime's
// type-erased future: same shared state, same producer API
// (deliver/fail/immediate), same typed access through result<T>().  Anything
// that holds a dflow::Future can hand it straight to runtime::Scheduler as
// a dependency, and vice versa.
#pragma once

#include "runtime/future.hpp"

namespace sagesim::dflow {

using Future = runtime::AnyFuture;

}  // namespace sagesim::dflow
