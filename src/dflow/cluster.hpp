// The dflow Cluster: a Dask-distributed-like scheduler whose workers are
// pinned one-per-simulated-GPU, exactly how the course configures Dask-CUDA
// ("Initialize Dask cluster; assign each worker to a GPU" — Algorithm 1,
// line 4).
//
// Capabilities used by the labs:
//  * submit(fn, deps)     — task-graph execution with dependencies
//  * map(fns)             — fan-out over workers
//  * run_on_all(fn)       — SPMD step on every worker (DDP-style)
//  * scatter/gather       — data placement helpers
//
// Execution rides the unified task-graph runtime (src/runtime): the cluster
// owns a runtime::Scheduler with one worker lane per device.  Tasks
// submitted with an explicit rank are pinned to that lane (device
// affinity); tasks submitted with rank < 0 go into the shared stealable
// pool, so a rank stuck on a long task no longer strands work that used to
// be round-robin-assigned to it — an idle rank steals it.
#pragma once

#include <any>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dflow/future.hpp"
#include "gpusim/device_manager.hpp"
#include "runtime/job_control.hpp"
#include "runtime/scheduler.hpp"

namespace sagesim::dflow {

/// Execution context a task receives: its worker rank and that worker's
/// simulated GPU.  For unpinned (stealable) tasks, the rank is whichever
/// worker picked the task up.
struct WorkerCtx {
  int rank{0};
  int world_size{1};
  gpu::Device* device{nullptr};
};

using TaskFn = std::function<std::any(WorkerCtx&)>;

/// Exponential-backoff retry schedule for retryable failures (preemption,
/// missed deadlines, unavailable ranks).  Attempt n >= 2 sleeps
/// initial_backoff_ms * multiplier^(n-2), capped at max_backoff_ms, before
/// re-running the task body.
struct RetryPolicy {
  int max_attempts{3};
  double initial_backoff_ms{1.0};
  double multiplier{2.0};
  double max_backoff_ms{50.0};
};

/// Binding of cluster ranks to control-plane capacity: rank r runs on
/// leased instance instance_ids[r].  Clusters used to launch (implicitly
/// own) their capacity; under the multi-tenant control plane
/// (sched::ClusterManager) they *acquire* it as a lease instead — the
/// manager decides placement, bills the tenant, and reclaims the instances
/// when the job ends or is preempted.
struct LeaseBinding {
  std::string lease_id;
  std::vector<std::string> instance_ids;  ///< index == rank
};

/// Aggregate cluster configuration (satellite of the fault-tolerance API):
/// one struct instead of a parade of constructor arguments.
struct ClusterOptions {
  /// When set, the cluster seeds a runtime::FaultInjector with this config
  /// and attaches it to its scheduler; every submit then draws a fault plan.
  std::optional<runtime::FaultConfig> faults;
  /// Deadline applied to every submit that does not pass its own timeout;
  /// 0 == no deadline.
  double default_timeout_s{0.0};
  /// Policy used by submit_retry when the caller does not pass one.
  RetryPolicy retry;
  /// Control-plane lease backing this cluster's ranks (instance_ids.size()
  /// must equal the device count when set).
  std::optional<LeaseBinding> lease;
  /// Job-level control: when set, every submit is attached for group
  /// cancellation, the job deadline tightens per-task timeouts, and submits
  /// after cancel() fail immediately with kCancelled.  Non-owning; must
  /// outlive the cluster.
  runtime::JobControl* control{nullptr};
};

class Cluster {
 public:
  /// One worker lane per device in @p devices.  The cluster borrows the
  /// manager; it must outlive the cluster.
  explicit Cluster(gpu::DeviceManager& devices);
  Cluster(gpu::DeviceManager& devices, ClusterOptions options);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int world_size() const {
    return static_cast<int>(scheduler_.worker_count());
  }
  gpu::DeviceManager& devices() { return devices_; }

  /// Submits a task.  It runs once every dependency has completed, on
  /// @p rank (or any idle worker when rank < 0 — the stealable pool).
  /// Dependency *failures* propagate: the task fails without running.
  /// Submitting pinned work to a preempted rank returns a future already
  /// failed with kUnavailable (retryable) — the spot-instance contract.
  Future submit(std::string name, TaskFn fn, std::vector<Future> deps = {},
                int rank = -1, double timeout_s = 0.0);

  /// submit + automatic retry: retryable failures (preemption, deadline,
  /// unavailable rank) re-run the body under @p policy's backoff schedule.
  /// A retry whose pinned rank is down degrades to the stealable pool, so
  /// work migrates off reclaimed capacity instead of waiting for it.  The
  /// returned future completes with the first success or the last failure.
  Future submit_retry(std::string name, TaskFn fn,
                      std::vector<Future> deps = {}, int rank = -1,
                      std::optional<RetryPolicy> policy = std::nullopt,
                      double timeout_s = 0.0);

  /// Submits one task per worker rank; returns the futures in rank order.
  std::vector<Future> map(const std::string& name, const TaskFn& fn);

  /// SPMD helper: runs @p fn on every worker concurrently and waits for all;
  /// rethrows the first failure.  Returns per-rank results.
  std::vector<std::any> run_on_all(const std::string& name, const TaskFn& fn);

  /// Places one value per rank (scatter).  Values are moved into immediate
  /// futures tagged to each rank for later pinned tasks.
  std::vector<Future> scatter(std::vector<std::any> values);

  /// Waits for @p futures and collects their values.
  std::vector<std::any> gather(const std::vector<Future>& futures);

  /// gather with failures as values: the first non-ok outcome (in input
  /// order) is returned as its Status instead of being rethrown.
  Expected<std::vector<std::any>> try_gather(
      const std::vector<Future>& futures);

  // --- elasticity: spot-style rank loss and re-acquisition ---------------

  /// Marks @p rank's simulated instance as reclaimed.  Already-running work
  /// finishes (the grace window); *new* pinned submits to the rank fail
  /// immediately with kUnavailable until restore_rank.  Out-of-range ranks
  /// throw (API misuse).
  void preempt_rank(int rank);

  /// Brings a reclaimed rank back (re-acquired capacity rejoining).
  void restore_rank(int rank);

  /// True when the rank currently holds capacity.
  bool rank_available(int rank) const;

  /// Ranks currently up, ascending.  Shrinks under preemption; the elastic
  /// layers (ddp, distributed GCN) re-shard over exactly this set.
  std::vector<int> active_ranks() const;
  int active_world_size() const {
    return static_cast<int>(active_ranks().size());
  }

  /// Blocks until every submitted task has finished.
  void wait_all();

  /// Number of tasks that reached a terminal state (ran, failed, or was
  /// skipped by a failed dependency).
  std::size_t completed_tasks() const { return scheduler_.tasks_completed(); }

  /// The cluster's underlying task-graph scheduler (rank == lane).
  runtime::Scheduler& scheduler() { return scheduler_; }

  const ClusterOptions& options() const { return options_; }

  /// The control-plane lease backing this cluster, if any.
  const std::optional<LeaseBinding>& lease() const { return options_.lease; }

  /// Leased instance id behind @p rank; throws std::logic_error when the
  /// cluster holds no lease, std::out_of_range for a bad rank.
  const std::string& instance_id(int rank) const;

  /// Job control routed through submits, or nullptr.
  runtime::JobControl* control() const { return options_.control; }

  /// The injector seeded from options().faults, or nullptr.
  std::shared_ptr<runtime::FaultInjector> fault_injector() const {
    return scheduler_.fault_injector();
  }

 private:
  gpu::DeviceManager& devices_;
  ClusterOptions options_;
  runtime::Scheduler scheduler_;
  mutable std::mutex ranks_mutex_;
  std::vector<char> rank_up_;  ///< guarded by ranks_mutex_
};

}  // namespace sagesim::dflow
