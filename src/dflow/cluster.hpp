// The dflow Cluster: a Dask-distributed-like scheduler whose workers are
// pinned one-per-simulated-GPU, exactly how the course configures Dask-CUDA
// ("Initialize Dask cluster; assign each worker to a GPU" — Algorithm 1,
// line 4).
//
// Capabilities used by the labs:
//  * submit(fn, deps)     — task-graph execution with dependencies
//  * map(fns)             — fan-out over workers
//  * run_on_all(fn)       — SPMD step on every worker (DDP-style)
//  * scatter/gather       — data placement helpers
//
// Execution rides the unified task-graph runtime (src/runtime): the cluster
// owns a runtime::Scheduler with one worker lane per device.  Tasks
// submitted with an explicit rank are pinned to that lane (device
// affinity); tasks submitted with rank < 0 go into the shared stealable
// pool, so a rank stuck on a long task no longer strands work that used to
// be round-robin-assigned to it — an idle rank steals it.
#pragma once

#include <any>
#include <functional>
#include <string>
#include <vector>

#include "dflow/future.hpp"
#include "gpusim/device_manager.hpp"
#include "runtime/scheduler.hpp"

namespace sagesim::dflow {

/// Execution context a task receives: its worker rank and that worker's
/// simulated GPU.  For unpinned (stealable) tasks, the rank is whichever
/// worker picked the task up.
struct WorkerCtx {
  int rank{0};
  int world_size{1};
  gpu::Device* device{nullptr};
};

using TaskFn = std::function<std::any(WorkerCtx&)>;

class Cluster {
 public:
  /// One worker lane per device in @p devices.  The cluster borrows the
  /// manager; it must outlive the cluster.
  explicit Cluster(gpu::DeviceManager& devices);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int world_size() const {
    return static_cast<int>(scheduler_.worker_count());
  }
  gpu::DeviceManager& devices() { return devices_; }

  /// Submits a task.  It runs once every dependency has completed, on
  /// @p rank (or any idle worker when rank < 0 — the stealable pool).
  /// Dependency *failures* propagate: the task fails without running.
  Future submit(std::string name, TaskFn fn, std::vector<Future> deps = {},
                int rank = -1);

  /// Submits one task per worker rank; returns the futures in rank order.
  std::vector<Future> map(const std::string& name, const TaskFn& fn);

  /// SPMD helper: runs @p fn on every worker concurrently and waits for all;
  /// rethrows the first failure.  Returns per-rank results.
  std::vector<std::any> run_on_all(const std::string& name, const TaskFn& fn);

  /// Places one value per rank (scatter).  Values are moved into immediate
  /// futures tagged to each rank for later pinned tasks.
  std::vector<Future> scatter(std::vector<std::any> values);

  /// Waits for @p futures and collects their values.
  std::vector<std::any> gather(const std::vector<Future>& futures);

  /// Blocks until every submitted task has finished.
  void wait_all();

  /// Number of tasks that reached a terminal state (ran, failed, or was
  /// skipped by a failed dependency).
  std::size_t completed_tasks() const { return scheduler_.tasks_completed(); }

  /// The cluster's underlying task-graph scheduler (rank == lane).
  runtime::Scheduler& scheduler() { return scheduler_; }

 private:
  gpu::DeviceManager& devices_;
  runtime::Scheduler scheduler_;
};

}  // namespace sagesim::dflow
