// The dflow Cluster: a Dask-distributed-like scheduler whose workers are
// pinned one-per-simulated-GPU, exactly how the course configures Dask-CUDA
// ("Initialize Dask cluster; assign each worker to a GPU" — Algorithm 1,
// line 4).
//
// Capabilities used by the labs:
//  * submit(fn, deps)     — task-graph execution with dependencies
//  * map(fns)             — fan-out over workers
//  * run_on_all(fn)       — SPMD step on every worker (DDP-style)
//  * scatter/gather       — data placement helpers
#pragma once

#include <any>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dflow/future.hpp"
#include "gpusim/device_manager.hpp"

namespace sagesim::dflow {

/// Execution context a task receives: its worker rank and that worker's
/// simulated GPU.
struct WorkerCtx {
  int rank{0};
  int world_size{1};
  gpu::Device* device{nullptr};
};

using TaskFn = std::function<std::any(WorkerCtx&)>;

class Cluster {
 public:
  /// One worker thread per device in @p devices.  The cluster borrows the
  /// manager; it must outlive the cluster.
  explicit Cluster(gpu::DeviceManager& devices);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int world_size() const { return static_cast<int>(workers_.size()); }
  gpu::DeviceManager& devices() { return devices_; }

  /// Submits a task.  It runs once every dependency has completed, on
  /// @p rank (or a round-robin-chosen worker when rank < 0).  Dependency
  /// *failures* propagate: the task fails without running.
  Future submit(std::string name, TaskFn fn, std::vector<Future> deps = {},
                int rank = -1);

  /// Submits one task per worker rank; returns the futures in rank order.
  std::vector<Future> map(const std::string& name, const TaskFn& fn);

  /// SPMD helper: runs @p fn on every worker concurrently and waits for all;
  /// rethrows the first failure.  Returns per-rank results.
  std::vector<std::any> run_on_all(const std::string& name, const TaskFn& fn);

  /// Places one value per rank (scatter).  Values are moved into immediate
  /// futures tagged to each rank for later pinned tasks.
  std::vector<Future> scatter(std::vector<std::any> values);

  /// Waits for @p futures and collects their values.
  std::vector<std::any> gather(const std::vector<Future>& futures);

  /// Blocks until every submitted task has finished.
  void wait_all();

  /// Number of tasks executed so far.
  std::size_t completed_tasks() const { return completed_.load(); }

 private:
  struct TaskNode;
  void worker_loop(int rank);

  gpu::DeviceManager& devices_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::vector<std::deque<std::shared_ptr<TaskNode>>> queues_;  // per rank
  bool stop_{false};
  std::size_t pending_{0};  // submitted but not finished
  std::atomic<std::size_t> completed_{0};
  int next_rank_{0};
};

}  // namespace sagesim::dflow
