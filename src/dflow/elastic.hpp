// Spot-market -> cluster-membership binding: folds a SpotFleet event stream
// into dflow::Cluster rank availability.  Slot i backs rank i.
//
//  * kNoticed    — the grace window: running work may finish, nothing is
//                  killed yet (callers can use the warning to checkpoint);
//  * kReclaimed  — preempt_rank: new pinned submits fail retryably, retries
//                  degrade to surviving ranks;
//  * kHeld       — restore_rank: re-acquired capacity rejoins the world.
//
// Header-only so dflow carries no cloudsim link dependency; only programs
// that simulate a spot market include this.
#pragma once

#include <vector>

#include "cloudsim/spot.hpp"
#include "dflow/cluster.hpp"

namespace sagesim::dflow {

/// Applies @p events (ordered, from cloud::SpotFleet::advance) to
/// @p cluster.  Events for slots outside the cluster's world are ignored —
/// the fleet may be larger than the training job.  Returns the number of
/// rank state changes applied.
inline int apply_spot_events(Cluster& cluster,
                             const std::vector<cloud::SpotEvent>& events) {
  int applied = 0;
  for (const auto& ev : events) {
    if (ev.slot < 0 || ev.slot >= cluster.world_size()) continue;
    switch (ev.state) {
      case cloud::SpotSlotState::kNoticed:
        break;  // grace window: membership unchanged
      case cloud::SpotSlotState::kReclaimed:
        cluster.preempt_rank(ev.slot);
        ++applied;
        break;
      case cloud::SpotSlotState::kHeld:
        cluster.restore_rank(ev.slot);
        ++applied;
        break;
    }
  }
  return applied;
}

}  // namespace sagesim::dflow
