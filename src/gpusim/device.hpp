// A simulated CUDA device: memory, streams, kernel launches, transfers.
//
// Results are bit-real (kernels execute on the host); time is modeled (see
// timing.hpp) and recorded into a prof::Timeline so the course's profiling
// workflow — launch, trace, read the timeline, find the bottleneck — works
// unchanged.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/stream.hpp"
#include "gpusim/timing.hpp"
#include "prof/trace.hpp"

namespace sagesim::gpu {

class Device {
 public:
  /// @param ordinal   device index as seen by the application
  /// @param spec      hardware model
  /// @param timeline  shared trace sink (one per simulation run)
  /// @param executor  host thread pool; defaults to the shared pool
  Device(int ordinal, DeviceSpec spec,
         std::shared_ptr<prof::Timeline> timeline,
         Executor* executor = &Executor::shared());

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  int ordinal() const { return ordinal_; }
  const DeviceSpec& spec() const { return timing_.spec(); }
  const TimingModel& timing() const { return timing_; }
  DeviceMemory& memory() { return memory_; }
  const DeviceMemory& memory() const { return memory_; }
  prof::Timeline& timeline() { return *timeline_; }
  std::shared_ptr<prof::Timeline> timeline_ptr() const { return timeline_; }

  // --- streams & events -------------------------------------------------

  /// Creates a new stream and returns its ordinal (stream 0 always exists).
  int create_stream();

  /// Ordinal of the dedicated communication stream (collectives overlap
  /// compute on stream 0), created lazily on first use.  Comm work enqueued
  /// here advances concurrently with stream 0 and is fenced back explicitly
  /// by the caller (e.g. GradientSynchronizer::sync()).
  int comm_stream();

  /// Number of streams (>= 1).
  std::size_t stream_count() const;

  /// Simulated-time cursor of @p stream.  Throws std::out_of_range for
  /// unknown streams.
  double stream_time(int stream) const;

  /// Records an event at the current cursor of @p stream.
  Event record_event(int stream = 0);

  /// Makes @p stream wait for @p event (cross-stream ordering).
  void wait_event(int stream, const Event& event);

  /// Waits for all streams; returns the simulated completion time.
  double synchronize();

  // --- memory -----------------------------------------------------------

  /// cudaMalloc analogue.  Charges API overhead to simulated time.
  void* device_malloc(std::size_t bytes);

  /// cudaFree analogue.
  void device_free(void* ptr);

  /// Host-to-device copy; @p dst must be device memory of this device.
  /// Charges modeled PCIe time to @p stream; @p pinned selects pinned vs
  /// pageable host-memory bandwidth.  Host memory is pageable unless the
  /// caller explicitly pinned it (mem::Buffer::host_pinned), so pageable
  /// is the default — mirroring cudaMemcpy from a plain malloc.
  void copy_h2d(void* dst, const void* src, std::size_t bytes, int stream = 0,
                bool pinned = false);

  /// Device-to-host copy; @p src must be device memory of this device.
  void copy_d2h(void* dst, const void* src, std::size_t bytes, int stream = 0,
                bool pinned = false);

  /// Device-to-device copy within this device (bandwidth-priced, not PCIe).
  void copy_d2d(void* dst, const void* src, std::size_t bytes, int stream = 0);

  // --- kernel launches ----------------------------------------------------

  /// Launches a per-thread kernel over grid x block.  Validates the launch
  /// configuration, executes blocks in parallel on the host pool, models the
  /// duration from reported counters, and records a kernel trace event.
  LaunchResult launch(const std::string& name, Dim3 grid, Dim3 block,
                      const ThreadKernel& kernel, LaunchOptions opts = {});

  /// Launches a per-block kernel (shared-memory algorithms).
  LaunchResult launch_blocks(const std::string& name, Dim3 grid, Dim3 block,
                             const BlockKernel& kernel,
                             LaunchOptions opts = {});

  /// Convenience 1-D launch covering @p n elements with @p block_size
  /// threads per block.
  LaunchResult launch_linear(const std::string& name, std::uint64_t n,
                             std::uint32_t block_size,
                             const ThreadKernel& kernel,
                             LaunchOptions opts = {});

  /// Advances simulated time on @p stream by a known-cost operation and
  /// records it (used to model library calls with analytic costs).
  void charge(const std::string& name, prof::EventKind kind,
              double duration_s, int stream = 0,
              std::map<std::string, double> counters = {});

 private:
  void validate_launch(const Dim3& grid, const Dim3& block,
                       const LaunchOptions& opts) const;
  Stream& stream_at(int stream);
  const Stream& stream_at(int stream) const;
  LaunchResult finish_launch(const std::string& name, const Dim3& grid,
                             const Dim3& block, const LaunchOptions& opts,
                             const WorkCounters& totals,
                             const WarpStats* warp);

  const int ordinal_;
  TimingModel timing_;
  DeviceMemory memory_;
  std::shared_ptr<prof::Timeline> timeline_;
  Executor* executor_;
  mutable std::mutex mutex_;  // guards streams_ and comm_stream_
  std::vector<Stream> streams_;
  int comm_stream_{-1};
};

/// Typed RAII handle over a device allocation (thrust::device_vector-lite).
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  /// Allocates @p count elements on @p device.
  DeviceBuffer(Device& device, std::size_t count)
      : device_(&device),
        count_(count),
        data_(static_cast<T*>(device.device_malloc(count * sizeof(T)))) {}

  DeviceBuffer(DeviceBuffer&& other) noexcept { swap(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  ~DeviceBuffer() { release(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return count_; }
  std::size_t bytes() const { return count_ * sizeof(T); }
  bool empty() const { return count_ == 0; }
  Device* device() const { return device_; }

  /// Copies @p host into the buffer (sizes must match exactly).
  void upload(std::span<const T> host, int stream = 0) {
    if (host.size() != count_)
      throw std::invalid_argument("DeviceBuffer::upload: size mismatch");
    device_->copy_h2d(data_, host.data(), bytes(), stream);
  }

  /// Copies the buffer into @p host (sizes must match exactly).
  void download(std::span<T> host, int stream = 0) const {
    if (host.size() != count_)
      throw std::invalid_argument("DeviceBuffer::download: size mismatch");
    device_->copy_d2h(host.data(), data_, bytes(), stream);
  }

  /// Downloads into a fresh vector.
  std::vector<T> to_host(int stream = 0) const {
    std::vector<T> out(count_);
    download(std::span<T>(out), stream);
    return out;
  }

 private:
  void release() {
    if (device_ != nullptr && data_ != nullptr) device_->device_free(data_);
    device_ = nullptr;
    data_ = nullptr;
    count_ = 0;
  }
  void swap(DeviceBuffer& other) noexcept {
    std::swap(device_, other.device_);
    std::swap(count_, other.count_);
    std::swap(data_, other.data_);
  }

  Device* device_{nullptr};
  std::size_t count_{0};
  T* data_{nullptr};
};

/// Allocates a DeviceBuffer<T> and uploads @p host into it.
template <typename T>
DeviceBuffer<T> make_buffer(Device& device, std::span<const T> host,
                            int stream = 0) {
  DeviceBuffer<T> buf(device, host.size());
  buf.upload(host, stream);
  return buf;
}

}  // namespace sagesim::gpu
