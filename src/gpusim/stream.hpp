// Streams and events on a simulated device.
//
// Host execution of kernels is synchronous (results are computed before the
// launch call returns), but *simulated time* follows CUDA stream semantics:
// each stream owns a cursor; operations enqueue back-to-back on their
// stream, streams advance independently, and events provide cross-stream
// ordering.  Device::synchronize() returns the max cursor — the point at
// which every queued operation has retired.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sagesim::gpu {

/// A recorded point in a stream's simulated time (cudaEvent analogue).
struct Event {
  double time_s{0.0};
  int device{-1};
  int stream{-1};
};

/// Simulated-time cursor for one stream.  Managed by Device; not used
/// directly by application code.
class Stream {
 public:
  explicit Stream(int ordinal) : ordinal_(ordinal) {}

  int ordinal() const { return ordinal_; }
  double cursor_s() const { return cursor_s_; }

  /// Reserves [cursor, cursor+duration) on this stream and returns the start
  /// timestamp.  Optionally delayed to start no earlier than @p not_before.
  double enqueue(double duration_s, double not_before_s = 0.0) {
    const double start = cursor_s_ > not_before_s ? cursor_s_ : not_before_s;
    cursor_s_ = start + duration_s;
    return start;
  }

  /// Cross-stream wait: nothing later on this stream starts before @p t.
  void wait_until(double t) {
    if (t > cursor_s_) cursor_s_ = t;
  }

 private:
  int ordinal_;
  double cursor_s_{0.0};
};

}  // namespace sagesim::gpu
