#include "gpusim/occupancy.hpp"

#include <algorithm>
#include <stdexcept>

namespace sagesim::gpu {

OccupancyResult occupancy_for(const DeviceSpec& spec, const Dim3& block,
                              std::uint64_t shared_mem_per_block) {
  const std::uint64_t threads = block.total();
  if (threads == 0 || threads > spec.max_threads_per_block)
    throw std::invalid_argument("occupancy_for: block size " +
                                std::to_string(threads) +
                                " outside [1, max_threads_per_block]");
  if (shared_mem_per_block > spec.shared_mem_per_block)
    throw std::invalid_argument(
        "occupancy_for: shared memory request exceeds per-block limit");

  OccupancyResult r;
  r.warps_per_block = static_cast<std::uint32_t>(
      (threads + spec.warp_size - 1) / spec.warp_size);

  // Lane efficiency: launched lanes vs useful lanes (partial last warp).
  const std::uint64_t launched_lanes =
      static_cast<std::uint64_t>(r.warps_per_block) * spec.warp_size;
  r.lane_efficiency =
      static_cast<double>(threads) / static_cast<double>(launched_lanes);

  const std::uint32_t by_threads = static_cast<std::uint32_t>(
      spec.max_threads_per_sm /
      (static_cast<std::uint64_t>(r.warps_per_block) * spec.warp_size));
  const std::uint32_t by_blocks = spec.max_blocks_per_sm;
  const std::uint32_t by_smem =
      shared_mem_per_block == 0
          ? by_blocks
          : static_cast<std::uint32_t>(spec.shared_mem_per_sm /
                                       shared_mem_per_block);

  r.active_blocks_per_sm = std::min({by_threads, by_blocks, by_smem});
  if (r.active_blocks_per_sm == 0) r.active_blocks_per_sm = 0;
  if (by_threads <= by_blocks && by_threads <= by_smem)
    r.limiter = "threads";
  else if (by_blocks <= by_smem)
    r.limiter = "blocks";
  else
    r.limiter = "shared_mem";

  r.active_threads_per_sm = static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(r.active_blocks_per_sm) * r.warps_per_block *
      spec.warp_size);
  r.active_threads_per_sm =
      std::min(r.active_threads_per_sm, spec.max_threads_per_sm);
  r.occupancy = static_cast<double>(r.active_threads_per_sm) /
                static_cast<double>(spec.max_threads_per_sm);
  return r;
}

std::uint32_t suggest_block_size(const DeviceSpec& spec,
                                 std::uint64_t shared_mem_per_block) {
  std::uint32_t best = spec.warp_size;
  double best_occ = -1.0;
  for (std::uint32_t size = spec.warp_size; size <= spec.max_threads_per_block;
       size += spec.warp_size) {
    const auto r = occupancy_for(spec, Dim3{size}, shared_mem_per_block);
    if (r.occupancy > best_occ + 1e-12) {
      best_occ = r.occupancy;
      best = size;
    }
  }
  return best;
}

}  // namespace sagesim::gpu
