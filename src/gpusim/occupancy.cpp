#include "gpusim/occupancy.hpp"

#include <algorithm>
#include <string>

namespace sagesim::gpu {

Expected<OccupancyResult> occupancy_for(const DeviceSpec& spec,
                                        const Dim3& block,
                                        std::uint64_t shared_mem_per_block,
                                        std::uint32_t regs_per_thread) {
  const std::uint64_t threads = block.total();
  if (threads == 0 || threads > spec.max_threads_per_block)
    return Status::invalid_argument("occupancy_for: block size " +
                                    std::to_string(threads) +
                                    " outside [1, max_threads_per_block]");
  if (shared_mem_per_block > spec.shared_mem_per_block)
    return Status::invalid_argument(
        "occupancy_for: shared memory request exceeds per-block limit");

  const std::uint32_t regs =
      regs_per_thread == 0 ? spec.default_regs_per_thread : regs_per_thread;
  const std::uint64_t block_regs = threads * regs;
  if (block_regs > spec.registers_per_sm)
    return Status::invalid_argument(
        "occupancy_for: block needs " + std::to_string(block_regs) +
        " registers; the SM register file holds " +
        std::to_string(spec.registers_per_sm));

  OccupancyResult r;
  r.regs_per_thread = regs;
  r.warps_per_block = static_cast<std::uint32_t>(
      (threads + spec.warp_size - 1) / spec.warp_size);

  // Lane efficiency: launched lanes vs useful lanes (partial last warp).
  const std::uint64_t launched_lanes =
      static_cast<std::uint64_t>(r.warps_per_block) * spec.warp_size;
  r.lane_efficiency =
      static_cast<double>(threads) / static_cast<double>(launched_lanes);

  const std::uint32_t by_threads = static_cast<std::uint32_t>(
      spec.max_threads_per_sm /
      (static_cast<std::uint64_t>(r.warps_per_block) * spec.warp_size));
  const std::uint32_t by_blocks = spec.max_blocks_per_sm;
  const std::uint32_t by_smem =
      shared_mem_per_block == 0
          ? by_blocks
          : static_cast<std::uint32_t>(spec.shared_mem_per_sm /
                                       shared_mem_per_block);
  const std::uint32_t by_regs =
      block_regs == 0 ? by_blocks
                      : static_cast<std::uint32_t>(spec.registers_per_sm /
                                                   block_regs);

  r.active_blocks_per_sm = std::min({by_threads, by_blocks, by_smem, by_regs});
  if (by_threads <= by_blocks && by_threads <= by_smem &&
      by_threads <= by_regs)
    r.limiter = "threads";
  else if (by_blocks <= by_smem && by_blocks <= by_regs)
    r.limiter = "blocks";
  else if (by_smem <= by_regs)
    r.limiter = "shared_mem";
  else
    r.limiter = "registers";

  r.active_threads_per_sm = static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(r.active_blocks_per_sm) * r.warps_per_block *
      spec.warp_size);
  r.active_threads_per_sm =
      std::min(r.active_threads_per_sm, spec.max_threads_per_sm);
  r.occupancy = static_cast<double>(r.active_threads_per_sm) /
                static_cast<double>(spec.max_threads_per_sm);
  return r;
}

Expected<std::uint32_t> suggest_block_size(const DeviceSpec& spec,
                                           std::uint64_t shared_mem_per_block,
                                           std::uint32_t regs_per_thread) {
  std::uint32_t best = 0;
  double best_occ = -1.0;
  for (std::uint32_t size = spec.warp_size; size <= spec.max_threads_per_block;
       size += spec.warp_size) {
    const Expected<OccupancyResult> r =
        occupancy_for(spec, Dim3{size}, shared_mem_per_block, regs_per_thread);
    if (!r) continue;  // e.g. register footprint rules this size out
    if (r->occupancy > best_occ + 1e-12) {
      best_occ = r->occupancy;
      best = size;
    }
  }
  if (best == 0)
    return Status::invalid_argument(
        "suggest_block_size: no launchable block size for the requested "
        "shared-memory and register footprint");
  return best;
}

}  // namespace sagesim::gpu
