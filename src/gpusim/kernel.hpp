// Kernel abstractions: what user code writes to run "on the GPU".
//
// Two flavours mirror how the course teaches CUDA through Numba/CuPy:
//
//  * ThreadKernel — a functor invoked once per thread with its CUDA-style
//    coordinates (blockIdx/threadIdx/...).  This is the common case and maps
//     1:1 onto a `@cuda.jit` Numba kernel.  Threads may not communicate, so
//    no __syncthreads() is offered.
//
//  * BlockKernel — a functor invoked once per *block*, which iterates its
//    own threads explicitly and owns the block's shared memory.  Staged
//    shared-memory algorithms (tiled matrix multiply, block reductions)
//    express their barrier phases as separate loops over the block's
//    threads, which is semantically exactly the code between two
//    __syncthreads() calls.
//
// Kernels run for real on the host (results are bit-real); the *time* they
// took is modeled by TimingModel from the flop/byte counters the kernel
// reports through its context.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "gpusim/dim3.hpp"

namespace sagesim::gpu {

/// Work counters local to one block's execution; flushed into the launch
/// totals once the block retires (no per-operation atomics).
struct WorkCounters {
  double flops{0.0};
  double global_bytes{0.0};

  /// Records @p n floating-point operations.
  void add_flops(double n) { flops += n; }
  /// Records @p n bytes of global-memory traffic.
  void add_bytes(double n) { global_bytes += n; }
};

/// Per-thread view passed to a ThreadKernel.
struct ThreadCtx {
  Dim3 grid_dim;
  Dim3 block_dim;
  Dim3 block_idx;
  Dim3 thread_idx;
  WorkCounters* counters{nullptr};  ///< shared across the block, not thread-safe across blocks by design

  /// Global linear thread id for 1-D launches:
  /// blockIdx.x * blockDim.x + threadIdx.x.
  std::uint64_t global_x() const {
    return static_cast<std::uint64_t>(block_idx.x) * block_dim.x +
           thread_idx.x;
  }
  /// Global y coordinate for 2-D launches.
  std::uint64_t global_y() const {
    return static_cast<std::uint64_t>(block_idx.y) * block_dim.y +
           thread_idx.y;
  }
  /// Grid-stride for grid-stride loops: gridDim.x * blockDim.x.
  std::uint64_t stride_x() const {
    return static_cast<std::uint64_t>(grid_dim.x) * block_dim.x;
  }

  void add_flops(double n) const { counters->add_flops(n); }
  void add_bytes(double n) const { counters->add_bytes(n); }
};

/// Per-block view passed to a BlockKernel.
struct BlockCtx {
  Dim3 grid_dim;
  Dim3 block_dim;
  Dim3 block_idx;
  /// Shared memory for this block, sized by LaunchOptions::shared_mem_bytes.
  std::span<std::byte> shared;
  WorkCounters* counters{nullptr};

  /// Reinterprets the shared-memory arena as an array of T.
  template <typename T>
  std::span<T> shared_as() const {
    return {reinterpret_cast<T*>(shared.data()), shared.size() / sizeof(T)};
  }

  /// Invokes @p fn for every thread coordinate in the block, in thread-id
  /// order.  Call it once per barrier-delimited phase of the algorithm.
  template <typename Fn>
  void for_each_thread(Fn&& fn) const {
    for (std::uint32_t z = 0; z < block_dim.z; ++z)
      for (std::uint32_t y = 0; y < block_dim.y; ++y)
        for (std::uint32_t x = 0; x < block_dim.x; ++x)
          fn(Dim3{x, y, z});
  }

  void add_flops(double n) const { counters->add_flops(n); }
  void add_bytes(double n) const { counters->add_bytes(n); }
};

using ThreadKernel = std::function<void(const ThreadCtx&)>;
using BlockKernel = std::function<void(const BlockCtx&)>;

/// Optional launch parameters (CUDA's <<<grid, block, smem, stream>>> tail).
struct LaunchOptions {
  std::uint64_t shared_mem_bytes{0};
  int stream{0};  ///< stream ordinal on the launching device
};

/// What a launch reports back (the simulated analogue of what Nsight shows
/// for one kernel row).
struct LaunchResult {
  double start_s{0.0};
  double duration_s{0.0};
  double flops{0.0};
  double bytes{0.0};
  double occupancy{0.0};
  double end_s() const { return start_s + duration_s; }
};

}  // namespace sagesim::gpu
