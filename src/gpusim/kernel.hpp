// Kernel abstractions: what user code writes to run "on the GPU".
//
// Two flavours mirror how the course teaches CUDA through Numba/CuPy:
//
//  * ThreadKernel — a functor invoked once per thread with its CUDA-style
//    coordinates (blockIdx/threadIdx/...).  This is the common case and maps
//     1:1 onto a `@cuda.jit` Numba kernel.  Threads may not communicate, so
//    no __syncthreads() is offered.
//
//  * BlockKernel — a functor invoked once per *block*, which iterates its
//    own threads explicitly and owns the block's shared memory.  Staged
//    shared-memory algorithms (tiled matrix multiply, block reductions)
//    express their barrier phases as separate loops over the block's
//    threads, which is semantically exactly the code between two
//    __syncthreads() calls.
//
// Kernels run for real on the host (results are bit-real); the *time* they
// took is modeled by TimingModel from the flop/byte counters the kernel
// reports through its context.  Under Fidelity::kWarp (see warp.hpp) the
// context additionally records each lane's instruction stream, so kernels
// that use load_global/store_global, shared_span and branch get priced by
// their memory access *pattern*, not just their totals.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "gpusim/dim3.hpp"
#include "gpusim/warp.hpp"

namespace sagesim::gpu {

/// Work counters local to one block's execution; flushed into the launch
/// totals once the block retires (no per-operation atomics).
struct WorkCounters {
  double flops{0.0};
  double global_bytes{0.0};

  /// Records @p n floating-point operations.
  void add_flops(double n) { flops += n; }
  /// Records @p n bytes of global-memory traffic.
  void add_bytes(double n) { global_bytes += n; }
};

/// Typed window over a block's shared-memory arena whose accesses feed the
/// bank-conflict model.  Obtained from BlockCtx::shared_span<T>(); in
/// analytic mode it degrades to a plain span (no recording, no cost).
template <typename T>
class SharedSpan {
 public:
  SharedSpan(std::span<T> data, std::uint64_t base_offset,
             WarpRecorder* recorder)
      : data_(data), base_(base_offset), recorder_(recorder) {}

  std::size_t size() const { return data_.size(); }

  T load(std::size_t i) const {
    record(i);
    return data_[i];
  }
  void store(std::size_t i, T value) const {
    record(i);
    data_[i] = value;
  }

 private:
  void record(std::size_t i) const {
    if (recorder_ != nullptr)
      recorder_->record_shared(base_ + i * sizeof(T),
                               static_cast<std::uint32_t>(sizeof(T)));
  }

  std::span<T> data_;
  std::uint64_t base_;
  WarpRecorder* recorder_;
};

/// Per-thread view passed to a ThreadKernel.
struct ThreadCtx {
  Dim3 grid_dim;
  Dim3 block_dim;
  Dim3 block_idx;
  Dim3 thread_idx;
  WorkCounters* counters{nullptr};  ///< shared across the block, not thread-safe across blocks by design
  WarpRecorder* recorder{nullptr};  ///< non-null only under Fidelity::kWarp

  /// Global linear thread id for 1-D launches:
  /// blockIdx.x * blockDim.x + threadIdx.x.
  std::uint64_t global_x() const {
    return static_cast<std::uint64_t>(block_idx.x) * block_dim.x +
           thread_idx.x;
  }
  /// Global y coordinate for 2-D launches.
  std::uint64_t global_y() const {
    return static_cast<std::uint64_t>(block_idx.y) * block_dim.y +
           thread_idx.y;
  }
  /// Grid-stride for grid-stride loops: gridDim.x * blockDim.x.
  std::uint64_t stride_x() const {
    return static_cast<std::uint64_t>(grid_dim.x) * block_dim.x;
  }
  /// Linear thread id within the block (x fastest — warp packing order).
  std::uint32_t linear_in_block() const {
    return (thread_idx.z * block_dim.y + thread_idx.y) * block_dim.x +
           thread_idx.x;
  }
  /// Lane within the thread's warp, assuming 32-lane warps.
  std::uint32_t lane() const { return linear_in_block() % 32u; }

  /// Records @p n flops; under warp fidelity each call is also one
  /// arithmetic instruction in the lane's issue stream.
  void add_flops(double n) const {
    counters->add_flops(n);
    if (recorder != nullptr) recorder->record_flop();
  }
  /// Records @p n bytes of global traffic with no address information —
  /// priced at face value even under warp fidelity.  Kernels that want the
  /// coalescing model must go through load_global/store_global instead.
  void add_bytes(double n) const { counters->add_bytes(n); }

  /// Reads one T from global memory, recording the touched address so the
  /// warp folder can derive 32B-sector transactions.
  template <typename T>
  T load_global(const T* p) const {
    counters->add_bytes(static_cast<double>(sizeof(T)));
    if (recorder != nullptr)
      recorder->record_global(
          static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p)),
          static_cast<std::uint32_t>(sizeof(T)), /*store=*/false);
    return *p;
  }
  /// Writes one T to global memory (accounted like load_global).
  template <typename T>
  void store_global(T* p, T value) const {
    counters->add_bytes(static_cast<double>(sizeof(T)));
    if (recorder != nullptr)
      recorder->record_global(
          static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p)),
          static_cast<std::uint32_t>(sizeof(T)), /*store=*/true);
    *p = value;
  }
  /// Declares a data-dependent branch: returns @p taken unchanged, and under
  /// warp fidelity records the outcome so lanes that disagree serialize.
  bool branch(bool taken) const {
    if (recorder != nullptr) recorder->record_branch(taken);
    return taken;
  }
};

/// Per-block view passed to a BlockKernel.
struct BlockCtx {
  Dim3 grid_dim;
  Dim3 block_dim;
  Dim3 block_idx;
  /// Shared memory for this block, sized by LaunchOptions::shared_mem_bytes.
  std::span<std::byte> shared;
  WorkCounters* counters{nullptr};
  WarpRecorder* recorder{nullptr};  ///< non-null only under Fidelity::kWarp

  /// Reinterprets the shared-memory arena as an array of T (unrecorded;
  /// use shared_span<T>() when the bank-conflict model should see it).
  template <typename T>
  std::span<T> shared_as() const {
    return {reinterpret_cast<T*>(shared.data()), shared.size() / sizeof(T)};
  }

  /// Typed shared-memory window whose load/store calls feed the 32-bank
  /// conflict model under warp fidelity.
  template <typename T>
  SharedSpan<T> shared_span() const {
    return SharedSpan<T>(shared_as<T>(), 0, recorder);
  }

  /// Invokes @p fn for every thread coordinate in the block, in thread-id
  /// order.  Call it once per barrier-delimited phase of the algorithm.
  /// Under warp fidelity each phase is a lockstep scope: the threads fold
  /// into 32-lane warps and their recorded ops coalesce/diverge per warp.
  template <typename Fn>
  void for_each_thread(Fn&& fn) const {
    if (recorder != nullptr)
      recorder->begin_scope(static_cast<std::uint32_t>(block_dim.total()));
    std::uint32_t linear = 0;
    for (std::uint32_t z = 0; z < block_dim.z; ++z)
      for (std::uint32_t y = 0; y < block_dim.y; ++y)
        for (std::uint32_t x = 0; x < block_dim.x; ++x) {
          if (recorder != nullptr) recorder->set_slot(linear);
          ++linear;
          fn(Dim3{x, y, z});
        }
    if (recorder != nullptr) recorder->end_scope();
  }

  /// See ThreadCtx::add_flops.
  void add_flops(double n) const {
    counters->add_flops(n);
    if (recorder != nullptr) recorder->record_flop();
  }
  /// See ThreadCtx::add_bytes.
  void add_bytes(double n) const { counters->add_bytes(n); }

  template <typename T>
  T load_global(const T* p) const {
    counters->add_bytes(static_cast<double>(sizeof(T)));
    if (recorder != nullptr)
      recorder->record_global(
          static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p)),
          static_cast<std::uint32_t>(sizeof(T)), /*store=*/false);
    return *p;
  }
  template <typename T>
  void store_global(T* p, T value) const {
    counters->add_bytes(static_cast<double>(sizeof(T)));
    if (recorder != nullptr)
      recorder->record_global(
          static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p)),
          static_cast<std::uint32_t>(sizeof(T)), /*store=*/true);
    *p = value;
  }
  bool branch(bool taken) const {
    if (recorder != nullptr) recorder->record_branch(taken);
    return taken;
  }
};

using ThreadKernel = std::function<void(const ThreadCtx&)>;
using BlockKernel = std::function<void(const BlockCtx&)>;

/// Optional launch parameters (CUDA's <<<grid, block, smem, stream>>> tail).
struct LaunchOptions {
  std::uint64_t shared_mem_bytes{0};
  int stream{0};  ///< stream ordinal on the launching device
  /// Execution-model fidelity for this launch; kDefault defers to the
  /// process default (SAGESIM_GPU_FIDELITY / set_default_fidelity).
  Fidelity fidelity{Fidelity::kDefault};
  /// Per-thread register estimate for the occupancy calculator; 0 uses
  /// DeviceSpec::default_regs_per_thread.
  std::uint32_t regs_per_thread{0};
};

/// What a launch reports back (the simulated analogue of what Nsight shows
/// for one kernel row).
struct LaunchResult {
  double start_s{0.0};
  double duration_s{0.0};
  double flops{0.0};
  double bytes{0.0};            ///< bytes as requested by the kernel
  double occupancy{0.0};
  double lane_efficiency{1.0};  ///< useful lanes per issued warp instruction
  const char* limiter{"none"};  ///< occupancy limiter (see occupancy.hpp)
  bool warp_fidelity{false};    ///< true when the warp model priced this row

  // Populated only under warp fidelity:
  double divergence{0.0};       ///< 1 - lane_efficiency (branch + tail waste)
  double effective_bytes{0.0};  ///< transaction-derived DRAM bytes
  double gld_transactions_per_request{0.0};
  double gst_transactions_per_request{0.0};
  std::uint64_t shared_bank_replays{0};
  std::uint64_t divergent_branches{0};
  std::uint64_t warps{0};
  std::uint64_t issue_slots{0};

  double end_s() const { return start_s + duration_s; }
};

}  // namespace sagesim::gpu
