#include "gpusim/timing.hpp"

#include <algorithm>

namespace sagesim::gpu {

double TimingModel::kernel_seconds(const KernelWork& work) const {
  const double launch = spec_.launch_overhead_us * 1e-6;
  if (work.threads == 0) return launch;

  const double occ = std::clamp(work.occupancy, 0.01, 1.0);
  const double lanes = std::clamp(work.lane_efficiency, 0.01, 1.0);

  const double compute_s =
      work.flops > 0.0 ? work.flops / (spec_.peak_flops() * occ * lanes) : 0.0;
  // Warp-mode launches supply the DRAM bytes their transactions actually
  // moved (strided access inflates this well past the requested bytes);
  // analytic launches price the requested bytes at face value.
  const double bytes =
      work.effective_bytes > 0.0 ? work.effective_bytes : work.global_bytes;
  const double memory_s =
      bytes > 0.0 ? bytes / spec_.peak_bytes_per_s() : 0.0;

  double issue_s;
  if (work.issue_cycles > 0.0) {
    // Warp-granular issue: each SM dual-issues cores_per_sm / warp_size
    // warp-instructions per clock; divergence serialization and bank
    // replays are already folded into issue_cycles.
    const double warp_issue_rate =
        static_cast<double>(spec_.sm_count) *
        (static_cast<double>(spec_.cores_per_sm) / spec_.warp_size) *
        spec_.clock_ghz * 1e9 * occ;
    issue_s = work.issue_cycles / warp_issue_rate;
  } else {
    // Thread-issue floor: the machine can issue at most
    // sm_count * cores_per_sm threads per clock; each thread costs at least
    // one issue slot even when it does no arithmetic.
    const double issue_rate =
        static_cast<double>(spec_.sm_count) * spec_.cores_per_sm *
        spec_.clock_ghz * 1e9 * occ;
    issue_s = static_cast<double>(work.threads) / issue_rate;
  }

  return launch + std::max({compute_s, memory_s, issue_s});
}

double TimingModel::transfer_seconds(std::uint64_t bytes, bool pinned) const {
  const double bw = spec_.pcie_bytes_per_s() * (pinned ? 1.0 : 0.55);
  return spec_.pcie_latency_us * 1e-6 + static_cast<double>(bytes) / bw;
}

double TimingModel::peer_transfer_seconds(std::uint64_t bytes) const {
  // Peer copies traverse the link twice as fast in practice on the course's
  // multi-GPU instances (same PCIe switch); model 1.5x the host link.
  return spec_.pcie_latency_us * 1e-6 +
         static_cast<double>(bytes) / (1.5 * spec_.pcie_bytes_per_s());
}

}  // namespace sagesim::gpu
