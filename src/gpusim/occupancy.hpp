// CUDA-style occupancy calculator: how many blocks of a given shape fit on
// an SM, and what fraction of the SM's thread slots they fill.
#pragma once

#include <cstdint>

#include "gpusim/device_spec.hpp"
#include "gpusim/dim3.hpp"
#include "runtime/status.hpp"

namespace sagesim::gpu {

struct OccupancyResult {
  std::uint32_t warps_per_block{0};
  std::uint32_t active_blocks_per_sm{0};
  std::uint32_t active_threads_per_sm{0};
  std::uint32_t regs_per_thread{0};  ///< estimate the result was computed at
  double occupancy{0.0};          ///< active threads / max threads per SM
  double lane_efficiency{1.0};    ///< useful lanes within launched warps
  /// "threads", "blocks", "shared_mem" or "registers" — the resource that
  /// capped active_blocks_per_sm (ties resolve in that order).
  const char* limiter{"none"};
};

/// Computes theoretical occupancy for launching blocks of shape @p block
/// using @p shared_mem_per_block bytes of shared memory and
/// @p regs_per_thread registers per thread (0 = the spec's default
/// estimate) on @p spec.  Fails with kInvalidArgument when the block shape
/// itself is unlaunchable (too many threads, too much shared memory, or a
/// register footprint no SM can hold).
Expected<OccupancyResult> occupancy_for(const DeviceSpec& spec,
                                        const Dim3& block,
                                        std::uint64_t shared_mem_per_block = 0,
                                        std::uint32_t regs_per_thread = 0);

/// Suggests the 1-D block size in [32, max_threads_per_block] (multiple of
/// the warp size) with the highest theoretical occupancy — the simulated
/// analogue of cudaOccupancyMaxPotentialBlockSize.  Sizes a given register
/// footprint makes unlaunchable are skipped; fails with kInvalidArgument
/// when no size is launchable at all.
Expected<std::uint32_t> suggest_block_size(
    const DeviceSpec& spec, std::uint64_t shared_mem_per_block = 0,
    std::uint32_t regs_per_thread = 0);

}  // namespace sagesim::gpu
