// CUDA-style occupancy calculator: how many blocks of a given shape fit on
// an SM, and what fraction of the SM's thread slots they fill.
#pragma once

#include <cstdint>

#include "gpusim/device_spec.hpp"
#include "gpusim/dim3.hpp"

namespace sagesim::gpu {

struct OccupancyResult {
  std::uint32_t warps_per_block{0};
  std::uint32_t active_blocks_per_sm{0};
  std::uint32_t active_threads_per_sm{0};
  double occupancy{0.0};          ///< active threads / max threads per SM
  double lane_efficiency{1.0};    ///< useful lanes within launched warps
  const char* limiter{"none"};    ///< "threads", "blocks", "shared_mem"
};

/// Computes theoretical occupancy for launching blocks of shape @p block
/// using @p shared_mem_per_block bytes of shared memory on @p spec.
/// Throws std::invalid_argument when the block shape itself is unlaunchable
/// (too many threads or too much shared memory for any configuration).
OccupancyResult occupancy_for(const DeviceSpec& spec, const Dim3& block,
                              std::uint64_t shared_mem_per_block = 0);

/// Suggests the 1-D block size in [32, max_threads_per_block] (multiple of
/// the warp size) with the highest theoretical occupancy — the simulated
/// analogue of cudaOccupancyMaxPotentialBlockSize.
std::uint32_t suggest_block_size(const DeviceSpec& spec,
                                 std::uint64_t shared_mem_per_block = 0);

}  // namespace sagesim::gpu
