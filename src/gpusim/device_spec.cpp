#include "gpusim/device_spec.hpp"

#include <stdexcept>

namespace sagesim::gpu::spec {

DeviceSpec t4() {
  DeviceSpec s;
  s.name = "T4-sim";
  s.sm_count = 40;
  s.cores_per_sm = 64;
  s.clock_ghz = 1.59;
  s.global_mem_bytes = 16ull << 30;
  s.mem_bandwidth_gbps = 320.0;
  s.pcie_bandwidth_gbps = 12.0;
  s.pcie_latency_us = 8.0;
  s.launch_overhead_us = 6.0;
  s.max_threads_per_sm = 1024;
  return s;
}

DeviceSpec a10g() {
  DeviceSpec s;
  s.name = "A10G-sim";
  s.sm_count = 80;
  s.cores_per_sm = 128;
  s.clock_ghz = 1.71;  // ~35 TFLOP/s w/ 2 flops/lane-cycle
  s.global_mem_bytes = 24ull << 30;
  s.mem_bandwidth_gbps = 600.0;
  s.pcie_bandwidth_gbps = 14.0;
  s.pcie_latency_us = 7.0;
  s.launch_overhead_us = 5.0;
  s.max_threads_per_sm = 1536;
  return s;
}

DeviceSpec v100() {
  DeviceSpec s;
  s.name = "V100-sim";
  s.sm_count = 80;
  s.cores_per_sm = 64;
  s.clock_ghz = 1.53;
  s.global_mem_bytes = 16ull << 30;
  s.mem_bandwidth_gbps = 900.0;
  s.pcie_bandwidth_gbps = 14.0;
  s.pcie_latency_us = 7.0;
  s.launch_overhead_us = 5.0;
  s.max_threads_per_sm = 2048;
  return s;
}

DeviceSpec test_tiny() {
  DeviceSpec s;
  s.name = "tiny-sim";
  s.sm_count = 1;
  s.cores_per_sm = 32;
  s.clock_ghz = 1.0;
  s.global_mem_bytes = 64ull << 20;
  s.mem_bandwidth_gbps = 10.0;
  s.pcie_bandwidth_gbps = 1.0;
  s.pcie_latency_us = 10.0;
  s.launch_overhead_us = 10.0;
  s.max_threads_per_sm = 1024;
  s.shared_mem_per_block = 16ull << 10;
  s.shared_mem_per_sm = 16ull << 10;
  return s;
}

DeviceSpec by_name(const std::string& name) {
  if (name == "t4") return t4();
  if (name == "a10g") return a10g();
  if (name == "v100") return v100();
  if (name == "test_tiny") return test_tiny();
  throw std::invalid_argument("unknown device spec: " + name);
}

std::vector<std::string> names() { return {"t4", "a10g", "v100", "test_tiny"}; }

}  // namespace sagesim::gpu::spec
