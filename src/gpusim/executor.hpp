// Host-parallel execution of simulated kernels, block-parallel.
//
// Blocks are independent by the CUDA contract, so chunks of the block range
// may run in any order on any worker; per-block WorkCounters are merged with
// one atomic add per block.  Since the runtime unification, Executor is a
// thin facade over runtime::Scheduler: parallel_for submits stealable chunk
// tasks to the pool, participates from the calling thread, and sleeps on a
// condition variable until the last chunk finishes (no spin-yield).
//
// Executor::shared() rides the process-wide runtime::Scheduler::shared()
// pool (sized by SAGESIM_WORKERS / hardware); an Executor constructed with
// an explicit worker count owns a private pool of that size.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "runtime/scheduler.hpp"

namespace sagesim::gpu {

class Executor {
 public:
  /// Wraps the process-shared runtime pool when @p workers == 0; otherwise
  /// owns a private pool with exactly @p workers threads.
  explicit Executor(unsigned workers = 0);

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  unsigned worker_count() const { return sched_->worker_count(); }

  /// Runs fn(i) for i in [0, n), distributing chunks over the pool and
  /// blocking until all complete.  Exceptions from @p fn are rethrown on the
  /// calling thread (first one wins).
  ///
  /// @p grain is the minimum number of items per chunk: the range is split
  /// into at most n / grain chunks (and never more than workers * 4), so
  /// callers whose per-item work is tiny — e.g. the SpMM row partitioner on
  /// a small graph — can keep the fork/join overhead proportional to the
  /// useful work.  When the grain leaves a single chunk, the whole range
  /// runs on the calling thread with no scheduler round-trip.
  void parallel_for(std::uint64_t n, const std::function<void(std::uint64_t)>& fn,
                    std::uint64_t grain = 1);

  /// The underlying task-graph scheduler.
  runtime::Scheduler& scheduler() { return *sched_; }

  /// Process-wide shared pool.
  static Executor& shared();

 private:
  std::unique_ptr<runtime::Scheduler> owned_;  ///< set iff workers > 0
  runtime::Scheduler* sched_;
};

}  // namespace sagesim::gpu
