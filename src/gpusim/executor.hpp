// Host thread pool that executes simulated kernels block-parallel.
//
// Blocks are independent by the CUDA contract, so the pool may run them in
// any order on any worker; per-block WorkCounters are merged with one atomic
// add per block.  The pool is a process-wide resource shared by all
// simulated devices (they model separate machines, but the simulation itself
// runs on one host).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sagesim::gpu {

class Executor {
 public:
  /// Creates a pool with @p workers threads; 0 picks
  /// std::thread::hardware_concurrency() (at least 1).
  explicit Executor(unsigned workers = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  unsigned worker_count() const { return static_cast<unsigned>(threads_.size()); }

  /// Runs fn(i) for i in [0, n), distributing chunks over the pool and
  /// blocking until all complete.  Exceptions from @p fn are rethrown on the
  /// calling thread (first one wins).
  void parallel_for(std::uint64_t n,
                    const std::function<void(std::uint64_t)>& fn);

  /// Process-wide shared pool.
  static Executor& shared();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_{false};
};

}  // namespace sagesim::gpu
