#include "gpusim/device_manager.hpp"

#include <cstring>
#include <stdexcept>

namespace sagesim::gpu {

DeviceManager::DeviceManager(std::size_t count, DeviceSpec spec,
                             Executor* executor)
    : timeline_(std::make_shared<prof::Timeline>()) {
  if (count == 0)
    throw std::invalid_argument("DeviceManager: need at least one device");
  devices_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    devices_.push_back(std::make_unique<Device>(static_cast<int>(i), spec,
                                                timeline_, executor));
}

DeviceManager::DeviceManager(std::vector<DeviceSpec> specs, Executor* executor)
    : timeline_(std::make_shared<prof::Timeline>()) {
  if (specs.empty())
    throw std::invalid_argument("DeviceManager: need at least one device");
  devices_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    devices_.push_back(std::make_unique<Device>(
        static_cast<int>(i), std::move(specs[i]), timeline_, executor));
}

Device& DeviceManager::device(std::size_t ordinal) {
  if (ordinal >= devices_.size())
    throw std::out_of_range("DeviceManager: no device " +
                            std::to_string(ordinal));
  return *devices_[ordinal];
}

const Device& DeviceManager::device(std::size_t ordinal) const {
  if (ordinal >= devices_.size())
    throw std::out_of_range("DeviceManager: no device " +
                            std::to_string(ordinal));
  return *devices_[ordinal];
}

void DeviceManager::copy_peer(std::size_t dst_dev, void* dst,
                              std::size_t src_dev, const void* src,
                              std::size_t bytes, int dst_stream,
                              int src_stream) {
  Device& d = device(dst_dev);
  Device& s = device(src_dev);
  if (!d.memory().owns(dst))
    throw std::invalid_argument("copy_peer: dst not on destination device");
  if (!s.memory().owns(src))
    throw std::invalid_argument("copy_peer: src not on source device");
  if (d.memory().size_of(dst) < bytes || s.memory().size_of(src) < bytes)
    throw std::invalid_argument("copy_peer: copy overruns an allocation");

  std::memcpy(dst, src, bytes);

  // The transfer occupies the peer link: the participating streams on both
  // devices advance to a common completion time.
  const double dur = s.timing().peer_transfer_seconds(bytes);
  const double start =
      std::max(s.stream_time(src_stream), d.stream_time(dst_stream));
  const Event fence{start + dur, static_cast<int>(src_dev), src_stream};
  s.wait_event(src_stream, fence);
  d.wait_event(dst_stream, fence);

  prof::TraceEvent e;
  e.name = "memcpy_peer";
  e.kind = prof::EventKind::kMemcpyD2D;
  e.start_s = start;
  e.duration_s = dur;
  e.device = static_cast<int>(src_dev);
  e.stream = src_stream;
  e.counters["bytes"] = static_cast<double>(bytes);
  e.counters["dst_device"] = static_cast<double>(dst_dev);
  e.counters["comm"] = 1.0;
  timeline_->record(std::move(e));
}

double DeviceManager::synchronize_all() {
  double latest = 0.0;
  for (auto& d : devices_) latest = std::max(latest, d->synchronize());
  return latest;
}

double DeviceManager::now_s() const {
  double latest = 0.0;
  for (const auto& d : devices_)
    for (std::size_t s = 0; s < d->stream_count(); ++s)
      latest = std::max(latest, d->stream_time(static_cast<int>(s)));
  return latest;
}

}  // namespace sagesim::gpu
