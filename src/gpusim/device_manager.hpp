// Multi-GPU node: a set of simulated devices sharing one timeline, plus
// peer-to-peer transfers — the substrate for the course's multi-GPU labs
// (DDP, distributed GCN).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gpusim/device.hpp"

namespace sagesim::gpu {

class DeviceManager {
 public:
  /// Creates @p count devices of identical @p spec sharing a fresh timeline.
  DeviceManager(std::size_t count, DeviceSpec spec,
                Executor* executor = &Executor::shared());

  /// Creates heterogeneous devices.
  DeviceManager(std::vector<DeviceSpec> specs,
                Executor* executor = &Executor::shared());

  std::size_t device_count() const { return devices_.size(); }

  /// Device by ordinal; throws std::out_of_range.
  Device& device(std::size_t ordinal);
  const Device& device(std::size_t ordinal) const;

  prof::Timeline& timeline() { return *timeline_; }
  std::shared_ptr<prof::Timeline> timeline_ptr() const { return timeline_; }

  /// Copies @p bytes from device memory on @p src_dev to device memory on
  /// @p dst_dev (cudaMemcpyPeer analogue).  Charges peer-link time on both
  /// devices — @p dst_stream on the destination and @p src_stream on the
  /// source, so neither side can start later work before the wire is free —
  /// and records one kMemcpyD2D event.
  void copy_peer(std::size_t dst_dev, void* dst, std::size_t src_dev,
                 const void* src, std::size_t bytes, int dst_stream = 0,
                 int src_stream = 0);

  /// Synchronizes every device; returns the latest completion time.
  double synchronize_all();

  /// Latest stream cursor across all devices (global simulated "now").
  double now_s() const;

 private:
  std::shared_ptr<prof::Timeline> timeline_;
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace sagesim::gpu
