// Simulated device memory: a tracked allocator whose backing store is host
// heap memory.  Capacity accounting reproduces CUDA's cudaMalloc semantics —
// allocations beyond the device's global memory fail with DeviceOutOfMemory,
// which is exactly the failure mode the course's Week 3 lab provokes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "runtime/status.hpp"

namespace sagesim::gpu {

/// Thrown when a device allocation exceeds remaining global memory.
class DeviceOutOfMemory : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Allocation bookkeeping for one device.  Thread-safe.
///
/// Pointer queries accept *interior* pointers (any address inside a live
/// allocation), because kernels and collectives routinely pass base+offset,
/// just like real device pointers.
class DeviceMemory {
 public:
  explicit DeviceMemory(std::uint64_t capacity_bytes);

  DeviceMemory(const DeviceMemory&) = delete;
  DeviceMemory& operator=(const DeviceMemory&) = delete;

  ~DeviceMemory();

  /// Allocates @p bytes of "device" memory.  The returned pointer is real
  /// host memory owned by this object; it stays valid until free().
  /// Throws DeviceOutOfMemory when capacity would be exceeded and
  /// std::invalid_argument for zero-byte requests.
  void* allocate(std::size_t bytes);

  /// Status-bearing allocation: kInvalidArgument for zero-byte requests,
  /// kResourceExhausted (non-retryable) when capacity would be exceeded.
  /// The failure-as-value twin of allocate() for callers on the
  /// Status/Expected surface (mem::Pool, fallible training paths).
  Expected<void*> try_allocate(std::size_t bytes);

  /// Releases an allocation obtained from allocate().  Requires the *base*
  /// pointer; throws std::invalid_argument otherwise.
  void free(void* ptr);

  /// True when @p ptr points inside a live allocation.
  bool owns(const void* ptr) const;

  /// Bytes available at @p ptr through the end of its allocation
  /// (full size for a base pointer).  Throws for unknown pointers.
  std::size_t size_of(const void* ptr) const;

  std::uint64_t capacity_bytes() const { return capacity_; }
  std::uint64_t used_bytes() const;
  std::uint64_t peak_bytes() const;
  std::size_t live_allocations() const;

  /// Process-unique id of this instance (monotonic, never reused — unlike
  /// heap addresses).  Lets caching layers key per-instance state safely
  /// across device teardown/rebuild.
  std::uint64_t id() const { return id_; }

  /// True while the instance with @p id is alive.  Caching layers check this
  /// before releasing blocks into a possibly-destroyed DeviceMemory.
  static bool alive(std::uint64_t id);

 private:
  struct Block {
    std::unique_ptr<std::byte[]> storage;
    std::size_t size{0};
  };

  /// Returns the block containing @p ptr, or blocks_.end().
  /// Caller must hold mutex_.
  std::map<std::uintptr_t, Block>::const_iterator find_containing(
      const void* ptr) const;

  const std::uint64_t capacity_;
  const std::uint64_t id_;
  mutable std::mutex mutex_;
  std::uint64_t used_{0};
  std::uint64_t peak_{0};
  std::map<std::uintptr_t, Block> blocks_;  ///< keyed by base address
};

}  // namespace sagesim::gpu
