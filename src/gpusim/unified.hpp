// CUDA Unified Memory model — the `cuda.managed_array` path the course's
// Numba references study ([6] "Implementation and Evaluation of CUDA
// Unified Memory in Numba", [7] "Lessons learned from comparing C-CUDA and
// Python-Numba").
//
// A managed buffer is resident page-by-page on the host or the device.
// Kernel access to non-resident pages triggers demand migration, charged
// per page (fault latency + page transfer); cudaMemPrefetchAsync-style
// prefetch moves the whole buffer at bulk bandwidth.  The ablation bench
// reproduces the papers' finding: demand paging costs far more than
// explicit/prefetched movement for dense access, and prefetch recovers it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/device.hpp"

namespace sagesim::gpu {

enum class PageLocation : std::uint8_t { kHost, kDevice };

/// Typed managed allocation bound to one device.
template <typename T>
class ManagedBuffer;

/// Untyped core of the unified-memory model.
class ManagedAllocation {
 public:
  /// CUDA's UM granularity on x86 hosts.
  static constexpr std::size_t kPageBytes = 2u << 20;  // 2 MiB
  /// Per-page-fault service latency (GPU page fault + host handler).
  static constexpr double kFaultLatencyS = 20e-6;

  /// Allocates @p bytes of managed memory against @p device's capacity.
  /// Pages start host-resident (first-touch on the host, like CUDA).
  ManagedAllocation(Device& device, std::size_t bytes);
  ~ManagedAllocation();

  ManagedAllocation(const ManagedAllocation&) = delete;
  ManagedAllocation& operator=(const ManagedAllocation&) = delete;

  void* data() { return data_; }
  const void* data() const { return data_; }
  std::size_t bytes() const { return bytes_; }
  std::size_t page_count() const { return pages_.size(); }
  PageLocation page_location(std::size_t page) const;

  /// Number of pages currently resident on the device.
  std::size_t device_resident_pages() const;

  /// Demand-migrates every page in [offset, offset+length) to @p target,
  /// charging fault latency + per-page transfer for each non-resident page
  /// (what touching managed memory from a kernel costs).  Returns the
  /// number of pages migrated.
  std::size_t fault_range(PageLocation target, std::size_t offset,
                          std::size_t length, int stream = 0);

  /// Bulk prefetch (cudaMemPrefetchAsync): moves all non-resident pages in
  /// one transfer at full link bandwidth, no per-page fault cost.
  /// Returns pages moved.
  std::size_t prefetch(PageLocation target, int stream = 0);

  /// Migration statistics since construction.
  std::uint64_t total_faults() const { return faults_; }
  std::uint64_t total_migrated_bytes() const { return migrated_bytes_; }

 private:
  Device& device_;
  std::size_t bytes_;
  void* data_;
  std::vector<PageLocation> pages_;
  std::uint64_t faults_{0};
  std::uint64_t migrated_bytes_{0};
};

/// Typed RAII view over a ManagedAllocation.
template <typename T>
class ManagedBuffer {
 public:
  ManagedBuffer(Device& device, std::size_t count)
      : alloc_(device, count * sizeof(T)), count_(count) {}

  T* data() { return static_cast<T*>(alloc_.data()); }
  const T* data() const { return static_cast<const T*>(alloc_.data()); }
  std::size_t size() const { return count_; }

  ManagedAllocation& allocation() { return alloc_; }
  const ManagedAllocation& allocation() const { return alloc_; }

  /// Demand-faults the element range [first, first+n) to the device (call
  /// before a kernel that touches it without prefetching).
  void fault_to_device(std::size_t first, std::size_t n, int stream = 0) {
    alloc_.fault_range(PageLocation::kDevice, first * sizeof(T),
                       n * sizeof(T), stream);
  }

  /// Prefetches the whole buffer to the device.
  void prefetch_to_device(int stream = 0) {
    alloc_.prefetch(PageLocation::kDevice, stream);
  }

  /// Prefetches the whole buffer back to the host.
  void prefetch_to_host(int stream = 0) {
    alloc_.prefetch(PageLocation::kHost, stream);
  }

 private:
  ManagedAllocation alloc_;
  std::size_t count_;
};

}  // namespace sagesim::gpu
