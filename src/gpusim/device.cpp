#include "gpusim/device.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string_view>

#include "gpusim/occupancy.hpp"
#include "gpusim/warp.hpp"
#include "prof/check.hpp"

namespace sagesim::gpu {

Device::Device(int ordinal, DeviceSpec spec,
               std::shared_ptr<prof::Timeline> timeline, Executor* executor)
    : ordinal_(ordinal),
      timing_(std::move(spec)),
      memory_(timing_.spec().global_mem_bytes),
      timeline_(std::move(timeline)),
      executor_(executor) {
  if (!timeline_)
    throw std::invalid_argument("Device: timeline must not be null");
  SAGESIM_CHECK(executor_ != nullptr);
  streams_.emplace_back(0);
}

int Device::create_stream() {
  std::lock_guard lock(mutex_);
  const int ordinal = static_cast<int>(streams_.size());
  streams_.emplace_back(ordinal);
  return ordinal;
}

int Device::comm_stream() {
  std::lock_guard lock(mutex_);
  if (comm_stream_ < 0) {
    comm_stream_ = static_cast<int>(streams_.size());
    streams_.emplace_back(comm_stream_);
  }
  return comm_stream_;
}

std::size_t Device::stream_count() const {
  std::lock_guard lock(mutex_);
  return streams_.size();
}

Stream& Device::stream_at(int stream) {
  if (stream < 0 || static_cast<std::size_t>(stream) >= streams_.size())
    throw std::out_of_range("Device: unknown stream " +
                            std::to_string(stream));
  return streams_[static_cast<std::size_t>(stream)];
}

const Stream& Device::stream_at(int stream) const {
  if (stream < 0 || static_cast<std::size_t>(stream) >= streams_.size())
    throw std::out_of_range("Device: unknown stream " +
                            std::to_string(stream));
  return streams_[static_cast<std::size_t>(stream)];
}

double Device::stream_time(int stream) const {
  std::lock_guard lock(mutex_);
  return stream_at(stream).cursor_s();
}

Event Device::record_event(int stream) {
  std::lock_guard lock(mutex_);
  return Event{stream_at(stream).cursor_s(), ordinal_, stream};
}

void Device::wait_event(int stream, const Event& event) {
  std::lock_guard lock(mutex_);
  stream_at(stream).wait_until(event.time_s);
}

double Device::synchronize() {
  std::lock_guard lock(mutex_);
  double latest = 0.0;
  for (const auto& s : streams_) latest = std::max(latest, s.cursor_s());
  // Synchronization is itself an API call: all streams align to the fence.
  latest += timing_.api_overhead_seconds();
  for (auto& s : streams_) s.wait_until(latest);
  return latest;
}

void* Device::device_malloc(std::size_t bytes) {
  void* ptr = memory_.allocate(bytes);
  charge("cudaMalloc", prof::EventKind::kApi, timing_.api_overhead_seconds());
  return ptr;
}

void Device::device_free(void* ptr) {
  memory_.free(ptr);
  charge("cudaFree", prof::EventKind::kApi, timing_.api_overhead_seconds());
}

void Device::copy_h2d(void* dst, const void* src, std::size_t bytes,
                      int stream, bool pinned) {
  if (!memory_.owns(dst))
    throw std::invalid_argument("copy_h2d: dst is not device memory");
  if (memory_.size_of(dst) < bytes)
    throw std::invalid_argument("copy_h2d: copy overruns destination");
  std::memcpy(dst, src, bytes);
  charge(pinned ? "memcpy_h2d" : "memcpy_h2d_pageable",
         prof::EventKind::kMemcpyH2D,
         timing_.transfer_seconds(bytes, pinned), stream,
         {{"bytes", static_cast<double>(bytes)}});
}

void Device::copy_d2h(void* dst, const void* src, std::size_t bytes,
                      int stream, bool pinned) {
  if (!memory_.owns(src))
    throw std::invalid_argument("copy_d2h: src is not device memory");
  if (memory_.size_of(src) < bytes)
    throw std::invalid_argument("copy_d2h: copy overruns source");
  std::memcpy(dst, src, bytes);
  charge(pinned ? "memcpy_d2h" : "memcpy_d2h_pageable",
         prof::EventKind::kMemcpyD2H,
         timing_.transfer_seconds(bytes, pinned), stream,
         {{"bytes", static_cast<double>(bytes)}});
}

void Device::copy_d2d(void* dst, const void* src, std::size_t bytes,
                      int stream) {
  if (!memory_.owns(dst) || !memory_.owns(src))
    throw std::invalid_argument("copy_d2d: both pointers must be device memory");
  if (memory_.size_of(dst) < bytes || memory_.size_of(src) < bytes)
    throw std::invalid_argument("copy_d2d: copy overruns an allocation");
  std::memmove(dst, src, bytes);
  // On-device copies read+write global memory at full bandwidth.
  const double dur =
      2.0 * static_cast<double>(bytes) / timing_.spec().peak_bytes_per_s();
  charge("memcpy_d2d", prof::EventKind::kMemcpyD2D, dur, stream,
         {{"bytes", static_cast<double>(bytes)}});
}

void Device::charge(const std::string& name, prof::EventKind kind,
                    double duration_s, int stream,
                    std::map<std::string, double> counters) {
  double start;
  {
    std::lock_guard lock(mutex_);
    start = stream_at(stream).enqueue(duration_s);
  }
  prof::TraceEvent e;
  e.name = name;
  e.kind = kind;
  e.start_s = start;
  e.duration_s = duration_s;
  e.device = ordinal_;
  e.stream = stream;
  e.counters = std::move(counters);
  timeline_->record(std::move(e));
}

void Device::validate_launch(const Dim3& grid, const Dim3& block,
                             const LaunchOptions& opts) const {
  const auto& s = timing_.spec();
  if (grid.total() == 0 || block.total() == 0)
    throw std::invalid_argument("launch: empty grid or block");
  if (block.total() > s.max_threads_per_block)
    throw std::invalid_argument(
        "launch: block has " + std::to_string(block.total()) +
        " threads; device max is " + std::to_string(s.max_threads_per_block));
  if (opts.shared_mem_bytes > s.shared_mem_per_block)
    throw std::invalid_argument(
        "launch: shared memory request exceeds per-block limit");
  const std::uint32_t regs = opts.regs_per_thread == 0
                                 ? s.default_regs_per_thread
                                 : opts.regs_per_thread;
  if (block.total() * regs > s.registers_per_sm)
    throw std::invalid_argument(
        "launch: block needs " + std::to_string(block.total() * regs) +
        " registers; the SM register file holds " +
        std::to_string(s.registers_per_sm));
  if (opts.stream < 0 ||
      static_cast<std::size_t>(opts.stream) >= streams_.size())
    throw std::out_of_range("launch: unknown stream " +
                            std::to_string(opts.stream));
}

namespace {

/// Decodes a linear block id into (x, y, z), x fastest.
Dim3 decode_block(std::uint64_t id, const Dim3& grid) {
  Dim3 b;
  b.x = static_cast<std::uint32_t>(id % grid.x);
  b.y = static_cast<std::uint32_t>((id / grid.x) % grid.y);
  b.z = static_cast<std::uint32_t>(id / (static_cast<std::uint64_t>(grid.x) * grid.y));
  return b;
}

/// Decodes a linear thread id within a block into (x, y, z), x fastest —
/// the packing order warps are formed in.
Dim3 decode_thread(std::uint64_t id, const Dim3& block) {
  Dim3 t;
  t.x = static_cast<std::uint32_t>(id % block.x);
  t.y = static_cast<std::uint32_t>((id / block.x) % block.y);
  t.z = static_cast<std::uint32_t>(
      id / (static_cast<std::uint64_t>(block.x) * block.y));
  return t;
}

/// Resolves a launch's fidelity against the process default.
bool warp_fidelity_enabled(const LaunchOptions& opts) {
  const Fidelity f =
      opts.fidelity == Fidelity::kDefault ? default_fidelity() : opts.fidelity;
  return f == Fidelity::kWarp;
}

/// Occupancy limiters travel through TraceEvent's numeric counters; prof
/// decodes the same table (see prof::kernel_report).
double limiter_code(const char* limiter) {
  const std::string_view l{limiter};
  if (l == "threads") return 1.0;
  if (l == "blocks") return 2.0;
  if (l == "shared_mem") return 3.0;
  if (l == "registers") return 4.0;
  return 0.0;
}

}  // namespace

LaunchResult Device::finish_launch(const std::string& name, const Dim3& grid,
                                   const Dim3& block,
                                   const LaunchOptions& opts,
                                   const WorkCounters& totals,
                                   const WarpStats* warp) {
  // validate_launch already rejected every shape occupancy_for refuses.
  const OccupancyResult occ =
      occupancy_for(timing_.spec(), block, opts.shared_mem_bytes,
                    opts.regs_per_thread)
          .value();
  KernelWork work;
  work.flops = totals.flops;
  work.global_bytes = totals.global_bytes;
  work.blocks = grid.total();
  work.threads = grid.total() * block.total();
  work.occupancy = occ.occupancy;
  work.lane_efficiency = occ.lane_efficiency;
  if (warp != nullptr && warp->issue_slots > 0) {
    // The folded traces subsume the static partial-warp estimate: masked
    // lanes simply recorded fewer ops.
    work.lane_efficiency = warp->simd_efficiency();
    work.issue_cycles = warp->issue_cycles();
    // Requested bytes with the API-recorded portion re-priced at what its
    // transactions actually moved (32B per touched sector).
    work.effective_bytes = std::max(
        0.0, totals.global_bytes - warp->api_bytes) +
        warp->effective_api_bytes();
  }
  const double duration = timing_.kernel_seconds(work);

  double start;
  {
    std::lock_guard lock(mutex_);
    start = stream_at(opts.stream).enqueue(duration);
  }

  prof::TraceEvent e;
  e.name = name;
  e.kind = prof::EventKind::kKernel;
  e.start_s = start;
  e.duration_s = duration;
  e.device = ordinal_;
  e.stream = opts.stream;
  e.counters["flops"] = totals.flops;
  e.counters["bytes"] = totals.global_bytes;
  e.counters["blocks"] = static_cast<double>(grid.total());
  e.counters["threads_per_block"] = static_cast<double>(block.total());
  e.counters["occupancy"] = occ.occupancy;
  e.counters["lane_efficiency"] = work.lane_efficiency;
  e.counters["limiter"] = limiter_code(occ.limiter);
  e.counters["regs_per_thread"] = static_cast<double>(occ.regs_per_thread);

  LaunchResult r;
  r.start_s = start;
  r.duration_s = duration;
  r.flops = totals.flops;
  r.bytes = totals.global_bytes;
  r.occupancy = occ.occupancy;
  r.lane_efficiency = work.lane_efficiency;
  r.limiter = occ.limiter;

  if (warp != nullptr) {
    r.warp_fidelity = true;
    r.divergence = 1.0 - work.lane_efficiency;
    r.effective_bytes =
        work.effective_bytes > 0.0 ? work.effective_bytes : totals.global_bytes;
    r.gld_transactions_per_request = warp->gld_transactions_per_request();
    r.gst_transactions_per_request = warp->gst_transactions_per_request();
    r.shared_bank_replays = warp->shared_replays;
    r.divergent_branches = warp->divergent_branches;
    r.warps = warp->warps;
    r.issue_slots = warp->issue_slots;

    e.counters["warp_fidelity"] = 1.0;
    e.counters["effective_bytes"] = r.effective_bytes;
    e.counters["divergence"] = r.divergence;
    e.counters["warps"] = static_cast<double>(warp->warps);
    e.counters["issue_slots"] = static_cast<double>(warp->issue_slots);
    e.counters["divergent_branches"] =
        static_cast<double>(warp->divergent_branches);
    e.counters["branches"] = static_cast<double>(warp->branches);
    e.counters["gld_requests"] = static_cast<double>(warp->gld_requests);
    e.counters["gld_transactions"] =
        static_cast<double>(warp->gld_transactions);
    e.counters["gst_requests"] = static_cast<double>(warp->gst_requests);
    e.counters["gst_transactions"] =
        static_cast<double>(warp->gst_transactions);
    e.counters["shared_requests"] =
        static_cast<double>(warp->shared_requests);
    e.counters["shared_replays"] = static_cast<double>(warp->shared_replays);
  }
  timeline_->record(std::move(e));
  return r;
}

LaunchResult Device::launch(const std::string& name, Dim3 grid, Dim3 block,
                            const ThreadKernel& kernel, LaunchOptions opts) {
  {
    std::lock_guard lock(mutex_);
    validate_launch(grid, block, opts);
  }
  const bool warp_mode = warp_fidelity_enabled(opts);
  WorkCounters totals;
  WarpStats warp_totals;
  std::mutex totals_mutex;

  executor_->parallel_for(grid.total(), [&](std::uint64_t block_id) {
    WorkCounters local;
    ThreadCtx ctx;
    ctx.grid_dim = grid;
    ctx.block_dim = block;
    ctx.block_idx = decode_block(block_id, grid);
    ctx.counters = &local;
    WarpStats wlocal;
    if (warp_mode) {
      // Same thread order as the analytic path (x fastest), chunked into
      // warps of warp_size lanes; each lane's ops fold at warp retirement.
      WarpRecorder rec(timing_.spec().warp_size);
      ctx.recorder = &rec;
      const std::uint64_t threads = block.total();
      std::uint64_t linear = 0;
      while (linear < threads) {
        const std::uint32_t lanes = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(timing_.spec().warp_size,
                                    threads - linear));
        rec.begin_scope(lanes);
        for (std::uint32_t l = 0; l < lanes; ++l, ++linear) {
          rec.set_slot(l);
          ctx.thread_idx = decode_thread(linear, block);
          kernel(ctx);
        }
        rec.end_scope();
      }
      wlocal = rec.take();
    } else {
      for (std::uint32_t z = 0; z < block.z; ++z)
        for (std::uint32_t y = 0; y < block.y; ++y)
          for (std::uint32_t x = 0; x < block.x; ++x) {
            ctx.thread_idx = Dim3{x, y, z};
            kernel(ctx);
          }
    }
    std::lock_guard lock(totals_mutex);
    totals.flops += local.flops;
    totals.global_bytes += local.global_bytes;
    if (warp_mode) warp_totals.merge(wlocal);
  });

  return finish_launch(name, grid, block, opts, totals,
                       warp_mode ? &warp_totals : nullptr);
}

LaunchResult Device::launch_blocks(const std::string& name, Dim3 grid,
                                   Dim3 block, const BlockKernel& kernel,
                                   LaunchOptions opts) {
  {
    std::lock_guard lock(mutex_);
    validate_launch(grid, block, opts);
  }
  const bool warp_mode = warp_fidelity_enabled(opts);
  WorkCounters totals;
  WarpStats warp_totals;
  std::mutex totals_mutex;

  executor_->parallel_for(grid.total(), [&](std::uint64_t block_id) {
    WorkCounters local;
    std::vector<std::byte> shared(opts.shared_mem_bytes);
    BlockCtx ctx;
    ctx.grid_dim = grid;
    ctx.block_dim = block;
    ctx.block_idx = decode_block(block_id, grid);
    ctx.shared = std::span<std::byte>(shared);
    ctx.counters = &local;
    WarpStats wlocal;
    if (warp_mode) {
      // for_each_thread phases open lockstep scopes on this recorder;
      // straight-line block code folds as single-lane work.
      WarpRecorder rec(timing_.spec().warp_size);
      ctx.recorder = &rec;
      kernel(ctx);
      wlocal = rec.take();
    } else {
      kernel(ctx);
    }
    std::lock_guard lock(totals_mutex);
    totals.flops += local.flops;
    totals.global_bytes += local.global_bytes;
    if (warp_mode) warp_totals.merge(wlocal);
  });

  return finish_launch(name, grid, block, opts, totals,
                       warp_mode ? &warp_totals : nullptr);
}

LaunchResult Device::launch_linear(const std::string& name, std::uint64_t n,
                                   std::uint32_t block_size,
                                   const ThreadKernel& kernel,
                                   LaunchOptions opts) {
  if (n == 0) throw std::invalid_argument("launch_linear: n must be > 0");
  if (block_size == 0)
    throw std::invalid_argument("launch_linear: block_size must be > 0");
  const Dim3 grid{div_up(n, block_size)};
  const Dim3 block{block_size};
  // Guard threads beyond n, like every CUDA 1-D kernel's `if (i < n)`;
  // going through ctx.branch lets warp fidelity see the tail mask.
  return launch(
      name, grid, block,
      [&](const ThreadCtx& ctx) {
        if (ctx.branch(ctx.global_x() < n)) kernel(ctx);
      },
      opts);
}

}  // namespace sagesim::gpu
