#include "gpusim/device.hpp"

#include <cstring>
#include <stdexcept>

#include "gpusim/occupancy.hpp"
#include "prof/check.hpp"

namespace sagesim::gpu {

Device::Device(int ordinal, DeviceSpec spec,
               std::shared_ptr<prof::Timeline> timeline, Executor* executor)
    : ordinal_(ordinal),
      timing_(std::move(spec)),
      memory_(timing_.spec().global_mem_bytes),
      timeline_(std::move(timeline)),
      executor_(executor) {
  if (!timeline_)
    throw std::invalid_argument("Device: timeline must not be null");
  SAGESIM_CHECK(executor_ != nullptr);
  streams_.emplace_back(0);
}

int Device::create_stream() {
  std::lock_guard lock(mutex_);
  const int ordinal = static_cast<int>(streams_.size());
  streams_.emplace_back(ordinal);
  return ordinal;
}

int Device::comm_stream() {
  std::lock_guard lock(mutex_);
  if (comm_stream_ < 0) {
    comm_stream_ = static_cast<int>(streams_.size());
    streams_.emplace_back(comm_stream_);
  }
  return comm_stream_;
}

std::size_t Device::stream_count() const {
  std::lock_guard lock(mutex_);
  return streams_.size();
}

Stream& Device::stream_at(int stream) {
  if (stream < 0 || static_cast<std::size_t>(stream) >= streams_.size())
    throw std::out_of_range("Device: unknown stream " +
                            std::to_string(stream));
  return streams_[static_cast<std::size_t>(stream)];
}

const Stream& Device::stream_at(int stream) const {
  if (stream < 0 || static_cast<std::size_t>(stream) >= streams_.size())
    throw std::out_of_range("Device: unknown stream " +
                            std::to_string(stream));
  return streams_[static_cast<std::size_t>(stream)];
}

double Device::stream_time(int stream) const {
  std::lock_guard lock(mutex_);
  return stream_at(stream).cursor_s();
}

Event Device::record_event(int stream) {
  std::lock_guard lock(mutex_);
  return Event{stream_at(stream).cursor_s(), ordinal_, stream};
}

void Device::wait_event(int stream, const Event& event) {
  std::lock_guard lock(mutex_);
  stream_at(stream).wait_until(event.time_s);
}

double Device::synchronize() {
  std::lock_guard lock(mutex_);
  double latest = 0.0;
  for (const auto& s : streams_) latest = std::max(latest, s.cursor_s());
  // Synchronization is itself an API call: all streams align to the fence.
  latest += timing_.api_overhead_seconds();
  for (auto& s : streams_) s.wait_until(latest);
  return latest;
}

void* Device::device_malloc(std::size_t bytes) {
  void* ptr = memory_.allocate(bytes);
  charge("cudaMalloc", prof::EventKind::kApi, timing_.api_overhead_seconds());
  return ptr;
}

void Device::device_free(void* ptr) {
  memory_.free(ptr);
  charge("cudaFree", prof::EventKind::kApi, timing_.api_overhead_seconds());
}

void Device::copy_h2d(void* dst, const void* src, std::size_t bytes,
                      int stream, bool pinned) {
  if (!memory_.owns(dst))
    throw std::invalid_argument("copy_h2d: dst is not device memory");
  if (memory_.size_of(dst) < bytes)
    throw std::invalid_argument("copy_h2d: copy overruns destination");
  std::memcpy(dst, src, bytes);
  charge(pinned ? "memcpy_h2d" : "memcpy_h2d_pageable",
         prof::EventKind::kMemcpyH2D,
         timing_.transfer_seconds(bytes, pinned), stream,
         {{"bytes", static_cast<double>(bytes)}});
}

void Device::copy_d2h(void* dst, const void* src, std::size_t bytes,
                      int stream, bool pinned) {
  if (!memory_.owns(src))
    throw std::invalid_argument("copy_d2h: src is not device memory");
  if (memory_.size_of(src) < bytes)
    throw std::invalid_argument("copy_d2h: copy overruns source");
  std::memcpy(dst, src, bytes);
  charge(pinned ? "memcpy_d2h" : "memcpy_d2h_pageable",
         prof::EventKind::kMemcpyD2H,
         timing_.transfer_seconds(bytes, pinned), stream,
         {{"bytes", static_cast<double>(bytes)}});
}

void Device::copy_d2d(void* dst, const void* src, std::size_t bytes,
                      int stream) {
  if (!memory_.owns(dst) || !memory_.owns(src))
    throw std::invalid_argument("copy_d2d: both pointers must be device memory");
  if (memory_.size_of(dst) < bytes || memory_.size_of(src) < bytes)
    throw std::invalid_argument("copy_d2d: copy overruns an allocation");
  std::memmove(dst, src, bytes);
  // On-device copies read+write global memory at full bandwidth.
  const double dur =
      2.0 * static_cast<double>(bytes) / timing_.spec().peak_bytes_per_s();
  charge("memcpy_d2d", prof::EventKind::kMemcpyD2D, dur, stream,
         {{"bytes", static_cast<double>(bytes)}});
}

void Device::charge(const std::string& name, prof::EventKind kind,
                    double duration_s, int stream,
                    std::map<std::string, double> counters) {
  double start;
  {
    std::lock_guard lock(mutex_);
    start = stream_at(stream).enqueue(duration_s);
  }
  prof::TraceEvent e;
  e.name = name;
  e.kind = kind;
  e.start_s = start;
  e.duration_s = duration_s;
  e.device = ordinal_;
  e.stream = stream;
  e.counters = std::move(counters);
  timeline_->record(std::move(e));
}

void Device::validate_launch(const Dim3& grid, const Dim3& block,
                             const LaunchOptions& opts) const {
  const auto& s = timing_.spec();
  if (grid.total() == 0 || block.total() == 0)
    throw std::invalid_argument("launch: empty grid or block");
  if (block.total() > s.max_threads_per_block)
    throw std::invalid_argument(
        "launch: block has " + std::to_string(block.total()) +
        " threads; device max is " + std::to_string(s.max_threads_per_block));
  if (opts.shared_mem_bytes > s.shared_mem_per_block)
    throw std::invalid_argument(
        "launch: shared memory request exceeds per-block limit");
  if (opts.stream < 0 ||
      static_cast<std::size_t>(opts.stream) >= streams_.size())
    throw std::out_of_range("launch: unknown stream " +
                            std::to_string(opts.stream));
}

namespace {

/// Decodes a linear block id into (x, y, z), x fastest.
Dim3 decode_block(std::uint64_t id, const Dim3& grid) {
  Dim3 b;
  b.x = static_cast<std::uint32_t>(id % grid.x);
  b.y = static_cast<std::uint32_t>((id / grid.x) % grid.y);
  b.z = static_cast<std::uint32_t>(id / (static_cast<std::uint64_t>(grid.x) * grid.y));
  return b;
}

}  // namespace

LaunchResult Device::finish_launch(const std::string& name, const Dim3& grid,
                                   const Dim3& block,
                                   const LaunchOptions& opts,
                                   const WorkCounters& totals) {
  const auto occ = occupancy_for(timing_.spec(), block, opts.shared_mem_bytes);
  KernelWork work;
  work.flops = totals.flops;
  work.global_bytes = totals.global_bytes;
  work.blocks = grid.total();
  work.threads = grid.total() * block.total();
  work.occupancy = occ.occupancy;
  work.lane_efficiency = occ.lane_efficiency;
  const double duration = timing_.kernel_seconds(work);

  double start;
  {
    std::lock_guard lock(mutex_);
    start = stream_at(opts.stream).enqueue(duration);
  }

  prof::TraceEvent e;
  e.name = name;
  e.kind = prof::EventKind::kKernel;
  e.start_s = start;
  e.duration_s = duration;
  e.device = ordinal_;
  e.stream = opts.stream;
  e.counters["flops"] = totals.flops;
  e.counters["bytes"] = totals.global_bytes;
  e.counters["blocks"] = static_cast<double>(grid.total());
  e.counters["threads_per_block"] = static_cast<double>(block.total());
  e.counters["occupancy"] = occ.occupancy;
  timeline_->record(std::move(e));

  LaunchResult r;
  r.start_s = start;
  r.duration_s = duration;
  r.flops = totals.flops;
  r.bytes = totals.global_bytes;
  r.occupancy = occ.occupancy;
  return r;
}

LaunchResult Device::launch(const std::string& name, Dim3 grid, Dim3 block,
                            const ThreadKernel& kernel, LaunchOptions opts) {
  {
    std::lock_guard lock(mutex_);
    validate_launch(grid, block, opts);
  }
  WorkCounters totals;
  std::mutex totals_mutex;

  executor_->parallel_for(grid.total(), [&](std::uint64_t block_id) {
    WorkCounters local;
    ThreadCtx ctx;
    ctx.grid_dim = grid;
    ctx.block_dim = block;
    ctx.block_idx = decode_block(block_id, grid);
    ctx.counters = &local;
    for (std::uint32_t z = 0; z < block.z; ++z)
      for (std::uint32_t y = 0; y < block.y; ++y)
        for (std::uint32_t x = 0; x < block.x; ++x) {
          ctx.thread_idx = Dim3{x, y, z};
          kernel(ctx);
        }
    std::lock_guard lock(totals_mutex);
    totals.flops += local.flops;
    totals.global_bytes += local.global_bytes;
  });

  return finish_launch(name, grid, block, opts, totals);
}

LaunchResult Device::launch_blocks(const std::string& name, Dim3 grid,
                                   Dim3 block, const BlockKernel& kernel,
                                   LaunchOptions opts) {
  {
    std::lock_guard lock(mutex_);
    validate_launch(grid, block, opts);
  }
  WorkCounters totals;
  std::mutex totals_mutex;

  executor_->parallel_for(grid.total(), [&](std::uint64_t block_id) {
    WorkCounters local;
    std::vector<std::byte> shared(opts.shared_mem_bytes);
    BlockCtx ctx;
    ctx.grid_dim = grid;
    ctx.block_dim = block;
    ctx.block_idx = decode_block(block_id, grid);
    ctx.shared = std::span<std::byte>(shared);
    ctx.counters = &local;
    kernel(ctx);
    std::lock_guard lock(totals_mutex);
    totals.flops += local.flops;
    totals.global_bytes += local.global_bytes;
  });

  return finish_launch(name, grid, block, opts, totals);
}

LaunchResult Device::launch_linear(const std::string& name, std::uint64_t n,
                                   std::uint32_t block_size,
                                   const ThreadKernel& kernel,
                                   LaunchOptions opts) {
  if (n == 0) throw std::invalid_argument("launch_linear: n must be > 0");
  if (block_size == 0)
    throw std::invalid_argument("launch_linear: block_size must be > 0");
  const Dim3 grid{div_up(n, block_size)};
  const Dim3 block{block_size};
  // Guard threads beyond n, like every CUDA 1-D kernel's `if (i < n)`.
  return launch(
      name, grid, block,
      [&](const ThreadCtx& ctx) {
        if (ctx.global_x() < n) kernel(ctx);
      },
      opts);
}

}  // namespace sagesim::gpu
