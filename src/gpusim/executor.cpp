#include "gpusim/executor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>

namespace sagesim::gpu {

Executor::Executor(unsigned workers) {
  if (workers == 0) {
    sched_ = &runtime::Scheduler::shared();
  } else {
    owned_ = std::make_unique<runtime::Scheduler>(workers);
    sched_ = owned_.get();
  }
}

namespace {

// Heap-allocated so helper tasks can safely outlive the caller's stack frame
// (a helper that claims no chunk still touches the counters on its way out).
struct ForState {
  std::uint64_t n;
  std::uint64_t chunks;
  const std::function<void(std::uint64_t)>* fn;
  std::atomic<std::uint64_t> next_chunk{0};
  std::atomic<bool> aborted{false};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::uint64_t done_chunks{0};  // guarded by mutex
  std::exception_ptr first_error;  // guarded by mutex

  void run_chunks() {
    for (;;) {
      const std::uint64_t c = next_chunk.fetch_add(1);
      if (c >= chunks) return;
      const std::uint64_t begin = c * n / chunks;
      const std::uint64_t end = (c + 1) * n / chunks;
      std::exception_ptr error;
      // A thrown body aborts the loop: chunks claimed after the failure is
      // published are drained without invoking fn (chunks already mid-body
      // on other workers still finish).  Claim accounting is unchanged, so
      // the caller's wait stays bounded.
      if (!aborted.load(std::memory_order_acquire)) {
        try {
          for (std::uint64_t i = begin; i < end; ++i) (*fn)(i);
        } catch (...) {
          error = std::current_exception();
          aborted.store(true, std::memory_order_release);
        }
      }
      {
        std::lock_guard lock(mutex);
        if (error && !first_error) first_error = error;
        if (++done_chunks == chunks) done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void Executor::parallel_for(std::uint64_t n,
                            const std::function<void(std::uint64_t)>& fn,
                            std::uint64_t grain) {
  if (n == 0) return;
  const unsigned workers = worker_count();
  // Enough chunks for balance, few enough to amortize queueing — and no
  // chunk smaller than the caller's grain.
  const std::uint64_t by_grain =
      grain > 1 ? std::max<std::uint64_t>(1, n / grain) : n;
  const std::uint64_t chunks =
      std::min({n, static_cast<std::uint64_t>(workers) * 4u, by_grain});
  if (chunks == 1 || workers == 1) {
    for (std::uint64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->chunks = chunks;
  state->fn = &fn;  // fn outlives the wait below

  // Stealable helper tasks; the caller participates too, so every chunk is
  // claimed even if the pool is saturated (nested parallel_for included).
  // Helpers are unnamed: per-chunk spans would swamp the runtime timeline.
  for (unsigned i = 0; i + 1 < workers && i + 1 < state->chunks; ++i)
    sched_->submit_any({}, [state]() -> std::any {
      state->run_chunks();
      return {};
    });
  state->run_chunks();

  // Every chunk is claimed exactly once and each claimant finishes what it
  // claimed, so this wait is bounded; `fn` stays alive until the last
  // claimed chunk signals.
  std::unique_lock lock(state->mutex);
  state->done_cv.wait(lock, [&] { return state->done_chunks == state->chunks; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

Executor& Executor::shared() {
  static Executor instance;
  return instance;
}

}  // namespace sagesim::gpu
