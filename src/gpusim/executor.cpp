#include "gpusim/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace sagesim::gpu {

Executor::Executor(unsigned workers) {
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

Executor::~Executor() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void Executor::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {

// Heap-allocated so helper tasks can safely outlive the caller's stack frame
// (a helper that claims no chunk still touches the counters on its way out).
struct ForState {
  std::uint64_t n;
  std::uint64_t chunks;
  const std::function<void(std::uint64_t)>* fn;
  std::atomic<std::uint64_t> next_chunk{0};
  std::atomic<std::uint64_t> done_chunks{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  void run_chunks() {
    for (;;) {
      const std::uint64_t c = next_chunk.fetch_add(1);
      if (c >= chunks) return;
      const std::uint64_t begin = c * n / chunks;
      const std::uint64_t end = (c + 1) * n / chunks;
      try {
        for (std::uint64_t i = begin; i < end; ++i) (*fn)(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      done_chunks.fetch_add(1, std::memory_order_release);
    }
  }
};

}  // namespace

void Executor::parallel_for(std::uint64_t n,
                            const std::function<void(std::uint64_t)>& fn) {
  if (n == 0) return;
  const unsigned workers = worker_count();
  if (n == 1 || workers == 1) {
    for (std::uint64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  // Enough chunks for balance, few enough to amortize queueing.
  state->chunks = std::min<std::uint64_t>(n, workers * 4ull);
  state->fn = &fn;  // fn outlives the wait loop below

  {
    std::lock_guard lock(mutex_);
    for (unsigned i = 0; i + 1 < workers && i + 1 < state->chunks; ++i)
      tasks_.push([state] { state->run_chunks(); });
  }
  cv_.notify_all();
  state->run_chunks();

  // All chunks are claimed exactly once, so this wait is bounded.  `fn` must
  // stay alive until every claimed chunk finishes, which this loop ensures.
  while (state->done_chunks.load(std::memory_order_acquire) < state->chunks)
    std::this_thread::yield();

  std::lock_guard lock(state->error_mutex);
  if (state->first_error) std::rethrow_exception(state->first_error);
}

Executor& Executor::shared() {
  static Executor instance;
  return instance;
}

}  // namespace sagesim::gpu
