// Analytic timing model: converts the work a kernel/transfer *did* into the
// simulated seconds it *would have taken* on the modeled hardware.
//
// The model is a classic roofline with two refinements the course's labs
// rely on:
//   * a fixed launch overhead, so tiny kernels are latency-bound;
//   * an occupancy factor from the launch configuration, so bad block sizes
//     visibly waste the machine (Week 2's "threads, blocks, grids" lab).
#pragma once

#include <cstdint>

#include "gpusim/device_spec.hpp"
#include "gpusim/dim3.hpp"

namespace sagesim::gpu {

/// Work counters accumulated while a kernel executed on the host.
struct KernelWork {
  double flops{0.0};          ///< floating-point operations performed
  double global_bytes{0.0};   ///< bytes moved to/from device global memory
  std::uint64_t threads{0};   ///< total launched threads
  std::uint64_t blocks{0};    ///< total launched blocks
  double occupancy{1.0};      ///< achieved occupancy in (0, 1]
  /// Fraction of lanes doing useful work inside an active warp; partial
  /// final warps and divergent kernels lower it.
  double lane_efficiency{1.0};
  /// Transaction-derived DRAM bytes from the warp-level coalescing model
  /// (32B sectors actually touched).  0 means "not measured": the model
  /// falls back to global_bytes.
  double effective_bytes{0.0};
  /// Warp-instruction issues including divergence serialization and
  /// shared-memory bank-conflict replays (warp fidelity).  0 means "not
  /// measured": the model falls back to the per-thread issue floor.
  double issue_cycles{0.0};
};

class TimingModel {
 public:
  explicit TimingModel(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Modeled kernel duration in seconds.
  ///
  /// duration = launch_overhead
  ///          + max( flops / (peak_flops * occupancy * lane_efficiency),
  ///                 bytes / peak_bandwidth,
  ///                 sequential issue floor )
  ///
  /// The issue floor charges each thread one cycle per ~4 flops of work so
  /// kernels with almost no arithmetic still cost thread-issue time.
  double kernel_seconds(const KernelWork& work) const;

  /// Modeled host<->device transfer time for @p bytes.  Pinned host
  /// memory sustains full link bandwidth; pageable staging runs at ~55%
  /// (the classic cudaMemcpy pageable penalty the Week-3 lab measures).
  /// Host memory is pageable unless something pinned it (cudaHostAlloc /
  /// mem::Buffer::host_pinned), so pageable is the default.
  double transfer_seconds(std::uint64_t bytes, bool pinned = false) const;

  /// Modeled device<->device (peer) transfer time: assumes an NVLink-less
  /// PCIe peer path at the same link bandwidth.
  double peer_transfer_seconds(std::uint64_t bytes) const;

  /// Fixed API-call overhead (alloc/free/sync), seconds.
  double api_overhead_seconds() const { return 1e-6; }

 private:
  DeviceSpec spec_;
};

}  // namespace sagesim::gpu
