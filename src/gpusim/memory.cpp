#include "gpusim/memory.hpp"

#include <algorithm>
#include <atomic>
#include <string>
#include <unordered_set>

namespace sagesim::gpu {

namespace {

// Liveness registry keyed by the monotonic instance id.  Leaked so buffers
// freed during static destruction can still consult it.
std::mutex& live_mutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

std::unordered_set<std::uint64_t>& live_ids() {
  static auto* ids = new std::unordered_set<std::uint64_t>();
  return *ids;
}

std::uint64_t next_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

DeviceMemory::DeviceMemory(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes), id_(next_id()) {
  std::lock_guard lock(live_mutex());
  live_ids().insert(id_);
}

DeviceMemory::~DeviceMemory() {
  std::lock_guard lock(live_mutex());
  live_ids().erase(id_);
}

bool DeviceMemory::alive(std::uint64_t id) {
  std::lock_guard lock(live_mutex());
  return live_ids().count(id) != 0;
}

void* DeviceMemory::allocate(std::size_t bytes) {
  Expected<void*> p = try_allocate(bytes);
  if (p) return *p;
  // Preserve the historical exception surface for the throwing path.
  if (p.status().code() == ErrorCode::kInvalidArgument)
    throw std::invalid_argument(p.status().message());
  throw DeviceOutOfMemory(p.status().message());
}

Expected<void*> DeviceMemory::try_allocate(std::size_t bytes) {
  if (bytes == 0)
    return Status::invalid_argument(
        "DeviceMemory::allocate: zero-byte request");
  std::lock_guard lock(mutex_);
  if (used_ + bytes > capacity_)
    return Status::resource_exhausted(
        "device out of memory: requested " + std::to_string(bytes) +
        " bytes with " + std::to_string(capacity_ - used_) + " of " +
        std::to_string(capacity_) + " free");
  Block block;
  block.storage = std::make_unique<std::byte[]>(bytes);
  block.size = bytes;
  void* ptr = block.storage.get();
  blocks_.emplace(reinterpret_cast<std::uintptr_t>(ptr), std::move(block));
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  return ptr;
}

std::map<std::uintptr_t, DeviceMemory::Block>::const_iterator
DeviceMemory::find_containing(const void* ptr) const {
  const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  auto it = blocks_.upper_bound(addr);
  if (it == blocks_.begin()) return blocks_.end();
  --it;
  if (addr < it->first + it->second.size) return it;
  return blocks_.end();
}

void DeviceMemory::free(void* ptr) {
  std::lock_guard lock(mutex_);
  auto it = blocks_.find(reinterpret_cast<std::uintptr_t>(ptr));
  if (it == blocks_.end())
    throw std::invalid_argument(
        "DeviceMemory::free: not a live base pointer");
  used_ -= it->second.size;
  blocks_.erase(it);
}

bool DeviceMemory::owns(const void* ptr) const {
  std::lock_guard lock(mutex_);
  return find_containing(ptr) != blocks_.end();
}

std::size_t DeviceMemory::size_of(const void* ptr) const {
  std::lock_guard lock(mutex_);
  auto it = find_containing(ptr);
  if (it == blocks_.end())
    throw std::invalid_argument("DeviceMemory::size_of: unknown pointer");
  return it->second.size -
         (reinterpret_cast<std::uintptr_t>(ptr) - it->first);
}

std::uint64_t DeviceMemory::used_bytes() const {
  std::lock_guard lock(mutex_);
  return used_;
}

std::uint64_t DeviceMemory::peak_bytes() const {
  std::lock_guard lock(mutex_);
  return peak_;
}

std::size_t DeviceMemory::live_allocations() const {
  std::lock_guard lock(mutex_);
  return blocks_.size();
}

}  // namespace sagesim::gpu
