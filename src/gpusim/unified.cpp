#include "gpusim/unified.hpp"

#include <algorithm>
#include <stdexcept>

namespace sagesim::gpu {

ManagedAllocation::ManagedAllocation(Device& device, std::size_t bytes)
    : device_(device), bytes_(bytes) {
  if (bytes == 0)
    throw std::invalid_argument("ManagedAllocation: zero-byte request");
  // Managed memory counts against device capacity when resident there; we
  // conservatively reserve it up front (CUDA oversubscription is out of
  // scope for the course model).
  data_ = device_.device_malloc(bytes);
  pages_.assign((bytes + kPageBytes - 1) / kPageBytes, PageLocation::kHost);
}

ManagedAllocation::~ManagedAllocation() { device_.device_free(data_); }

PageLocation ManagedAllocation::page_location(std::size_t page) const {
  if (page >= pages_.size())
    throw std::out_of_range("ManagedAllocation: page index out of range");
  return pages_[page];
}

std::size_t ManagedAllocation::device_resident_pages() const {
  return static_cast<std::size_t>(
      std::count(pages_.begin(), pages_.end(), PageLocation::kDevice));
}

std::size_t ManagedAllocation::fault_range(PageLocation target,
                                           std::size_t offset,
                                           std::size_t length, int stream) {
  if (offset + length > bytes_)
    throw std::out_of_range("ManagedAllocation::fault_range: beyond buffer");
  if (length == 0) return 0;

  const std::size_t first = offset / kPageBytes;
  const std::size_t last = (offset + length - 1) / kPageBytes;
  std::size_t moved = 0;
  for (std::size_t p = first; p <= last; ++p) {
    if (pages_[p] == target) continue;
    pages_[p] = target;
    ++moved;
  }
  if (moved == 0) return 0;

  // Each faulted page pays fault latency plus its own transfer; demand
  // migration serializes fault handling with the copy and reaches only
  // about half of link bandwidth — the demand-paging penalty the
  // Numba-UM papers measure.
  const std::size_t page_bytes = std::min(kPageBytes, bytes_);
  const double per_page = kFaultLatencyS +
                          static_cast<double>(page_bytes) /
                              (0.5 * device_.spec().pcie_bytes_per_s());
  const double total = static_cast<double>(moved) * per_page;
  faults_ += moved;
  migrated_bytes_ += moved * page_bytes;
  device_.charge(target == PageLocation::kDevice ? "um_fault_h2d"
                                                 : "um_fault_d2h",
                 target == PageLocation::kDevice
                     ? prof::EventKind::kMemcpyH2D
                     : prof::EventKind::kMemcpyD2H,
                 total, stream,
                 {{"bytes", static_cast<double>(moved * page_bytes)},
                  {"pages", static_cast<double>(moved)}});
  return moved;
}

std::size_t ManagedAllocation::prefetch(PageLocation target, int stream) {
  std::size_t moved = 0;
  for (auto& loc : pages_) {
    if (loc == target) continue;
    loc = target;
    ++moved;
  }
  if (moved == 0) return 0;
  const std::size_t moved_bytes =
      std::min(moved * kPageBytes, bytes_);
  migrated_bytes_ += moved_bytes;
  // The UM migration engine DMAs pages directly — pinned-path bandwidth.
  const double total =
      device_.timing().transfer_seconds(moved_bytes, /*pinned=*/true);
  device_.charge(target == PageLocation::kDevice ? "um_prefetch_h2d"
                                                 : "um_prefetch_d2h",
                 target == PageLocation::kDevice
                     ? prof::EventKind::kMemcpyH2D
                     : prof::EventKind::kMemcpyD2H,
                 total, stream,
                 {{"bytes", static_cast<double>(moved_bytes)},
                  {"pages", static_cast<double>(moved)}});
  return moved;
}

}  // namespace sagesim::gpu
