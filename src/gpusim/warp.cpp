#include "gpusim/warp.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "prof/check.hpp"

namespace sagesim::gpu {

namespace {

Fidelity read_env_fidelity() {
  const char* v = std::getenv("SAGESIM_GPU_FIDELITY");
  if (v != nullptr && std::strcmp(v, "warp") == 0) return Fidelity::kWarp;
  return Fidelity::kAnalytic;
}

// kDefault doubles as "not resolved yet": the first default_fidelity() call
// after startup (or after set_default_fidelity(kDefault)) reads the env.
std::atomic<Fidelity> g_default{Fidelity::kDefault};

}  // namespace

Fidelity default_fidelity() {
  Fidelity f = g_default.load(std::memory_order_relaxed);
  if (f != Fidelity::kDefault) return f;
  f = read_env_fidelity();
  g_default.store(f, std::memory_order_relaxed);
  return f;
}

void set_default_fidelity(Fidelity f) {
  g_default.store(f, std::memory_order_relaxed);
}

void WarpStats::merge(const WarpStats& o) {
  lane_width = std::max(lane_width, o.lane_width);
  warps += o.warps;
  issue_slots += o.issue_slots;
  lane_ops += o.lane_ops;
  branches += o.branches;
  divergent_branches += o.divergent_branches;
  gld_requests += o.gld_requests;
  gld_transactions += o.gld_transactions;
  gst_requests += o.gst_requests;
  gst_transactions += o.gst_transactions;
  shared_requests += o.shared_requests;
  shared_replays += o.shared_replays;
  api_bytes += o.api_bytes;
}

WarpRecorder::WarpRecorder(std::uint32_t warp_size) : warp_size_(warp_size) {
  SAGESIM_CHECK(warp_size_ > 0);
  stats_.lane_width = warp_size_;
}

void WarpRecorder::begin_scope(std::uint32_t slots) {
  fold();
  lanes_.assign(slots, {});
  cur_ = 0;
}

void WarpRecorder::set_slot(std::uint32_t slot) {
  SAGESIM_CHECK(slot < lanes_.size());
  cur_ = slot;
}

void WarpRecorder::end_scope() { fold(); }

void WarpRecorder::ensure_serial_scope() {
  if (lanes_.empty()) {
    lanes_.assign(1, {});
    cur_ = 0;
  }
}

void WarpRecorder::record_flop() {
  ensure_serial_scope();
  lanes_[cur_].push_back(Op{OpKind::kFlop, false, 0, 0});
}

void WarpRecorder::record_branch(bool taken) {
  ensure_serial_scope();
  lanes_[cur_].push_back(Op{OpKind::kBranch, taken, 0, 0});
}

void WarpRecorder::record_global(std::uint64_t addr, std::uint32_t bytes,
                                 bool store) {
  ensure_serial_scope();
  lanes_[cur_].push_back(Op{store ? OpKind::kGlobalStore : OpKind::kGlobalLoad,
                            false, bytes, addr});
}

void WarpRecorder::record_shared(std::uint64_t byte_offset,
                                 std::uint32_t bytes) {
  ensure_serial_scope();
  lanes_[cur_].push_back(Op{OpKind::kShared, false, bytes, byte_offset});
}

WarpStats WarpRecorder::take() {
  fold();
  WarpStats out = stats_;
  stats_ = WarpStats{};
  stats_.lane_width = warp_size_;
  return out;
}

void WarpRecorder::fold() {
  for (std::size_t first = 0; first < lanes_.size(); first += warp_size_) {
    const std::uint32_t count = static_cast<std::uint32_t>(
        std::min<std::size_t>(warp_size_, lanes_.size() - first));
    fold_warp(first, count);
  }
  lanes_.clear();
  cur_ = 0;
}

void WarpRecorder::fold_warp(std::size_t first, std::uint32_t count) {
  // Split each lane's trace into segments delimited by its branch records;
  // outcomes[i] is the branch that ended segment i.
  struct LaneView {
    const std::vector<Op>* ops{nullptr};
    std::vector<std::pair<std::uint32_t, std::uint32_t>> segs;  // [begin, end)
    std::vector<bool> outcomes;
  };
  std::vector<LaneView> lanes(count);
  bool any = false;
  std::size_t max_segs = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    LaneView& v = lanes[i];
    v.ops = &lanes_[first + i];
    std::uint32_t beg = 0;
    for (std::uint32_t j = 0; j < v.ops->size(); ++j) {
      if ((*v.ops)[j].kind == OpKind::kBranch) {
        v.segs.emplace_back(beg, j);
        v.outcomes.push_back((*v.ops)[j].taken);
        beg = j + 1;
      }
    }
    v.segs.emplace_back(beg, static_cast<std::uint32_t>(v.ops->size()));
    stats_.lane_ops += v.ops->size();
    if (!v.ops->empty()) any = true;
    max_segs = std::max(max_segs, v.segs.size());
  }
  if (!any) return;
  ++stats_.warps;

  // Scratch reused across instruction slots.
  std::vector<std::uint64_t> sectors;
  std::vector<std::uint64_t> words;

  for (std::size_t seg = 0; seg < max_segs; ++seg) {
    // Lanes participating in this segment, grouped by the outcome of the
    // branch that started it (segment 0 has a single group: the full mask).
    std::vector<std::uint32_t> groups[2];
    if (seg == 0) {
      for (std::uint32_t i = 0; i < count; ++i) groups[0].push_back(i);
    } else {
      for (std::uint32_t i = 0; i < count; ++i)
        if (lanes[i].outcomes.size() >= seg)
          groups[lanes[i].outcomes[seg - 1] ? 0 : 1].push_back(i);
      const bool taken = !groups[0].empty();
      const bool fell = !groups[1].empty();
      if (taken || fell) {
        ++stats_.branches;
        // The branch instruction issues once per outcome group it has to
        // steer; a divergent branch also counts toward the divergence rate.
        stats_.issue_slots += (taken && fell) ? 2 : 1;
        if (taken && fell) ++stats_.divergent_branches;
      }
    }

    for (const auto& group : groups) {
      if (group.empty()) continue;
      std::uint32_t slots = 0;
      for (const std::uint32_t i : group)
        if (lanes[i].segs.size() > seg)
          slots = std::max(slots, lanes[i].segs[seg].second -
                                      lanes[i].segs[seg].first);
      stats_.issue_slots += slots;

      for (std::uint32_t k = 0; k < slots; ++k) {
        // One warp-level instruction: the ops the group's lanes recorded at
        // the same position.  Memory ops coalesce / conflict per kind.
        std::uint32_t n_gld = 0, n_gst = 0, n_shared = 0;
        sectors.clear();
        std::vector<std::uint64_t> st_sectors;
        words.clear();
        double bytes = 0.0;
        for (const std::uint32_t i : group) {
          const LaneView& v = lanes[i];
          if (v.segs.size() <= seg) continue;
          const auto [beg, end] = v.segs[seg];
          if (beg + k >= end) continue;
          const Op& op = (*v.ops)[beg + k];
          switch (op.kind) {
            case OpKind::kGlobalLoad:
            case OpKind::kGlobalStore: {
              const bool store = op.kind == OpKind::kGlobalStore;
              if (store)
                ++n_gst;
              else
                ++n_gld;
              bytes += op.bytes;
              auto& out = store ? st_sectors : sectors;
              const std::uint64_t last =
                  (op.addr + (op.bytes == 0 ? 0 : op.bytes - 1)) /
                  WarpStats::kSectorBytes;
              for (std::uint64_t s = op.addr / WarpStats::kSectorBytes;
                   s <= last; ++s)
                out.push_back(s);
              break;
            }
            case OpKind::kShared: {
              ++n_shared;
              const std::uint64_t last =
                  (op.addr + (op.bytes == 0 ? 0 : op.bytes - 1)) /
                  WarpStats::kBankWidthBytes;
              for (std::uint64_t w = op.addr / WarpStats::kBankWidthBytes;
                   w <= last; ++w)
                words.push_back(w);
              break;
            }
            case OpKind::kFlop:
            case OpKind::kBranch:
              break;
          }
        }
        stats_.api_bytes += bytes;
        const auto distinct = [](std::vector<std::uint64_t>& v) {
          std::sort(v.begin(), v.end());
          return static_cast<std::uint64_t>(
              std::unique(v.begin(), v.end()) - v.begin());
        };
        if (n_gld > 0) {
          ++stats_.gld_requests;
          stats_.gld_transactions += distinct(sectors);
        }
        if (n_gst > 0) {
          ++stats_.gst_requests;
          stats_.gst_transactions += distinct(st_sectors);
        }
        if (n_shared > 0) {
          ++stats_.shared_requests;
          // N-way conflict: N distinct 4B words mapped to one bank replay
          // the instruction N-1 times; a broadcast (same word) is free.
          std::sort(words.begin(), words.end());
          words.erase(std::unique(words.begin(), words.end()), words.end());
          std::uint32_t per_bank[WarpStats::kBankCount] = {};
          std::uint32_t degree = 1;
          for (const std::uint64_t w : words) {
            const std::uint32_t b =
                static_cast<std::uint32_t>(w % WarpStats::kBankCount);
            degree = std::max(degree, ++per_bank[b]);
          }
          stats_.shared_replays += degree - 1;
        }
      }
    }
  }
}

}  // namespace sagesim::gpu
