// Hardware description of a simulated GPU plus a catalog of the accelerator
// models the course's AWS instances expose (T4 on g4dn, A10G on g5, V100 on
// p3).  The numbers are the public datasheet figures; the timing model uses
// them as roofline peaks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sagesim::gpu {

/// Static parameters of one simulated GPU.
struct DeviceSpec {
  std::string name;                 ///< e.g. "T4-sim"
  std::uint32_t sm_count{40};       ///< streaming multiprocessors
  std::uint32_t cores_per_sm{64};   ///< FP32 lanes per SM
  double clock_ghz{1.59};           ///< boost clock
  std::uint64_t global_mem_bytes{16ull << 30};
  double mem_bandwidth_gbps{320.0};   ///< device-memory bandwidth, GB/s
  double pcie_bandwidth_gbps{12.0};   ///< effective host link bandwidth, GB/s
  double pcie_latency_us{8.0};        ///< per-transfer fixed cost
  double launch_overhead_us{6.0};     ///< per-kernel-launch fixed cost
  std::uint32_t warp_size{32};
  std::uint32_t max_threads_per_block{1024};
  std::uint32_t max_blocks_per_sm{16};
  std::uint32_t max_threads_per_sm{1024};
  std::uint64_t shared_mem_per_block{48ull << 10};
  std::uint64_t shared_mem_per_sm{64ull << 10};
  /// 32-bit registers in the SM register file (64K on every modeled part).
  std::uint32_t registers_per_sm{64u << 10};
  /// Per-thread register estimate assumed when a launch does not state one
  /// (LaunchOptions::regs_per_thread); 32 is nvcc's typical default budget.
  std::uint32_t default_regs_per_thread{32};

  /// Peak FP32 throughput in FLOP/s (2 flops per FMA lane-cycle).
  double peak_flops() const {
    return 2.0 * sm_count * cores_per_sm * clock_ghz * 1e9;
  }

  /// Peak device-memory bandwidth in bytes/s.
  double peak_bytes_per_s() const { return mem_bandwidth_gbps * 1e9; }

  /// Roofline ridge point in flop/byte: kernels below it are memory-bound.
  double balance_flops_per_byte() const {
    return peak_flops() / peak_bytes_per_s();
  }

  /// Effective host-link bandwidth in bytes/s.
  double pcie_bytes_per_s() const { return pcie_bandwidth_gbps * 1e9; }
};

/// Datasheet-derived presets.
namespace spec {

/// NVIDIA T4-like (AWS g4dn): 40 SMs, 16 GB, 320 GB/s, ~8.1 TFLOP/s FP32.
DeviceSpec t4();

/// NVIDIA A10G-like (AWS g5): 80 SMs, 24 GB, 600 GB/s, ~31.2 TFLOP/s FP32.
DeviceSpec a10g();

/// NVIDIA V100-like (AWS p3): 80 SMs, 16 GB, 900 GB/s, ~15.7 TFLOP/s FP32.
DeviceSpec v100();

/// Tiny deterministic spec for unit tests: fast to reason about by hand
/// (1 SM, 32 cores, 1 GHz, 64 MB, 10 GB/s memory, 1 GB/s PCIe).
DeviceSpec test_tiny();

/// Looks a preset up by name ("t4", "a10g", "v100", "test_tiny").
/// Throws std::invalid_argument for unknown names.
DeviceSpec by_name(const std::string& name);

/// All preset names.
std::vector<std::string> names();

}  // namespace spec
}  // namespace sagesim::gpu
