// CUDA-style 3-component extent used for grids and blocks.
#pragma once

#include <cstdint>
#include <string>

namespace sagesim::gpu {

/// Mirrors CUDA's dim3: a 3-D extent whose unspecified components default
/// to 1, so `Dim3{256}` is a 1-D size of 256.
struct Dim3 {
  std::uint32_t x{1};
  std::uint32_t y{1};
  std::uint32_t z{1};

  constexpr Dim3() = default;
  constexpr Dim3(std::uint32_t x_) : x(x_) {}
  constexpr Dim3(std::uint32_t x_, std::uint32_t y_) : x(x_), y(y_) {}
  constexpr Dim3(std::uint32_t x_, std::uint32_t y_, std::uint32_t z_)
      : x(x_), y(y_), z(z_) {}

  /// Total number of elements (x*y*z).
  constexpr std::uint64_t total() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }

  constexpr bool operator==(const Dim3&) const = default;
};

/// Renders as "(x,y,z)".
inline std::string to_string(const Dim3& d) {
  return "(" + std::to_string(d.x) + "," + std::to_string(d.y) + "," +
         std::to_string(d.z) + ")";
}

/// Ceiling division helper for computing grid sizes: blocks needed to cover
/// @p n elements with @p block elements per block.
constexpr std::uint32_t div_up(std::uint64_t n, std::uint32_t block) {
  return static_cast<std::uint32_t>((n + block - 1) / block);
}

}  // namespace sagesim::gpu
