// Warp-granular execution model: divergence serialization, global-memory
// coalescing and shared-memory bank conflicts.
//
// The analytic roofline in timing.hpp prices a kernel purely by its flop and
// byte totals, so a strided load costs the same as a coalesced one and a
// divergent branch is free.  Under Fidelity::kWarp the device instead groups
// threads into 32-lane warps and records, per lane, the instruction stream
// the kernel reports through its context (load_global/store_global, shared
// accessors, branch, add_flops).  Folding a warp's lane traces yields:
//
//  * divergence    — lanes are split into outcome groups at every recorded
//                    branch; each group's instructions issue serially, so a
//                    half-and-half branch roughly doubles the issue slots
//                    (SIMT post-dominator reconvergence, one level deep);
//  * coalescing    — the lanes' addresses for one load/store instruction are
//                    binned into 32-byte sectors; each distinct sector is one
//                    DRAM transaction, so a warp of adjacent floats costs 4
//                    transactions (128B) and a stride-32 warp costs 32;
//  * bank replays  — shared-memory words map to 32 banks of 4 bytes; an
//                    N-way conflict (N distinct words in one bank) replays
//                    the instruction N-1 times.
//
// Kernels still execute bit-real on the host; only the modeled time changes.
// The default stays analytic — opt in per launch (LaunchOptions::fidelity)
// or process-wide with SAGESIM_GPU_FIDELITY=warp.
#pragma once

#include <cstdint>
#include <vector>

namespace sagesim::gpu {

/// How faithfully a launch is priced.
enum class Fidelity : std::uint8_t {
  kDefault = 0,   ///< use the process default (env var / set_default_fidelity)
  kAnalytic = 1,  ///< roofline on flop/byte totals (the historical model)
  kWarp = 2,      ///< warp-granular: divergence, coalescing, bank conflicts
};

/// Process default used when LaunchOptions::fidelity is kDefault.  First use
/// reads SAGESIM_GPU_FIDELITY ("warp" or "analytic"); unset means analytic.
Fidelity default_fidelity();

/// Overrides the process default; kDefault re-reads the environment on the
/// next default_fidelity() call (used by tests to exercise the env path).
void set_default_fidelity(Fidelity f);

/// Counters accumulated by folding warp lane traces (the per-kernel totals
/// behind the nsight-style report).
struct WarpStats {
  static constexpr std::uint32_t kSectorBytes = 32;     ///< DRAM transaction
  static constexpr std::uint32_t kBankCount = 32;       ///< shared banks
  static constexpr std::uint32_t kBankWidthBytes = 4;   ///< bank word

  std::uint32_t lane_width{32};        ///< lanes per warp (spec.warp_size)
  std::uint64_t warps{0};              ///< warp contexts that issued work
  std::uint64_t issue_slots{0};        ///< warp-instructions after divergence
  std::uint64_t lane_ops{0};           ///< thread-instructions executed
  std::uint64_t branches{0};
  std::uint64_t divergent_branches{0};
  std::uint64_t gld_requests{0};       ///< global-load instructions
  std::uint64_t gld_transactions{0};   ///< 32B sectors those touched
  std::uint64_t gst_requests{0};       ///< global-store instructions
  std::uint64_t gst_transactions{0};
  std::uint64_t shared_requests{0};    ///< shared-memory instructions
  std::uint64_t shared_replays{0};     ///< extra issues from bank conflicts
  double api_bytes{0.0};  ///< bytes requested via load_global/store_global

  void merge(const WarpStats& o);

  /// DRAM bytes actually moved for the recorded requests: 32B per sector.
  double effective_api_bytes() const {
    return static_cast<double>(gld_transactions + gst_transactions) *
           kSectorBytes;
  }
  /// Warp-instruction issues including bank-conflict replays.
  double issue_cycles() const {
    return static_cast<double>(issue_slots + shared_replays);
  }
  /// Useful lanes per issued warp-instruction; divergence and partial warps
  /// push it below 1.
  double simd_efficiency() const {
    if (issue_slots == 0) return 1.0;
    return static_cast<double>(lane_ops) /
           (static_cast<double>(issue_slots) * lane_width);
  }
  double divergence() const { return 1.0 - simd_efficiency(); }
  double gld_transactions_per_request() const {
    return gld_requests == 0 ? 0.0
                             : static_cast<double>(gld_transactions) /
                                   static_cast<double>(gld_requests);
  }
  double gst_transactions_per_request() const {
    return gst_requests == 0 ? 0.0
                             : static_cast<double>(gst_transactions) /
                                   static_cast<double>(gst_requests);
  }
};

/// Records one block's lane traces and folds them warp-by-warp into
/// WarpStats.  One recorder per executing block (blocks run on independent
/// host workers; stats merge under the launch's totals mutex afterwards).
///
/// A *scope* is a lockstep region: `begin_scope(n)` declares n SIMT lanes
/// running the same code, `set_slot(i)` selects the lane subsequent records
/// belong to, `end_scope()` folds the traces.  Records issued outside any
/// scope (straight-line BlockKernel code) fold as a single-lane warp.
class WarpRecorder {
 public:
  explicit WarpRecorder(std::uint32_t warp_size = 32);

  void begin_scope(std::uint32_t slots);
  void set_slot(std::uint32_t slot);
  void end_scope();

  void record_flop();
  void record_branch(bool taken);
  void record_global(std::uint64_t addr, std::uint32_t bytes, bool store);
  void record_shared(std::uint64_t byte_offset, std::uint32_t bytes);

  /// Folds any pending trace and returns the accumulated stats.
  WarpStats take();

 private:
  enum class OpKind : std::uint8_t {
    kFlop,
    kBranch,
    kGlobalLoad,
    kGlobalStore,
    kShared,
  };
  struct Op {
    OpKind kind;
    bool taken{false};         // kBranch
    std::uint32_t bytes{0};    // memory ops
    std::uint64_t addr{0};     // global address or shared byte offset
  };

  void ensure_serial_scope();
  void fold();
  void fold_warp(std::size_t first, std::uint32_t count);

  std::uint32_t warp_size_;
  std::uint32_t cur_{0};
  std::vector<std::vector<Op>> lanes_;
  WarpStats stats_;
};

}  // namespace sagesim::gpu
