#include "stats/boxplot.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace sagesim::stats {

BoxplotData boxplot(std::span<const double> x) {
  if (x.size() < 2) throw std::invalid_argument("boxplot: need n >= 2");
  std::vector<double> s(x.begin(), x.end());
  std::sort(s.begin(), s.end());

  BoxplotData b;
  b.q1 = quantile(s, 0.25);
  b.median = quantile(s, 0.5);
  b.q3 = quantile(s, 0.75);
  b.iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * b.iqr;
  const double hi_fence = b.q3 + 1.5 * b.iqr;

  b.whisker_low = b.q1;
  b.whisker_high = b.q3;
  for (double v : s) {
    if (v >= lo_fence) {
      b.whisker_low = v;
      break;
    }
  }
  for (auto it = s.rbegin(); it != s.rend(); ++it) {
    if (*it <= hi_fence) {
      b.whisker_high = *it;
      break;
    }
  }
  for (double v : s)
    if (v < lo_fence || v > hi_fence) b.outliers.push_back(v);
  return b;
}

std::string to_text(const BoxplotData& b) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << '[' << b.whisker_low << " |-- " << b.q1 << " [" << b.median << "] "
     << b.q3 << " --| " << b.whisker_high << "]  outliers: "
     << b.outliers.size();
  if (!b.outliers.empty()) {
    os << " {";
    for (std::size_t i = 0; i < b.outliers.size(); ++i)
      os << (i ? ", " : "") << b.outliers[i];
    os << '}';
  }
  return os.str();
}

}  // namespace sagesim::stats
