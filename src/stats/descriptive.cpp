#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace sagesim::stats {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

}  // namespace

double mean(std::span<const double> x) {
  require(!x.empty(), "mean: empty input");
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double sample_variance(std::span<const double> x) {
  require(x.size() >= 2, "sample_variance: need n >= 2");
  const double m = mean(x);
  double ss = 0.0;
  for (double v : x) ss += (v - m) * (v - m);
  return ss / static_cast<double>(x.size() - 1);
}

double sample_sd(std::span<const double> x) {
  return std::sqrt(sample_variance(x));
}

double population_variance(std::span<const double> x) {
  require(!x.empty(), "population_variance: empty input");
  const double m = mean(x);
  double ss = 0.0;
  for (double v : x) ss += (v - m) * (v - m);
  return ss / static_cast<double>(x.size());
}

double min(std::span<const double> x) {
  require(!x.empty(), "min: empty input");
  return *std::min_element(x.begin(), x.end());
}

double max(std::span<const double> x) {
  require(!x.empty(), "max: empty input");
  return *std::max_element(x.begin(), x.end());
}

double quantile(std::span<const double> x, double q) {
  require(!x.empty(), "quantile: empty input");
  require(q >= 0.0 && q <= 1.0, "quantile: q outside [0, 1]");
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> x) { return quantile(x, 0.5); }

double skewness(std::span<const double> x) {
  require(x.size() >= 3, "skewness: need n >= 3");
  const double n = static_cast<double>(x.size());
  const double m = mean(x);
  double m2 = 0.0, m3 = 0.0;
  for (double v : x) {
    const double d = v - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= n;
  m3 /= n;
  if (m2 == 0.0) return 0.0;
  const double g1 = m3 / std::pow(m2, 1.5);
  return g1 * std::sqrt(n * (n - 1.0)) / (n - 2.0);
}

double excess_kurtosis(std::span<const double> x) {
  require(x.size() >= 4, "excess_kurtosis: need n >= 4");
  const double n = static_cast<double>(x.size());
  const double m = mean(x);
  double m2 = 0.0, m4 = 0.0;
  for (double v : x) {
    const double d = v - m;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= n;
  m4 /= n;
  if (m2 == 0.0) return 0.0;
  const double g2 = m4 / (m2 * m2) - 3.0;
  return ((n + 1.0) * g2 + 6.0) * (n - 1.0) / ((n - 2.0) * (n - 3.0));
}

Descriptives describe(std::span<const double> x) {
  require(x.size() >= 2, "describe: need n >= 2");
  Descriptives d;
  d.mean = mean(x);
  d.sd = sample_sd(x);
  d.min = min(x);
  d.q1 = quantile(x, 0.25);
  d.median = median(x);
  d.q3 = quantile(x, 0.75);
  d.max = max(x);
  d.count = x.size();
  return d;
}

}  // namespace sagesim::stats
