// Deterministic random sources for workload and cohort generation.
// Every stochastic component of sagesim draws from an Rng seeded explicitly,
// so benches and tests regenerate identical tables.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace sagesim::stats {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  std::mt19937_64& engine() { return engine_; }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal(mean, sd).
  double normal(double mean = 0.0, double sd = 1.0);

  /// Normal(mean, sd) rejected-sampled into [lo, hi].
  double truncated_normal(double mean, double sd, double lo, double hi);

  /// Exponential with rate @p lambda.
  double exponential(double lambda = 1.0);

  /// Beta(a, b) via two gamma draws.
  double beta(double a, double b);

  /// Bernoulli(p).
  bool bernoulli(double p);

  /// Samples an index from unnormalized non-negative weights.
  std::size_t categorical(std::span<const double> weights);

  /// n i.i.d. normal draws.
  std::vector<double> normals(std::size_t n, double mean = 0.0,
                              double sd = 1.0);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child seed (for parallel substreams).
  std::uint64_t fork_seed();

 private:
  std::mt19937_64 engine_;
};

}  // namespace sagesim::stats
