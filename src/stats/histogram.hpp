// Histogram binning — the data series behind the paper's Fig. 6.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace sagesim::stats {

struct Histogram {
  std::vector<double> edges;        ///< bin_count + 1 ascending edges
  std::vector<std::size_t> counts;  ///< bin_count counts
  std::size_t total{0};

  std::size_t bin_count() const { return counts.size(); }
  /// Midpoint of bin @p i.
  double center(std::size_t i) const {
    return 0.5 * (edges[i] + edges[i + 1]);
  }
  /// Density of bin @p i (count / (total * width)).
  double density(std::size_t i) const;
};

/// Fixed-bin histogram over [lo, hi]; values outside are clamped into the
/// first/last bin.  Requires bins >= 1 and hi > lo.
Histogram histogram_fixed(std::span<const double> x, double lo, double hi,
                          std::size_t bins);

/// Automatic binning over [min, max] using the Freedman–Diaconis rule with a
/// Sturges fallback (degenerate IQR), like numpy's "auto".
Histogram histogram_auto(std::span<const double> x);

/// Renders a unicode-free ASCII bar chart of @p h, one row per bin.
std::string to_text(const Histogram& h, std::size_t width = 50);

}  // namespace sagesim::stats
