// Probability distributions used by the hypothesis tests: normal, Student t,
// Fisher F, chi-squared.
#pragma once

namespace sagesim::stats {

/// Standard normal PDF.
double normal_pdf(double x);

/// Standard normal CDF.
double normal_cdf(double x);

/// Normal CDF with location/scale.
double normal_cdf(double x, double mean, double sd);

/// Standard normal quantile (alias of inverse_normal_cdf).
double normal_quantile(double p);

/// Student t CDF with @p df degrees of freedom.
double t_cdf(double x, double df);

/// Fisher F CDF with (@p df1, @p df2) degrees of freedom, x >= 0.
double f_cdf(double x, double df1, double df2);

/// Chi-squared CDF with @p df degrees of freedom, x >= 0.
double chi2_cdf(double x, double df);

/// Two-sided p-value for a standard-normal test statistic.
double two_sided_normal_p(double z);

}  // namespace sagesim::stats
