#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace sagesim::stats {

double Histogram::density(std::size_t i) const {
  if (total == 0) return 0.0;
  const double width = edges[i + 1] - edges[i];
  return static_cast<double>(counts[i]) /
         (static_cast<double>(total) * width);
}

Histogram histogram_fixed(std::span<const double> x, double lo, double hi,
                          std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("histogram_fixed: bins == 0");
  if (!(hi > lo)) throw std::invalid_argument("histogram_fixed: hi <= lo");

  Histogram h;
  h.edges.resize(bins + 1);
  for (std::size_t i = 0; i <= bins; ++i)
    h.edges[i] = lo + (hi - lo) * static_cast<double>(i) /
                          static_cast<double>(bins);
  h.counts.assign(bins, 0);
  for (double v : x) {
    const double t = (v - lo) / (hi - lo);
    auto bin = static_cast<long long>(std::floor(t * static_cast<double>(bins)));
    bin = std::clamp<long long>(bin, 0, static_cast<long long>(bins) - 1);
    ++h.counts[static_cast<std::size_t>(bin)];
  }
  h.total = x.size();
  return h;
}

Histogram histogram_auto(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("histogram_auto: empty input");
  const double lo = min(x);
  const double hi = max(x);
  if (lo == hi) return histogram_fixed(x, lo - 0.5, hi + 0.5, 1);

  const double n = static_cast<double>(x.size());
  const double iqr = quantile(x, 0.75) - quantile(x, 0.25);
  double bin_width;
  if (iqr > 0.0) {
    bin_width = 2.0 * iqr / std::cbrt(n);  // Freedman–Diaconis
  } else {
    bin_width = (hi - lo) / (std::ceil(std::log2(n)) + 1.0);  // Sturges
  }
  const auto bins = static_cast<std::size_t>(
      std::max(1.0, std::ceil((hi - lo) / bin_width)));
  return histogram_fixed(x, lo, hi, bins);
}

std::string to_text(const Histogram& h, std::size_t width) {
  std::size_t peak = 1;
  for (std::size_t c : h.counts) peak = std::max(peak, c);
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(h.counts[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << std::setw(9) << h.edges[i] << " - " << std::setw(9)
       << h.edges[i + 1] << " | " << std::string(bar, '#') << ' '
       << h.counts[i] << '\n';
  }
  return os.str();
}

}  // namespace sagesim::stats
