#include "stats/special.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace sagesim::stats {

namespace {

constexpr double kSqrt2 = 1.4142135623730951;
constexpr double kSqrt2Pi = 2.5066282746310002;

// Acklam's rational approximation for the inverse normal CDF.
double acklam(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

double inverse_normal_cdf(double p) {
  if (!(p > 0.0 && p < 1.0))
    throw std::domain_error("inverse_normal_cdf: p must lie in (0, 1)");
  double x = acklam(p);
  // One Halley refinement against the true CDF (via erfc) brings the result
  // to near machine precision.
  const double e = 0.5 * std::erfc(-x / kSqrt2) - p;
  const double u = e * kSqrt2Pi * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double log_beta(double a, double b) {
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

namespace {

// Continued-fraction evaluation for the incomplete beta (Lentz's method,
// Numerical Recipes betacf).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-16;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0))
    throw std::domain_error("regularized_incomplete_beta: a, b must be > 0");
  if (!(x >= 0.0 && x <= 1.0))
    throw std::domain_error("regularized_incomplete_beta: x must be in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front =
      a * std::log(x) + b * std::log1p(-x) - log_beta(a, b);
  const double front = std::exp(ln_front);
  // Use the symmetry transformation for faster convergence.
  if (x < (a + 1.0) / (a + b + 2.0)) return front * beta_cf(a, b, x) / a;
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double regularized_lower_gamma(double a, double x) {
  if (!(a > 0.0))
    throw std::domain_error("regularized_lower_gamma: a must be > 0");
  if (x < 0.0)
    throw std::domain_error("regularized_lower_gamma: x must be >= 0");
  if (x == 0.0) return 0.0;

  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 3e-16) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
  }
  // Continued fraction for the upper tail Q(a, x); P = 1 - Q.
  constexpr double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 3e-16) break;
  }
  const double q = std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
  return 1.0 - q;
}

}  // namespace sagesim::stats
