#include "stats/qq.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/special.hpp"

namespace sagesim::stats {

QqSeries qq_normal(std::span<const double> x) {
  if (x.size() < 3) throw std::invalid_argument("qq_normal: need n >= 3");
  std::vector<double> s(x.begin(), x.end());
  std::sort(s.begin(), s.end());
  const double n = static_cast<double>(s.size());

  QqSeries series;
  series.points.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double p = (static_cast<double>(i + 1) - 0.375) / (n + 0.25);
    series.points.push_back({inverse_normal_cdf(p), s[i]});
  }
  series.intercept = mean(s);
  series.slope = sample_sd(s);

  // Probability-plot correlation coefficient.
  double mt = 0.0;
  for (const auto& p : series.points) mt += p.theoretical;
  mt /= n;
  const double ms = series.intercept;
  double num = 0.0, dt = 0.0, ds = 0.0;
  for (const auto& p : series.points) {
    num += (p.theoretical - mt) * (p.sample - ms);
    dt += (p.theoretical - mt) * (p.theoretical - mt);
    ds += (p.sample - ms) * (p.sample - ms);
  }
  series.correlation = (dt > 0.0 && ds > 0.0)
                           ? num / std::sqrt(dt * ds)
                           : 0.0;
  return series;
}

std::string to_text(const QqSeries& s) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4);
  os << "reference line: sample = " << s.intercept << " + " << s.slope
     << " * theoretical   (r = " << s.correlation << ")\n";
  os << std::setw(14) << "theoretical" << std::setw(12) << "sample" << '\n';
  for (const auto& p : s.points)
    os << std::setw(14) << p.theoretical << std::setw(12) << p.sample << '\n';
  return os.str();
}

}  // namespace sagesim::stats
