#include "stats/rng.hpp"

#include <numeric>
#include <stdexcept>

namespace sagesim::stats {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::normal(double mean, double sd) {
  std::normal_distribution<double> d(mean, sd);
  return d(engine_);
}

double Rng::truncated_normal(double mean, double sd, double lo, double hi) {
  if (!(hi > lo))
    throw std::invalid_argument("truncated_normal: hi must exceed lo");
  // Rejection with a clamped fallback after a bounded number of tries (the
  // fallback only triggers for pathological [lo, hi] far in a tail).
  for (int i = 0; i < 200; ++i) {
    const double v = normal(mean, sd);
    if (v >= lo && v <= hi) return v;
  }
  const double v = normal(mean, sd);
  return v < lo ? lo : (v > hi ? hi : v);
}

double Rng::exponential(double lambda) {
  std::exponential_distribution<double> d(lambda);
  return d(engine_);
}

double Rng::beta(double a, double b) {
  std::gamma_distribution<double> ga(a, 1.0), gb(b, 1.0);
  const double x = ga(engine_);
  const double y = gb(engine_);
  return x / (x + y);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution d(p);
  return d(engine_);
}

std::size_t Rng::categorical(std::span<const double> weights) {
  if (weights.empty())
    throw std::invalid_argument("categorical: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("categorical: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("categorical: weights sum to zero");
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return weights.size() - 1;
}

std::vector<double> Rng::normals(std::size_t n, double mean, double sd) {
  std::vector<double> out(n);
  for (auto& v : out) v = normal(mean, sd);
  return out;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

std::uint64_t Rng::fork_seed() {
  // SplitMix64 step over a fresh draw keeps children decorrelated.
  std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace sagesim::stats
