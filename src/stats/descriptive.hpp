// Descriptive statistics matching the paper's Table IV columns
// (mean, sd, min, Q1, median, Q3, max, count) plus higher moments.
#pragma once

#include <cstddef>
#include <span>

namespace sagesim::stats {

double mean(std::span<const double> x);

/// Sample variance (n-1 denominator).  Requires n >= 2.
double sample_variance(std::span<const double> x);

/// Sample standard deviation (n-1 denominator).  Requires n >= 2.
double sample_sd(std::span<const double> x);

/// Population variance (n denominator).  Requires n >= 1.
double population_variance(std::span<const double> x);

double min(std::span<const double> x);
double max(std::span<const double> x);

/// Quantile with linear interpolation between order statistics
/// (numpy/R type-7).  @p q in [0, 1]; requires non-empty input.
double quantile(std::span<const double> x, double q);

double median(std::span<const double> x);

/// Adjusted Fisher-Pearson sample skewness (g1 with small-sample
/// correction); requires n >= 3.
double skewness(std::span<const double> x);

/// Excess kurtosis (sample-corrected); requires n >= 4.
double excess_kurtosis(std::span<const double> x);

/// All Table-IV columns in one pass.
struct Descriptives {
  double mean{0.0};
  double sd{0.0};
  double min{0.0};
  double q1{0.0};
  double median{0.0};
  double q3{0.0};
  double max{0.0};
  std::size_t count{0};
};

/// Computes the full descriptive row.  Requires n >= 2.
Descriptives describe(std::span<const double> x);

}  // namespace sagesim::stats
