// Normal Q-Q plot series — Figs. 7 and 8 of the paper.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace sagesim::stats {

struct QqPoint {
  double theoretical{0.0};  ///< standard normal quantile
  double sample{0.0};       ///< ordered sample value
};

struct QqSeries {
  std::vector<QqPoint> points;  ///< ascending by theoretical quantile
  double slope{1.0};            ///< reference line: sample sd estimate
  double intercept{0.0};        ///< reference line: sample mean
  /// Pearson correlation between theoretical and sample quantiles — the
  /// probability-plot correlation coefficient (near 1 for normal data).
  double correlation{0.0};
};

/// Builds the normal Q-Q series for @p x using Blom plotting positions
/// (i - 0.375)/(n + 0.25).  Requires n >= 3.
QqSeries qq_normal(std::span<const double> x);

/// Renders the series as a two-column table plus the reference line.
std::string to_text(const QqSeries& s);

}  // namespace sagesim::stats
