#include "stats/dist.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/special.hpp"

namespace sagesim::stats {

double normal_pdf(double x) {
  return std::exp(-0.5 * x * x) / 2.5066282746310002;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / 1.4142135623730951); }

double normal_cdf(double x, double mean, double sd) {
  if (!(sd > 0.0)) throw std::domain_error("normal_cdf: sd must be > 0");
  return normal_cdf((x - mean) / sd);
}

double normal_quantile(double p) { return inverse_normal_cdf(p); }

double t_cdf(double x, double df) {
  if (!(df > 0.0)) throw std::domain_error("t_cdf: df must be > 0");
  const double t2 = x * x;
  const double p_tail =
      0.5 * regularized_incomplete_beta(0.5 * df, 0.5, df / (df + t2));
  return x >= 0.0 ? 1.0 - p_tail : p_tail;
}

double f_cdf(double x, double df1, double df2) {
  if (!(df1 > 0.0) || !(df2 > 0.0))
    throw std::domain_error("f_cdf: degrees of freedom must be > 0");
  if (x <= 0.0) return 0.0;
  return regularized_incomplete_beta(0.5 * df1, 0.5 * df2,
                                     df1 * x / (df1 * x + df2));
}

double chi2_cdf(double x, double df) {
  if (!(df > 0.0)) throw std::domain_error("chi2_cdf: df must be > 0");
  if (x <= 0.0) return 0.0;
  return regularized_lower_gamma(0.5 * df, 0.5 * x);
}

double two_sided_normal_p(double z) {
  return std::erfc(std::fabs(z) / 1.4142135623730951);
}

}  // namespace sagesim::stats
