// Additional nonparametric machinery beyond the paper's core trio —
// the natural follow-ups an instructor reaches for when the cohort grows:
// Kruskal–Wallis (k-group Mann–Whitney), Wilcoxon signed-rank (paired
// mid/final survey waves), Spearman rank correlation, one-sample t.
#pragma once

#include <span>
#include <vector>

#include "stats/tests.hpp"

namespace sagesim::stats {

/// Kruskal–Wallis H test for k >= 2 independent groups (tie-corrected,
/// chi-squared approximation with k-1 df).
struct KruskalWallisResult {
  double h{0.0};
  double df{0.0};
  double p_value{0.0};
};
KruskalWallisResult kruskal_wallis(
    std::span<const std::span<const double>> groups);

/// Wilcoxon signed-rank test for paired samples (e.g. the same student's
/// mid-course vs final survey score).  Zero differences are dropped
/// (Wilcoxon's convention); p-value uses the tie-corrected normal
/// approximation with continuity correction.  Requires >= 6 non-zero
/// differences for the approximation to be meaningful.
struct WilcoxonResult {
  double w_plus{0.0};    ///< rank sum of positive differences
  double w_minus{0.0};
  double z{0.0};
  double p_value{0.0};
  std::size_t n_used{0};  ///< non-zero differences
};
WilcoxonResult wilcoxon_signed_rank(std::span<const double> before,
                                    std::span<const double> after,
                                    Alternative alt = Alternative::kTwoSided);

/// Spearman rank correlation coefficient with a t-distributed significance
/// test (n >= 4).
struct SpearmanResult {
  double rho{0.0};
  double p_value{0.0};  ///< two-sided
};
SpearmanResult spearman(std::span<const double> x, std::span<const double> y);

/// One-sample t-test of H0: mean == mu0.
TTestResult t_test_one_sample(std::span<const double> x, double mu0,
                              Alternative alt = Alternative::kTwoSided);

/// Chi-squared test of independence / homogeneity on an r x c contingency
/// table of counts (e.g. satisfaction level x semester).  Cells with
/// all-zero rows or columns are rejected.  Uses the chi2 distribution with
/// (r-1)(c-1) df; no Yates correction.
struct Chi2Result {
  double statistic{0.0};
  double df{0.0};
  double p_value{0.0};
};
Chi2Result chi2_independence(
    const std::vector<std::vector<double>>& table);

/// Chi-squared goodness-of-fit of observed counts against expected
/// proportions (normalized internally).  df = k - 1.
Chi2Result chi2_goodness_of_fit(std::span<const double> observed,
                                std::span<const double> expected_weights);

}  // namespace sagesim::stats
