#include "stats/nonparametric.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/dist.hpp"
#include "stats/rank.hpp"

namespace sagesim::stats {

KruskalWallisResult kruskal_wallis(
    std::span<const std::span<const double>> groups) {
  const std::size_t k = groups.size();
  if (k < 2)
    throw std::invalid_argument("kruskal_wallis: need at least 2 groups");
  std::vector<double> pooled;
  std::vector<std::size_t> sizes;
  for (const auto& g : groups) {
    if (g.empty())
      throw std::invalid_argument("kruskal_wallis: empty group");
    pooled.insert(pooled.end(), g.begin(), g.end());
    sizes.push_back(g.size());
  }
  const double n = static_cast<double>(pooled.size());
  if (pooled.size() < 3)
    throw std::invalid_argument("kruskal_wallis: need n >= 3 overall");

  const auto ranks = rankdata(pooled);
  double h = 0.0;
  std::size_t offset = 0;
  for (std::size_t g = 0; g < k; ++g) {
    double rank_sum = 0.0;
    for (std::size_t i = 0; i < sizes[g]; ++i) rank_sum += ranks[offset + i];
    h += rank_sum * rank_sum / static_cast<double>(sizes[g]);
    offset += sizes[g];
  }
  h = 12.0 / (n * (n + 1.0)) * h - 3.0 * (n + 1.0);

  // Tie correction.
  const double ties = tie_correction(pooled);
  const double correction = 1.0 - ties / (n * n * n - n);
  if (correction <= 0.0)
    throw std::invalid_argument("kruskal_wallis: all values identical");
  h /= correction;

  KruskalWallisResult r;
  r.h = h;
  r.df = static_cast<double>(k - 1);
  r.p_value = 1.0 - chi2_cdf(h, r.df);
  return r;
}

WilcoxonResult wilcoxon_signed_rank(std::span<const double> before,
                                    std::span<const double> after,
                                    Alternative alt) {
  if (before.size() != after.size())
    throw std::invalid_argument("wilcoxon: paired samples differ in length");

  std::vector<double> diffs;
  for (std::size_t i = 0; i < before.size(); ++i) {
    const double d = after[i] - before[i];
    if (d != 0.0) diffs.push_back(d);
  }
  WilcoxonResult r;
  r.n_used = diffs.size();
  if (r.n_used < 6)
    throw std::invalid_argument(
        "wilcoxon: need >= 6 non-zero differences for the normal "
        "approximation");

  std::vector<double> abs_diffs;
  abs_diffs.reserve(diffs.size());
  for (double d : diffs) abs_diffs.push_back(std::fabs(d));
  const auto ranks = rankdata(abs_diffs);

  for (std::size_t i = 0; i < diffs.size(); ++i) {
    if (diffs[i] > 0.0)
      r.w_plus += ranks[i];
    else
      r.w_minus += ranks[i];
  }

  const double n = static_cast<double>(r.n_used);
  const double mu = n * (n + 1.0) / 4.0;
  const double tie_sum = tie_correction(abs_diffs);
  const double sigma2 =
      n * (n + 1.0) * (2.0 * n + 1.0) / 24.0 - tie_sum / 48.0;
  if (sigma2 <= 0.0)
    throw std::invalid_argument("wilcoxon: degenerate variance");
  const double sigma = std::sqrt(sigma2);

  // Continuity-corrected z for W+ (after > before pushes W+ up).
  switch (alt) {
    case Alternative::kGreater:
      r.z = (r.w_plus - mu - 0.5) / sigma;
      r.p_value = 1.0 - normal_cdf(r.z);
      break;
    case Alternative::kLess:
      r.z = (r.w_plus - mu + 0.5) / sigma;
      r.p_value = normal_cdf(r.z);
      break;
    case Alternative::kTwoSided: {
      const double shift = r.w_plus > mu ? -0.5 : (r.w_plus < mu ? 0.5 : 0.0);
      r.z = (r.w_plus - mu + shift) / sigma;
      r.p_value = two_sided_normal_p(r.z);
      break;
    }
  }
  r.p_value = std::clamp(r.p_value, 0.0, 1.0);
  return r;
}

SpearmanResult spearman(std::span<const double> x,
                        std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("spearman: length mismatch");
  if (x.size() < 4) throw std::invalid_argument("spearman: need n >= 4");

  const auto rx = rankdata(x);
  const auto ry = rankdata(y);
  const double n = static_cast<double>(x.size());

  // Pearson correlation of the ranks (exact under ties).
  const double mean_rank = (n + 1.0) / 2.0;
  double num = 0.0, dx = 0.0, dy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (rx[i] - mean_rank) * (ry[i] - mean_rank);
    dx += (rx[i] - mean_rank) * (rx[i] - mean_rank);
    dy += (ry[i] - mean_rank) * (ry[i] - mean_rank);
  }
  SpearmanResult r;
  if (dx == 0.0 || dy == 0.0)
    throw std::invalid_argument("spearman: a variable is constant");
  r.rho = num / std::sqrt(dx * dy);

  // t-approximation for significance.
  const double rho2 = std::min(r.rho * r.rho, 1.0 - 1e-15);
  const double t = r.rho * std::sqrt((n - 2.0) / (1.0 - rho2));
  r.p_value = 2.0 * (1.0 - t_cdf(std::fabs(t), n - 2.0));
  r.p_value = std::clamp(r.p_value, 0.0, 1.0);
  return r;
}

TTestResult t_test_one_sample(std::span<const double> x, double mu0,
                              Alternative alt) {
  if (x.size() < 2)
    throw std::invalid_argument("t_test_one_sample: need n >= 2");
  const double n = static_cast<double>(x.size());
  TTestResult r;
  r.df = n - 1.0;
  const double se = sample_sd(x) / std::sqrt(n);
  if (se == 0.0)
    throw std::invalid_argument("t_test_one_sample: zero variance");
  r.t = (mean(x) - mu0) / se;
  switch (alt) {
    case Alternative::kTwoSided:
      r.p_value = 2.0 * (1.0 - t_cdf(std::fabs(r.t), r.df));
      break;
    case Alternative::kGreater:
      r.p_value = 1.0 - t_cdf(r.t, r.df);
      break;
    case Alternative::kLess:
      r.p_value = t_cdf(r.t, r.df);
      break;
  }
  return r;
}

Chi2Result chi2_independence(
    const std::vector<std::vector<double>>& table) {
  const std::size_t rows = table.size();
  if (rows < 2)
    throw std::invalid_argument("chi2_independence: need >= 2 rows");
  const std::size_t cols = table.front().size();
  if (cols < 2)
    throw std::invalid_argument("chi2_independence: need >= 2 columns");
  for (const auto& row : table)
    if (row.size() != cols)
      throw std::invalid_argument("chi2_independence: ragged table");

  std::vector<double> row_sum(rows, 0.0), col_sum(cols, 0.0);
  double total = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t cc = 0; cc < cols; ++cc) {
      if (table[r][cc] < 0.0)
        throw std::invalid_argument("chi2_independence: negative count");
      row_sum[r] += table[r][cc];
      col_sum[cc] += table[r][cc];
      total += table[r][cc];
    }
  }
  if (total <= 0.0)
    throw std::invalid_argument("chi2_independence: empty table");
  for (double s : row_sum)
    if (s == 0.0)
      throw std::invalid_argument("chi2_independence: all-zero row");
  for (double s : col_sum)
    if (s == 0.0)
      throw std::invalid_argument("chi2_independence: all-zero column");

  Chi2Result result;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t cc = 0; cc < cols; ++cc) {
      const double expected = row_sum[r] * col_sum[cc] / total;
      const double d = table[r][cc] - expected;
      result.statistic += d * d / expected;
    }
  }
  result.df = static_cast<double>((rows - 1) * (cols - 1));
  result.p_value = 1.0 - chi2_cdf(result.statistic, result.df);
  return result;
}

Chi2Result chi2_goodness_of_fit(std::span<const double> observed,
                                std::span<const double> expected_weights) {
  if (observed.size() != expected_weights.size() || observed.size() < 2)
    throw std::invalid_argument(
        "chi2_goodness_of_fit: need matching k >= 2 categories");
  double total = 0.0, weight_total = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (observed[i] < 0.0 || expected_weights[i] < 0.0)
      throw std::invalid_argument("chi2_goodness_of_fit: negative entry");
    total += observed[i];
    weight_total += expected_weights[i];
  }
  if (total <= 0.0 || weight_total <= 0.0)
    throw std::invalid_argument("chi2_goodness_of_fit: empty input");

  Chi2Result result;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = total * expected_weights[i] / weight_total;
    if (expected <= 0.0)
      throw std::invalid_argument(
          "chi2_goodness_of_fit: zero expected count in a category");
    const double d = observed[i] - expected;
    result.statistic += d * d / expected;
  }
  result.df = static_cast<double>(observed.size() - 1);
  result.p_value = 1.0 - chi2_cdf(result.statistic, result.df);
  return result;
}

}  // namespace sagesim::stats
