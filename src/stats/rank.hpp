// Ranking with midrank tie handling — the building block of the
// Mann–Whitney U test.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sagesim::stats {

/// Ranks of @p x (1-based); tied values receive the average of the ranks
/// they span ("midranks"), matching scipy.stats.rankdata(method="average").
std::vector<double> rankdata(std::span<const double> x);

/// Sizes of each tie group (t_j >= 1 per distinct value), used by tie
/// corrections.  Sum of sizes equals x.size().
std::vector<std::size_t> tie_group_sizes(std::span<const double> x);

/// Tie correction term sum(t^3 - t) over tie groups.
double tie_correction(std::span<const double> x);

}  // namespace sagesim::stats
