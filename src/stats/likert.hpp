// Five-point Likert-scale aggregation — the machinery behind the paper's
// survey figures (Figs. 3, 4, 10, 11).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace sagesim::stats {

/// Agreement scale used by the anonymous surveys (Fig. 4).
enum class Likert : int {
  kStronglyDisagree = 1,
  kDisagree = 2,
  kNeutral = 3,
  kAgree = 4,
  kStronglyAgree = 5,
};

/// Frequency scale used by the standardized course evaluation (Fig. 3).
enum class Frequency : int {
  kNever = 1,
  kSeldom = 2,
  kSometimes = 3,
  kOften = 4,
  kAlways = 5,
};

const char* to_string(Likert v);
const char* to_string(Frequency v);

/// Aggregated responses to one survey question.
struct LikertSummary {
  std::array<std::size_t, 5> counts{};  ///< index 0 == scale value 1
  std::size_t total{0};

  /// Percentage of responses at scale value @p v (1-based).
  double percent(int v) const;
  /// Mean scale score in [1, 5]; 0 when empty.
  double mean_score() const;
  /// Fraction agreeing or strongly agreeing (top-2 box).
  double top2_fraction() const;
  /// Fraction disagreeing or strongly disagreeing (bottom-2 box).
  double bottom2_fraction() const;
  /// Scale value with the most responses (ties: lowest value wins).
  int mode() const;
};

/// Tallies integer responses in [1, 5]; throws std::invalid_argument for
/// out-of-range values.
LikertSummary summarize_likert(std::span<const int> responses);

/// Renders "SD:2 D:2 N:1 A:2 SA:2 (mean 3.00, n=9)".
std::string to_text(const LikertSummary& s);

/// Builds a response vector from per-level counts
/// {strongly-disagree, ..., strongly-agree} — handy for reconstructing the
/// paper's reported distributions.
std::vector<int> responses_from_counts(const std::array<std::size_t, 5>& counts);

}  // namespace sagesim::stats
