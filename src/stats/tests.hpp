// Hypothesis tests — exactly the set the paper's Appendix C runs:
// Shapiro–Wilk normality, Levene's homogeneity of variance, Mann–Whitney U,
// and t-tests for completeness.
#pragma once

#include <span>
#include <vector>

namespace sagesim::stats {

/// Tail choice for two-sample tests.
enum class Alternative { kTwoSided, kLess, kGreater };

/// Shapiro–Wilk normality test (Royston 1995, AS R94).  Valid for
/// 3 <= n <= 5000; throws std::invalid_argument outside that range or when
/// the sample has zero range.
struct ShapiroWilkResult {
  double w{0.0};
  double p_value{0.0};
};
ShapiroWilkResult shapiro_wilk(std::span<const double> x);

/// Levene's test for equal variances across k >= 2 groups.
/// center=kMedian gives the Brown–Forsythe variant (scipy's default).
struct LeveneResult {
  double statistic{0.0};  ///< F-distributed W statistic
  double p_value{0.0};
  double df_between{0.0};
  double df_within{0.0};
};
enum class LeveneCenter { kMean, kMedian };
LeveneResult levene(std::span<const std::span<const double>> groups,
                    LeveneCenter center = LeveneCenter::kMedian);
LeveneResult levene(std::span<const double> a, std::span<const double> b,
                    LeveneCenter center = LeveneCenter::kMedian);

/// Mann–Whitney U test.  U is reported for the *first* sample (number of
/// (a, b) pairs with a > b, counting ties half), matching
/// scipy.stats.mannwhitneyu(a, b).  The p-value uses the tie-corrected
/// normal approximation with continuity correction for n1*n2 > 100, and the
/// exact null distribution (no-ties recursion) otherwise.
struct MannWhitneyResult {
  double u{0.0};         ///< U statistic of the first sample
  double u_other{0.0};   ///< n1*n2 - u
  double z{0.0};         ///< normal-approximation z score (0 for exact path)
  double p_value{0.0};
  bool exact{false};     ///< whether the exact distribution was used
};
MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b,
                                 Alternative alt = Alternative::kTwoSided);

/// Two-sample t-tests (pooled and Welch), for the "what the paper would
/// have run had the data been normal" comparison.
struct TTestResult {
  double t{0.0};
  double df{0.0};
  double p_value{0.0};
};
TTestResult t_test_pooled(std::span<const double> a, std::span<const double> b,
                          Alternative alt = Alternative::kTwoSided);
TTestResult t_test_welch(std::span<const double> a, std::span<const double> b,
                         Alternative alt = Alternative::kTwoSided);

}  // namespace sagesim::stats
