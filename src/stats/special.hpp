// Special functions needed by the distribution layer: inverse normal CDF,
// regularized incomplete beta/gamma.  Implemented from the classic numeric
// recipes (Acklam's rational approximation with a Halley refinement; Lentz's
// continued fraction), accurate to ~1e-14 over their documented domains.
#pragma once

namespace sagesim::stats {

/// Inverse of the standard normal CDF (quantile function).
/// Domain: p in (0, 1); throws std::domain_error outside.
double inverse_normal_cdf(double p);

/// Regularized incomplete beta function I_x(a, b), a,b > 0, x in [0, 1].
/// Throws std::domain_error outside the domain.
double regularized_incomplete_beta(double a, double b, double x);

/// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
double regularized_lower_gamma(double a, double x);

/// log Beta(a, b).
double log_beta(double a, double b);

}  // namespace sagesim::stats
