// Boxplot data — Fig. 9 of the paper (box + whiskers + outliers).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace sagesim::stats {

struct BoxplotData {
  double q1{0.0};
  double median{0.0};
  double q3{0.0};
  double iqr{0.0};
  double whisker_low{0.0};   ///< smallest value >= q1 - 1.5*iqr
  double whisker_high{0.0};  ///< largest value <= q3 + 1.5*iqr
  std::vector<double> outliers;  ///< values beyond the whiskers, ascending
};

/// Tukey boxplot statistics for @p x.  Requires n >= 2.
BoxplotData boxplot(std::span<const double> x);

/// Renders a one-line summary ("[low |-- q1 [med] q3 --| high] outliers: k").
std::string to_text(const BoxplotData& b);

}  // namespace sagesim::stats
