#include "stats/tests.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/dist.hpp"
#include "stats/rank.hpp"
#include "stats/special.hpp"

namespace sagesim::stats {

// ---------------------------------------------------------------------------
// Shapiro–Wilk (Royston 1995, Applied Statistics algorithm AS R94)
// ---------------------------------------------------------------------------

ShapiroWilkResult shapiro_wilk(std::span<const double> x) {
  const std::size_t n = x.size();
  if (n < 3 || n > 5000)
    throw std::invalid_argument("shapiro_wilk: valid for 3 <= n <= 5000");

  std::vector<double> s(x.begin(), x.end());
  std::sort(s.begin(), s.end());
  if (s.front() == s.back())
    throw std::invalid_argument("shapiro_wilk: sample has zero range");

  const double nd = static_cast<double>(n);

  // Expected values of standard normal order statistics (Blom's
  // approximation) and the weight vector a.
  std::vector<double> m(n);
  double ssumm2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = inverse_normal_cdf((static_cast<double>(i + 1) - 0.375) /
                              (nd + 0.25));
    ssumm2 += m[i] * m[i];
  }

  std::vector<double> a(n, 0.0);
  if (n == 3) {
    a[0] = -std::numbers::sqrt2 / 2.0;
    a[2] = std::numbers::sqrt2 / 2.0;
  } else {
    const double rsn = 1.0 / std::sqrt(nd);
    const double rsn2 = rsn * rsn;
    const double rsn3 = rsn2 * rsn;
    const double rsn4 = rsn3 * rsn;
    const double rsn5 = rsn4 * rsn;
    const double norm = std::sqrt(ssumm2);

    const double an = -2.706056 * rsn5 + 4.434685 * rsn4 - 2.071190 * rsn3 -
                      0.147981 * rsn2 + 0.221157 * rsn + m[n - 1] / norm;
    double phi;
    if (n > 5) {
      const double an1 = -3.582633 * rsn5 + 5.682633 * rsn4 -
                         1.752461 * rsn3 - 0.293762 * rsn2 + 0.042981 * rsn +
                         m[n - 2] / norm;
      phi = (ssumm2 - 2.0 * m[n - 1] * m[n - 1] - 2.0 * m[n - 2] * m[n - 2]) /
            (1.0 - 2.0 * an * an - 2.0 * an1 * an1);
      a[n - 1] = an;
      a[n - 2] = an1;
      a[0] = -an;
      a[1] = -an1;
      const double sqrt_phi = std::sqrt(phi);
      for (std::size_t i = 2; i + 2 < n; ++i) a[i] = m[i] / sqrt_phi;
    } else {
      phi = (ssumm2 - 2.0 * m[n - 1] * m[n - 1]) / (1.0 - 2.0 * an * an);
      a[n - 1] = an;
      a[0] = -an;
      const double sqrt_phi = std::sqrt(phi);
      for (std::size_t i = 1; i + 1 < n; ++i) a[i] = m[i] / sqrt_phi;
    }
  }

  // W = (sum a_i x_(i))^2 / sum (x_i - xbar)^2
  const double xbar = mean(s);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += a[i] * s[i];
    den += (s[i] - xbar) * (s[i] - xbar);
  }
  ShapiroWilkResult r;
  r.w = std::clamp(num * num / den, 0.0, 1.0);

  // p-value transforms (Royston 1995).
  if (n == 3) {
    // Exact small-sample distribution (Royston 1995, eq. for n = 3).
    constexpr double kStqr = 1.0471975511965976;  // asin(sqrt(3/4))
    const double p =
        6.0 / std::numbers::pi * (std::asin(std::sqrt(r.w)) - kStqr);
    r.p_value = std::clamp(p, 0.0, 1.0);
    return r;
  }

  double z;
  if (n <= 11) {
    const double g = -2.273 + 0.459 * nd;
    const double mu =
        0.5440 - 0.39978 * nd + 0.025054 * nd * nd - 0.0006714 * nd * nd * nd;
    const double sigma = std::exp(1.3822 - 0.77857 * nd + 0.062767 * nd * nd -
                                  0.0020322 * nd * nd * nd);
    const double y = -std::log(g - std::log1p(-r.w));
    z = (y - mu) / sigma;
  } else {
    const double ln_n = std::log(nd);
    const double mu =
        -1.5861 - 0.31082 * ln_n - 0.083751 * ln_n * ln_n +
        0.0038915 * ln_n * ln_n * ln_n;
    const double sigma =
        std::exp(-0.4803 - 0.082676 * ln_n + 0.0030302 * ln_n * ln_n);
    z = (std::log1p(-r.w) - mu) / sigma;
  }
  r.p_value = std::clamp(1.0 - normal_cdf(z), 0.0, 1.0);
  return r;
}

// ---------------------------------------------------------------------------
// Levene / Brown–Forsythe
// ---------------------------------------------------------------------------

LeveneResult levene(std::span<const std::span<const double>> groups,
                    LeveneCenter center) {
  const std::size_t k = groups.size();
  if (k < 2) throw std::invalid_argument("levene: need at least 2 groups");
  std::size_t total = 0;
  for (const auto& g : groups) {
    if (g.size() < 2)
      throw std::invalid_argument("levene: each group needs n >= 2");
    total += g.size();
  }

  // Z_ij = |x_ij - center_i|
  std::vector<std::vector<double>> z(k);
  std::vector<double> z_group_mean(k);
  double z_grand = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double c = center == LeveneCenter::kMedian ? median(groups[i])
                                                     : mean(groups[i]);
    z[i].reserve(groups[i].size());
    for (double v : groups[i]) z[i].push_back(std::fabs(v - c));
    z_group_mean[i] = mean(z[i]);
    for (double v : z[i]) z_grand += v;
  }
  z_grand /= static_cast<double>(total);

  double between = 0.0;
  double within = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double ni = static_cast<double>(z[i].size());
    between += ni * (z_group_mean[i] - z_grand) * (z_group_mean[i] - z_grand);
    for (double v : z[i])
      within += (v - z_group_mean[i]) * (v - z_group_mean[i]);
  }

  LeveneResult r;
  r.df_between = static_cast<double>(k - 1);
  r.df_within = static_cast<double>(total - k);
  if (within == 0.0)
    throw std::invalid_argument("levene: zero within-group deviation");
  r.statistic = (r.df_within / r.df_between) * (between / within);
  r.p_value = 1.0 - f_cdf(r.statistic, r.df_between, r.df_within);
  return r;
}

LeveneResult levene(std::span<const double> a, std::span<const double> b,
                    LeveneCenter center) {
  const std::span<const double> groups[] = {a, b};
  return levene(std::span<const std::span<const double>>(groups, 2), center);
}

// ---------------------------------------------------------------------------
// Mann–Whitney U
// ---------------------------------------------------------------------------

namespace {

/// Exact null CDF P(U <= u) for sample sizes (m, n) without ties.
///
/// The null count of arrangements with statistic u is the number of integer
/// partitions of u into at most m parts, each part at most n, satisfying the
/// recurrence (Mann & Whitney 1947):
///     c(u; m, n) = c(u - n; m - 1, n) + c(u; m, n - 1)
/// with c(0; ., .) = 1 and c(u < 0) = 0.  We iterate n in the outer loop and
/// m in the inner loop so each cell needs only the current and previous
/// n-layer.
double exact_u_cdf(double u_stat, std::size_t m, std::size_t n) {
  const std::size_t u_max = m * n;
  const auto u_floor = static_cast<long long>(std::floor(u_stat + 1e-9));
  if (u_floor < 0) return 0.0;
  if (static_cast<std::size_t>(u_floor) >= u_max) return 1.0;

  // layer[mm][u] = c(u; mm, nn) for the current nn.
  std::vector<std::vector<double>> layer(
      m + 1, std::vector<double>(u_max + 1, 0.0));
  for (std::size_t mm = 0; mm <= m; ++mm) layer[mm][0] = 1.0;  // nn = 0

  for (std::size_t nn = 1; nn <= n; ++nn) {
    std::vector<std::vector<double>> next(
        m + 1, std::vector<double>(u_max + 1, 0.0));
    next[0][0] = 1.0;
    for (std::size_t mm = 1; mm <= m; ++mm)
      for (std::size_t u = 0; u <= u_max; ++u)
        next[mm][u] =
            (u >= nn ? next[mm - 1][u - nn] : 0.0) + layer[mm][u];
    layer = std::move(next);
  }

  double total = 0.0;
  double below = 0.0;
  for (std::size_t u = 0; u <= u_max; ++u) {
    total += layer[m][u];
    if (u <= static_cast<std::size_t>(u_floor)) below += layer[m][u];
  }
  return below / total;
}

double one_sided_exact_p_greater(double u, std::size_t m, std::size_t n) {
  // P(U >= u) = 1 - P(U <= u - 1)
  return 1.0 - exact_u_cdf(u - 1.0, m, n);
}

}  // namespace

MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b, Alternative alt) {
  const std::size_t n1 = a.size();
  const std::size_t n2 = b.size();
  if (n1 == 0 || n2 == 0)
    throw std::invalid_argument("mann_whitney_u: empty sample");

  // Joint ranking.
  std::vector<double> pooled;
  pooled.reserve(n1 + n2);
  pooled.insert(pooled.end(), a.begin(), a.end());
  pooled.insert(pooled.end(), b.begin(), b.end());
  const std::vector<double> ranks = rankdata(pooled);

  double rank_sum_a = 0.0;
  for (std::size_t i = 0; i < n1; ++i) rank_sum_a += ranks[i];

  MannWhitneyResult r;
  const double n1d = static_cast<double>(n1);
  const double n2d = static_cast<double>(n2);
  r.u = rank_sum_a - n1d * (n1d + 1.0) / 2.0;
  r.u_other = n1d * n2d - r.u;

  const double tie_sum = tie_correction(pooled);
  const bool has_ties = tie_sum > 0.0;
  const bool use_exact = !has_ties && n1 * n2 <= 400;

  if (use_exact) {
    r.exact = true;
    const double p_greater = one_sided_exact_p_greater(r.u, n1, n2);
    const double p_less = exact_u_cdf(r.u, n1, n2);
    switch (alt) {
      case Alternative::kGreater: r.p_value = p_greater; break;
      case Alternative::kLess: r.p_value = p_less; break;
      case Alternative::kTwoSided:
        r.p_value = std::min(1.0, 2.0 * std::min(p_greater, p_less));
        break;
    }
    return r;
  }

  // Tie-corrected normal approximation with continuity correction.
  const double n = n1d + n2d;
  const double mu = n1d * n2d / 2.0;
  const double sigma2 =
      n1d * n2d / 12.0 * ((n + 1.0) - tie_sum / (n * (n - 1.0)));
  if (sigma2 <= 0.0)
    throw std::invalid_argument("mann_whitney_u: all values identical");
  const double sigma = std::sqrt(sigma2);

  auto z_of = [&](double u, double cc) { return (u - mu + cc) / sigma; };
  switch (alt) {
    case Alternative::kGreater:
      r.z = z_of(r.u, -0.5);
      r.p_value = 1.0 - normal_cdf(r.z);
      break;
    case Alternative::kLess:
      r.z = z_of(r.u, +0.5);
      r.p_value = normal_cdf(r.z);
      break;
    case Alternative::kTwoSided: {
      const double shift = r.u > mu ? -0.5 : (r.u < mu ? 0.5 : 0.0);
      r.z = z_of(r.u, shift);
      r.p_value = two_sided_normal_p(r.z);
      break;
    }
  }
  r.p_value = std::clamp(r.p_value, 0.0, 1.0);
  return r;
}

// ---------------------------------------------------------------------------
// t-tests
// ---------------------------------------------------------------------------

namespace {

double p_from_t(double t, double df, Alternative alt) {
  switch (alt) {
    case Alternative::kTwoSided: return 2.0 * (1.0 - t_cdf(std::fabs(t), df));
    case Alternative::kGreater: return 1.0 - t_cdf(t, df);
    case Alternative::kLess: return t_cdf(t, df);
  }
  return 1.0;
}

}  // namespace

TTestResult t_test_pooled(std::span<const double> a, std::span<const double> b,
                          Alternative alt) {
  if (a.size() < 2 || b.size() < 2)
    throw std::invalid_argument("t_test_pooled: need n >= 2 per sample");
  const double n1 = static_cast<double>(a.size());
  const double n2 = static_cast<double>(b.size());
  const double v1 = sample_variance(a);
  const double v2 = sample_variance(b);
  const double sp2 = ((n1 - 1.0) * v1 + (n2 - 1.0) * v2) / (n1 + n2 - 2.0);
  TTestResult r;
  r.df = n1 + n2 - 2.0;
  r.t = (mean(a) - mean(b)) / std::sqrt(sp2 * (1.0 / n1 + 1.0 / n2));
  r.p_value = p_from_t(r.t, r.df, alt);
  return r;
}

TTestResult t_test_welch(std::span<const double> a, std::span<const double> b,
                         Alternative alt) {
  if (a.size() < 2 || b.size() < 2)
    throw std::invalid_argument("t_test_welch: need n >= 2 per sample");
  const double n1 = static_cast<double>(a.size());
  const double n2 = static_cast<double>(b.size());
  const double v1 = sample_variance(a) / n1;
  const double v2 = sample_variance(b) / n2;
  TTestResult r;
  r.t = (mean(a) - mean(b)) / std::sqrt(v1 + v2);
  r.df = (v1 + v2) * (v1 + v2) /
         (v1 * v1 / (n1 - 1.0) + v2 * v2 / (n2 - 1.0));
  r.p_value = p_from_t(r.t, r.df, alt);
  return r;
}

}  // namespace sagesim::stats
