#include "stats/likert.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sagesim::stats {

const char* to_string(Likert v) {
  switch (v) {
    case Likert::kStronglyDisagree: return "Strongly Disagree";
    case Likert::kDisagree: return "Disagree";
    case Likert::kNeutral: return "Neutral";
    case Likert::kAgree: return "Agree";
    case Likert::kStronglyAgree: return "Strongly Agree";
  }
  return "?";
}

const char* to_string(Frequency v) {
  switch (v) {
    case Frequency::kNever: return "Never";
    case Frequency::kSeldom: return "Seldom";
    case Frequency::kSometimes: return "Sometimes";
    case Frequency::kOften: return "Often";
    case Frequency::kAlways: return "Always";
  }
  return "?";
}

double LikertSummary::percent(int v) const {
  if (v < 1 || v > 5)
    throw std::invalid_argument("LikertSummary::percent: value outside [1,5]");
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(counts[static_cast<std::size_t>(v - 1)]) /
         static_cast<double>(total);
}

double LikertSummary::mean_score() const {
  if (total == 0) return 0.0;
  double sum = 0.0;
  for (int v = 1; v <= 5; ++v)
    sum += static_cast<double>(v) *
           static_cast<double>(counts[static_cast<std::size_t>(v - 1)]);
  return sum / static_cast<double>(total);
}

double LikertSummary::top2_fraction() const {
  if (total == 0) return 0.0;
  return static_cast<double>(counts[3] + counts[4]) /
         static_cast<double>(total);
}

double LikertSummary::bottom2_fraction() const {
  if (total == 0) return 0.0;
  return static_cast<double>(counts[0] + counts[1]) /
         static_cast<double>(total);
}

int LikertSummary::mode() const {
  int best = 1;
  for (int v = 2; v <= 5; ++v)
    if (counts[static_cast<std::size_t>(v - 1)] >
        counts[static_cast<std::size_t>(best - 1)])
      best = v;
  return best;
}

LikertSummary summarize_likert(std::span<const int> responses) {
  LikertSummary s;
  for (int r : responses) {
    if (r < 1 || r > 5)
      throw std::invalid_argument(
          "summarize_likert: response outside [1, 5]: " + std::to_string(r));
    ++s.counts[static_cast<std::size_t>(r - 1)];
    ++s.total;
  }
  return s;
}

std::string to_text(const LikertSummary& s) {
  std::ostringstream os;
  static const char* kAbbrev[] = {"SD", "D", "N", "A", "SA"};
  for (int v = 0; v < 5; ++v)
    os << kAbbrev[v] << ':' << s.counts[static_cast<std::size_t>(v)] << ' ';
  os << "(mean " << std::fixed << std::setprecision(2) << s.mean_score()
     << ", n=" << s.total << ')';
  return os.str();
}

std::vector<int> responses_from_counts(
    const std::array<std::size_t, 5>& counts) {
  std::vector<int> out;
  for (int v = 1; v <= 5; ++v)
    out.insert(out.end(), counts[static_cast<std::size_t>(v - 1)], v);
  return out;
}

}  // namespace sagesim::stats
