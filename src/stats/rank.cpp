#include "stats/rank.hpp"

#include <algorithm>
#include <numeric>

namespace sagesim::stats {

std::vector<double> rankdata(std::span<const double> x) {
  const std::size_t n = x.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });

  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && x[order[j + 1]] == x[order[i]]) ++j;
    // Positions i..j (0-based) share the midrank.
    const double midrank = 0.5 * (static_cast<double>(i + 1) +
                                  static_cast<double>(j + 1));
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }
  return ranks;
}

std::vector<std::size_t> tie_group_sizes(std::span<const double> x) {
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::size_t> sizes;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    sizes.push_back(j - i + 1);
    i = j + 1;
  }
  return sizes;
}

double tie_correction(std::span<const double> x) {
  double sum = 0.0;
  for (std::size_t t : tie_group_sizes(x)) {
    const double td = static_cast<double>(t);
    sum += td * td * td - td;
  }
  return sum;
}

}  // namespace sagesim::stats
