#include "core/distributed_gcn.hpp"

#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "ddp/grad_sync.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/optim.hpp"
#include "prof/report.hpp"

namespace sagesim::core {

const char* to_string(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kMetis: return "metis";
    case PartitionStrategy::kRandom: return "random";
    case PartitionStrategy::kBlock: return "block";
  }
  return "?";
}

namespace {

/// Per-worker shard: local graph operator, features, labels, train rows.
struct Shard {
  graph::Subgraph sub;
  graph::NormalizedAdjacency adj;
  tensor::Tensor features;
  std::vector<int> labels;
  std::vector<std::uint32_t> train_rows;
};

Shard make_shard(const graph::Dataset& dataset,
                 const std::vector<graph::NodeId>& nodes) {
  Shard shard;
  shard.sub = graph::induced_subgraph(dataset.graph, nodes);
  shard.adj = graph::normalized_adjacency(shard.sub.graph);

  const std::size_t n = shard.sub.global_ids.size();
  const std::size_t d = dataset.features.cols();
  shard.features = tensor::Tensor(n, d);
  shard.labels.resize(n);
  std::unordered_map<graph::NodeId, std::uint32_t> local_of;
  for (std::uint32_t i = 0; i < n; ++i) {
    const graph::NodeId g = shard.sub.global_ids[i];
    std::copy(dataset.features.data() + g * d,
              dataset.features.data() + (g + 1) * d,
              shard.features.data() + i * d);
    shard.labels[i] = dataset.labels[g];
    local_of.emplace(g, i);
  }
  for (const graph::NodeId g : dataset.train_nodes) {
    auto it = local_of.find(g);
    if (it != local_of.end()) shard.train_rows.push_back(it->second);
  }
  return shard;
}

}  // namespace

DistributedGcnResult train_distributed_gcn(
    const graph::Dataset& dataset, dflow::Cluster& cluster,
    const DistributedGcnConfig& config) {
  const int k = config.num_partitions;
  if (k < 1)
    throw std::invalid_argument("train_distributed_gcn: k must be >= 1");
  if (k > cluster.world_size())
    throw std::invalid_argument(
        "train_distributed_gcn: more partitions than cluster workers");
  if (config.epochs < 1)
    throw std::invalid_argument("train_distributed_gcn: epochs must be >= 1");

  auto& devices = cluster.devices();
  const double sim_t0 = devices.now_s();

  // --- Algorithm 1, lines 2-3: Â and the k-way partition. ------------------
  graph::Partition part;
  if (k == 1) {
    part.num_parts = 1;
    part.assignment.assign(dataset.graph.num_nodes(), 0);
  } else {
    switch (config.strategy) {
      case PartitionStrategy::kMetis: {
        graph::MetisOptions opts;
        opts.seed = config.seed;
        part = graph::metis_like(dataset.graph, k, opts);
        break;
      }
      case PartitionStrategy::kRandom: {
        stats::Rng prng(config.seed);
        part = graph::random_partition(dataset.graph, k, prng);
        break;
      }
      case PartitionStrategy::kBlock:
        part = graph::block_partition(dataset.graph, k);
        break;
    }
  }

  DistributedGcnResult result;
  result.partition = graph::evaluate_partition(dataset.graph, part);

  // --- Lines 5-6: build and distribute shards. -----------------------------
  const auto part_nodes = part.part_nodes();
  std::vector<Shard> shards;
  shards.reserve(static_cast<std::size_t>(k));
  for (int p = 0; p < k; ++p) {
    if (part_nodes[static_cast<std::size_t>(p)].empty())
      throw std::runtime_error("train_distributed_gcn: empty partition " +
                               std::to_string(p));
    shards.push_back(
        make_shard(dataset, part_nodes[static_cast<std::size_t>(p)]));
    result.cut_edges_dropped += shards.back().sub.cut_edges_dropped;
    if (shards.back().train_rows.empty())
      throw std::runtime_error(
          "train_distributed_gcn: partition without train nodes");
  }

  // --- Lines 7-8: global model, broadcast θ. -------------------------------
  // Replicas share the init seed, so their parameters start identical (the
  // broadcast); the wire cost of the broadcast is charged explicitly.
  nn::Gcn::Config model_cfg;
  model_cfg.in_features = dataset.features.cols();
  model_cfg.hidden = config.hidden;
  model_cfg.num_classes = static_cast<std::size_t>(dataset.num_classes);
  model_cfg.dropout = config.dropout;
  model_cfg.seed = config.seed;

  std::vector<std::unique_ptr<nn::Gcn>> replicas;
  std::vector<std::unique_ptr<nn::Sgd>> optimizers;
  for (int r = 0; r < k; ++r) {
    replicas.push_back(std::make_unique<nn::Gcn>(
        &shards[static_cast<std::size_t>(r)].adj, model_cfg));
    optimizers.push_back(
        std::make_unique<nn::Sgd>(config.learning_rate, 0.9f));
  }

  std::unique_ptr<ddp::GradientSynchronizer> sync;
  if (k > 1) {
    std::vector<std::vector<nn::Param*>> param_sets;
    param_sets.reserve(replicas.size());
    for (auto& r : replicas) param_sets.push_back(r->params());
    ddp::broadcast_params(devices, param_sets);
    sync = std::make_unique<ddp::GradientSynchronizer>(devices, param_sets);
  }

  // --- Lines 9-14: synchronized epochs, expressed as one task DAG. ---------
  // Per epoch and rank r:  loss[e][r] -> allreduce[e] -> step[e][r], and
  // loss[e+1][r] depends on step[e][r].  The whole training run is submitted
  // up front and synchronized only once at the end — the runtime's
  // dependency edges replace the per-epoch host barriers.  Loss/step tasks
  // are pinned to their rank (device affinity); the gradient all-reduce is
  // unpinned and runs on whichever worker frees up first.
  double scheduler_s = 0.0;
  std::vector<dflow::Future> prev_step(static_cast<std::size_t>(k));
  for (auto& f : prev_step) f = dflow::Future::immediate({});
  std::vector<std::vector<dflow::Future>> epoch_loss_futures;
  epoch_loss_futures.reserve(static_cast<std::size_t>(config.epochs));

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::vector<dflow::Future> losses;
    losses.reserve(static_cast<std::size_t>(k));
    for (int r = 0; r < k; ++r) {
      losses.push_back(cluster.submit(
          "gcn_epoch",
          [&, r](dflow::WorkerCtx& ctx) -> std::any {
            auto& shard = shards[static_cast<std::size_t>(r)];
            auto& model = *replicas[static_cast<std::size_t>(r)];
            model.zero_grad();
            tensor::Tensor logits =
                model.forward(ctx.device, shard.features, /*train=*/true);
            auto loss = nn::masked_softmax_cross_entropy(
                ctx.device, logits, shard.labels, shard.train_rows);
            model.backward(ctx.device, loss.dlogits);
            return loss.loss;
          },
          {prev_step[static_cast<std::size_t>(r)]}, r));
    }

    dflow::Future reduced = cluster.submit(
        "grad_allreduce",
        [&](dflow::WorkerCtx&) -> std::any {
          if (sync) sync->sync();
          return {};
        },
        losses, /*rank=*/-1);

    for (int r = 0; r < k; ++r) {
      prev_step[static_cast<std::size_t>(r)] = cluster.submit(
          "sgd_step",
          [&, r](dflow::WorkerCtx& ctx) -> std::any {
            auto params = replicas[static_cast<std::size_t>(r)]->params();
            optimizers[static_cast<std::size_t>(r)]->step(ctx.device, params);
            return {};
          },
          {reduced}, r);
    }
    epoch_loss_futures.push_back(std::move(losses));

    // Dask control plane: dispatch of the epoch's 2k+1 tasks is serialized
    // on the scheduler — the overhead that erases most of the wall-clock
    // win for course-scale graphs.
    scheduler_s += 2.0 * static_cast<double>(k) * config.scheduler_overhead_s;
  }

  // One barrier for the whole run (the final steps transitively cover the
  // entire DAG), then fold the per-epoch mean losses out of the futures.
  for (auto& f : prev_step) f.wait();
  for (const auto& losses : epoch_loss_futures) {
    double epoch_loss = 0.0;
    for (const auto& f : losses) epoch_loss += f.get<double>();
    result.epoch_losses.push_back(epoch_loss / static_cast<double>(k));
  }
  prof::TraceEvent sched;
  sched.name = "dask_scheduler";
  sched.kind = prof::EventKind::kScheduler;
  sched.start_s = sim_t0;
  sched.duration_s = scheduler_s;
  devices.timeline().record(std::move(sched));

  result.train_sim_seconds = (devices.now_s() - sim_t0) + scheduler_s;

  // --- Evaluation: full-graph forward with replica 0's weights. ------------
  const graph::NormalizedAdjacency full_adj =
      graph::normalized_adjacency(dataset.graph);
  replicas[0]->set_adjacency(&full_adj);
  const tensor::Tensor logits = replicas[0]->forward(
      &devices.device(0), dataset.features, /*train=*/false);
  result.test_accuracy =
      nn::masked_accuracy(logits, dataset.labels, dataset.test_nodes);
  replicas[0]->set_adjacency(&shards[0].adj);

  for (int r = 0; r < k; ++r)
    result.gpu_utilization.push_back(
        prof::kernel_utilization(devices.timeline(), r));
  return result;
}

}  // namespace sagesim::core
