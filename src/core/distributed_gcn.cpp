#include "core/distributed_gcn.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "ddp/grad_sync.hpp"
#include "nn/checkpoint.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/optim.hpp"
#include "prof/report.hpp"

namespace sagesim::core {

const char* to_string(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kMetis: return "metis";
    case PartitionStrategy::kRandom: return "random";
    case PartitionStrategy::kBlock: return "block";
  }
  return "?";
}

namespace {

/// Per-worker shard: local graph operator, features, labels, train rows.
struct Shard {
  graph::Subgraph sub;
  graph::NormalizedAdjacency adj;
  tensor::Tensor features;
  std::vector<int> labels;
  std::vector<std::uint32_t> train_rows;
};

Shard make_shard(const graph::Dataset& dataset,
                 const std::vector<graph::NodeId>& nodes) {
  Shard shard;
  shard.sub = graph::induced_subgraph(dataset.graph, nodes);
  shard.adj = graph::normalized_adjacency(shard.sub.graph);

  const std::size_t n = shard.sub.global_ids.size();
  const std::size_t d = dataset.features.cols();
  shard.features = tensor::Tensor(n, d);
  shard.labels.resize(n);
  std::unordered_map<graph::NodeId, std::uint32_t> local_of;
  for (std::uint32_t i = 0; i < n; ++i) {
    const graph::NodeId g = shard.sub.global_ids[i];
    std::copy(dataset.features.data() + g * d,
              dataset.features.data() + (g + 1) * d,
              shard.features.data() + i * d);
    shard.labels[i] = dataset.labels[g];
    local_of.emplace(g, i);
  }
  for (const graph::NodeId g : dataset.train_nodes) {
    auto it = local_of.find(g);
    if (it != local_of.end()) shard.train_rows.push_back(it->second);
  }
  return shard;
}

graph::Partition build_partition(const graph::Dataset& dataset,
                                 const DistributedGcnConfig& config, int k) {
  graph::Partition part;
  if (k == 1) {
    part.num_parts = 1;
    part.assignment.assign(dataset.graph.num_nodes(), 0);
    return part;
  }
  switch (config.strategy) {
    case PartitionStrategy::kMetis: {
      graph::MetisOptions opts;
      opts.seed = config.seed;
      part = graph::metis_like(dataset.graph, k, opts);
      break;
    }
    case PartitionStrategy::kRandom: {
      stats::Rng prng(config.seed);
      part = graph::random_partition(dataset.graph, k, prng);
      break;
    }
    case PartitionStrategy::kBlock:
      part = graph::block_partition(dataset.graph, k);
      break;
  }
  return part;
}

std::vector<Shard> build_shards(const graph::Dataset& dataset,
                                const graph::Partition& part, int k,
                                std::size_t& cut_edges_dropped) {
  const auto part_nodes = part.part_nodes();
  std::vector<Shard> shards;
  shards.reserve(static_cast<std::size_t>(k));
  cut_edges_dropped = 0;
  for (int p = 0; p < k; ++p) {
    if (part_nodes[static_cast<std::size_t>(p)].empty())
      throw std::runtime_error("train_distributed_gcn: empty partition " +
                               std::to_string(p));
    shards.push_back(
        make_shard(dataset, part_nodes[static_cast<std::size_t>(p)]));
    cut_edges_dropped += shards.back().sub.cut_edges_dropped;
    if (shards.back().train_rows.empty())
      throw std::runtime_error(
          "train_distributed_gcn: partition without train nodes");
  }
  return shards;
}

}  // namespace

Expected<DistributedGcnResult> try_train_distributed_gcn(
    const graph::Dataset& dataset, dflow::Cluster& cluster,
    const DistributedGcnConfig& config) {
  const int k = config.num_partitions;
  if (k < 1)
    throw std::invalid_argument("train_distributed_gcn: k must be >= 1");
  if (k > cluster.world_size())
    throw std::invalid_argument(
        "train_distributed_gcn: more partitions than cluster workers");
  if (config.epochs < 1)
    throw std::invalid_argument("train_distributed_gcn: epochs must be >= 1");
  const GcnFaultOptions& ft = config.fault;
  if (ft.enabled) {
    if (ft.checkpoint_dir.empty())
      throw std::invalid_argument(
          "train_distributed_gcn: fault tolerance needs a checkpoint_dir");
    if (ft.checkpoint_every < 1)
      throw std::invalid_argument(
          "train_distributed_gcn: checkpoint_every must be >= 1");
    if (ft.max_chunk_attempts < 1)
      throw std::invalid_argument(
          "train_distributed_gcn: max_chunk_attempts must be >= 1");
  }

  auto& devices = cluster.devices();
  const double sim_t0 = devices.now_s();

  // --- Algorithm 1, lines 2-3: Â and the k-way partition. ------------------
  graph::Partition part = build_partition(dataset, config, k);

  DistributedGcnResult result;
  result.partition = graph::evaluate_partition(dataset.graph, part);

  // --- Lines 5-6: build and distribute shards. -----------------------------
  std::vector<Shard> shards =
      build_shards(dataset, part, k, result.cut_edges_dropped);

  // --- Lines 7-8: global model, broadcast θ. -------------------------------
  // Replicas share the init seed, so their parameters start identical (the
  // broadcast); the wire cost of the broadcast is charged explicitly.
  nn::Gcn::Config model_cfg;
  model_cfg.in_features = dataset.features.cols();
  model_cfg.hidden = config.hidden;
  model_cfg.num_classes = static_cast<std::size_t>(dataset.num_classes);
  model_cfg.dropout = config.dropout;
  model_cfg.seed = config.seed;

  std::vector<std::unique_ptr<nn::Gcn>> replicas;
  std::vector<std::unique_ptr<nn::Sgd>> optimizers;
  std::unique_ptr<ddp::GradientSynchronizer> sync;
  // Partition p trains on cluster rank rank_of_part[p]; the identity map
  // until preemption forces a remap onto surviving ranks.
  std::vector<int> rank_of_part;

  auto build_replicas = [&]() {
    const int kw = static_cast<int>(shards.size());
    replicas.clear();
    optimizers.clear();
    sync.reset();
    for (int r = 0; r < kw; ++r) {
      replicas.push_back(std::make_unique<nn::Gcn>(
          &shards[static_cast<std::size_t>(r)].adj, model_cfg));
      optimizers.push_back(
          std::make_unique<nn::Sgd>(config.learning_rate, 0.9f));
    }
    if (kw > 1) {
      std::vector<std::vector<nn::Param*>> param_sets;
      param_sets.reserve(replicas.size());
      for (auto& r : replicas) param_sets.push_back(r->params());
      ddp::broadcast_params(devices, param_sets);
      sync = std::make_unique<ddp::GradientSynchronizer>(
          devices, param_sets,
          ddp::SyncOptions{.bucket_bytes = config.ddp_bucket_bytes,
                           .overlap = config.ddp_overlap});
    }
  };
  build_replicas();
  rank_of_part.resize(static_cast<std::size_t>(k));
  for (int r = 0; r < k; ++r) rank_of_part[static_cast<std::size_t>(r)] = r;

  // Line 4, "Distribute Gi, Xi, Yi to worker i", as explicit placement:
  // every shard's features and adjacency plus its replica's parameters and
  // gradients move to the owning rank's device through accounted H2D
  // transfers.  Kernels compute the same bits at either placement (device
  // storage is host-reachable), so this changes the transfer ledger — a
  // pinned, testable quantity — and nothing else.  Idempotent: tensors
  // already on the right device are left alone, so re-running after a remap
  // or restore only uploads what actually moved.
  auto place_all = [&]() -> Status {
    for (std::size_t p = 0; p < shards.size(); ++p) {
      auto& dev = devices.device(
          static_cast<std::size_t>(rank_of_part[p]));
      Status s = shards[p].features.to_device(dev);
      if (!s.ok()) return s;
      s = shards[p].adj.to_device(dev);
      if (!s.ok()) return s;
      for (nn::Param* prm : replicas[p]->params()) {
        s = prm->value.to_device(dev);
        if (!s.ok()) return s;
        s = prm->grad.to_device(dev);
        if (!s.ok()) return s;
      }
    }
    return {};
  };
  if (const Status s = place_all(); !s.ok()) return s;

  // --- Lines 9-14: synchronized epochs, expressed as task DAGs. ------------
  // Per epoch and rank r:  loss[e][r] -> allreduce[e] -> step[e][r], and
  // loss[e+1][r] depends on step[e][r].  Loss/step tasks are pinned to their
  // rank (device affinity); the gradient all-reduce is unpinned and runs on
  // whichever worker frees up first.
  double scheduler_s = 0.0;
  auto submit_epoch =
      [&](std::vector<dflow::Future>& prev) -> std::vector<dflow::Future> {
    const int kw = static_cast<int>(shards.size());
    std::vector<dflow::Future> losses;
    losses.reserve(static_cast<std::size_t>(kw));
    for (int r = 0; r < kw; ++r) {
      losses.push_back(cluster.submit(
          "gcn_epoch",
          [&, r](dflow::WorkerCtx& ctx) -> std::any {
            auto& shard = shards[static_cast<std::size_t>(r)];
            auto& model = *replicas[static_cast<std::size_t>(r)];
            model.zero_grad();
            tensor::Tensor logits =
                model.forward(ctx.device, shard.features, /*train=*/true);
            auto loss = nn::masked_softmax_cross_entropy(
                ctx.device, logits, shard.labels, shard.train_rows);
            if (sync) {
              // DDP-style backward hook: buckets fire on the comm streams
              // while the rest of backward still runs.
              model.backward(ctx.device, loss.dlogits, [&](nn::Param* p) {
                sync->notify_grad_ready(static_cast<std::size_t>(r), p);
              });
            } else {
              model.backward(ctx.device, loss.dlogits);
            }
            return loss.loss;
          },
          {prev[static_cast<std::size_t>(r)]},
          rank_of_part[static_cast<std::size_t>(r)]));
    }

    dflow::Future reduced = cluster.submit(
        "grad_allreduce",
        [&](dflow::WorkerCtx&) -> std::any {
          if (sync) sync->sync();
          return {};
        },
        losses, /*rank=*/-1);

    for (int r = 0; r < kw; ++r) {
      prev[static_cast<std::size_t>(r)] = cluster.submit(
          "sgd_step",
          [&, r](dflow::WorkerCtx& ctx) -> std::any {
            auto params = replicas[static_cast<std::size_t>(r)]->params();
            optimizers[static_cast<std::size_t>(r)]->step(ctx.device, params);
            return {};
          },
          {reduced}, rank_of_part[static_cast<std::size_t>(r)]);
    }

    // Dask control plane: dispatch of the epoch's 2k+1 tasks is serialized
    // on the scheduler — the overhead that erases most of the wall-clock
    // win for course-scale graphs.  Re-run chunks pay it again, which is
    // exactly the recovery overhead the preemption bench measures.
    scheduler_s += 2.0 * static_cast<double>(kw) * config.scheduler_overhead_s;
    return losses;
  };

  // Submits epochs [begin_e, end_e), waits out the whole sub-DAG, and folds
  // the per-epoch mean losses into the result.  Any task failure (injected
  // preemption, reclaimed rank, real exception) surfaces as the Status of
  // the first failed step; nothing is appended to epoch_losses in that case
  // and — because every future has been waited — no in-flight task still
  // references the shard/replica state the caller may now rebuild.
  auto run_chunk = [&](int begin_e, int end_e) -> Status {
    // Quiescent on entry (any prior chunk's futures were waited out): drop
    // readiness state an aborted attempt may have left behind, so a re-run
    // never mixes stale notifications with fresh ones.
    if (sync) sync->reset_pending();
    const int kw = static_cast<int>(shards.size());
    std::vector<dflow::Future> prev(static_cast<std::size_t>(kw));
    for (auto& f : prev) f = dflow::Future::immediate({});
    std::vector<std::vector<dflow::Future>> chunk_losses;
    chunk_losses.reserve(static_cast<std::size_t>(end_e - begin_e));
    for (int e = begin_e; e < end_e; ++e)
      chunk_losses.push_back(submit_epoch(prev));

    Status first{};
    for (auto& f : prev) {
      const Status s = f.wait_status();
      if (!s.ok() && first.ok()) first = s;
    }
    if (!first.ok()) return first;

    for (const auto& losses : chunk_losses) {
      double epoch_loss = 0.0;
      for (const auto& f : losses) {
        Expected<double> v = f.result<double>();
        if (!v) return v.status();
        epoch_loss += *v;
      }
      result.epoch_losses.push_back(epoch_loss / static_cast<double>(kw));
    }
    return {};
  };

  auto finish = [&]() -> DistributedGcnResult {
    prof::TraceEvent sched;
    sched.name = "dask_scheduler";
    sched.kind = prof::EventKind::kScheduler;
    sched.start_s = sim_t0;
    sched.duration_s = scheduler_s;
    devices.timeline().record(std::move(sched));

    result.train_sim_seconds = (devices.now_s() - sim_t0) + scheduler_s;

    // The trained model leaves the cluster: replica 0's parameters come
    // back to the host (accounted D2H) before evaluation consumes them.
    for (nn::Param* prm : replicas[0]->params())
      prm->value.to_host().throw_if_error();

    // Evaluation: full-graph forward with replica 0's weights.
    const graph::NormalizedAdjacency full_adj =
        graph::normalized_adjacency(dataset.graph);
    replicas[0]->set_adjacency(&full_adj);
    const tensor::Tensor logits = replicas[0]->forward(
        &devices.device(0), dataset.features, /*train=*/false);
    result.test_accuracy =
        nn::masked_accuracy(logits, dataset.labels, dataset.test_nodes);
    replicas[0]->set_adjacency(&shards[0].adj);

    for (const int rank : rank_of_part)
      result.gpu_utilization.push_back(
          prof::kernel_utilization(devices.timeline(), rank));
    result.final_world = static_cast<int>(shards.size());
    return result;
  };

  if (!ft.enabled) {
    // Fast path: the whole training run is one DAG, submitted up front and
    // synchronized once at the end — dependency edges replace the per-epoch
    // host barriers.
    const Status s = run_chunk(0, config.epochs);
    if (!s.ok()) return s;
    return finish();
  }

  // --- Fault-tolerant path: chunked epochs with checkpoint/restart. --------
  // Parameters and optimizer velocity are identical across replicas after
  // every synchronized step (averaged gradients are the only update), so
  // the checkpoint stores replica 0's copy once; the dropout RNG streams
  // are genuinely per-replica and are stored per rank — restoring them is
  // what makes a re-run of a chunk bit-identical to a run that was never
  // preempted.
  auto save_ckpt = [&](std::uint64_t epoch) -> Status {
    nn::Checkpoint ckpt;
    ckpt.epoch = epoch;
    ckpt.scalars["k"] = static_cast<double>(shards.size());
    const auto params0 = replicas[0]->params();
    for (std::size_t p = 0; p < params0.size(); ++p)
      ckpt.put("param" + std::to_string(p), params0[p]->value);
    const auto opt_state = optimizers[0]->state();
    for (std::size_t s = 0; s < opt_state.size(); ++s)
      ckpt.put("opt" + std::to_string(s), opt_state[s]);
    ckpt.scalars["opt_n"] = static_cast<double>(opt_state.size());
    ckpt.scalars["opt_t"] =
        static_cast<double>(optimizers[0]->step_count());
    for (std::size_t e = 0; e < result.epoch_losses.size(); ++e)
      ckpt.scalars["loss." + std::to_string(e)] = result.epoch_losses[e];
    for (std::size_t r = 0; r < replicas.size(); ++r)
      ckpt.blobs["rng" + std::to_string(r)] =
          nn::serialize_engine(replicas[r]->rng().engine());
    const Status s = nn::save_checkpoint(
        nn::checkpoint_path(ft.checkpoint_dir, ft.checkpoint_prefix, epoch),
        ckpt);
    if (s.ok()) ++result.checkpoints_written;
    return s;
  };

  auto restore_ckpt = [&](const nn::Checkpoint& ckpt,
                          bool restore_rng) -> Status {
    for (auto& replica : replicas) {
      auto params = replica->params();
      for (std::size_t p = 0; p < params.size(); ++p) {
        const auto it = ckpt.tensors.find("param" + std::to_string(p));
        if (it == ckpt.tensors.end() ||
            !it->second.same_shape(params[p]->value))
          return Status::failed_precondition(
              "train_distributed_gcn: checkpoint parameter mismatch");
        params[p]->value = it->second;
      }
    }
    const auto n_it = ckpt.scalars.find("opt_n");
    const std::size_t opt_n =
        n_it == ckpt.scalars.end() ? 0
                                   : static_cast<std::size_t>(n_it->second);
    std::vector<tensor::Tensor> opt_state;
    opt_state.reserve(opt_n);
    for (std::size_t s = 0; s < opt_n; ++s) {
      const auto it = ckpt.tensors.find("opt" + std::to_string(s));
      if (it == ckpt.tensors.end())
        return Status::failed_precondition(
            "train_distributed_gcn: checkpoint optimizer state missing");
      opt_state.push_back(it->second);
    }
    const auto t_it = ckpt.scalars.find("opt_t");
    for (auto& opt : optimizers) {
      opt->set_state(opt_state);
      if (t_it != ckpt.scalars.end())
        opt->set_step_count(static_cast<std::uint64_t>(t_it->second));
    }
    if (restore_rng) {
      for (std::size_t r = 0; r < replicas.size(); ++r) {
        const auto it = ckpt.blobs.find("rng" + std::to_string(r));
        if (it == ckpt.blobs.end())
          return Status::failed_precondition(
              "train_distributed_gcn: checkpoint RNG stream missing");
        const Status s =
            nn::deserialize_engine(it->second, replicas[r]->rng().engine());
        if (!s.ok()) return s;
      }
    }
    result.epoch_losses.clear();
    result.epoch_losses.reserve(static_cast<std::size_t>(ckpt.epoch));
    for (std::uint64_t e = 0; e < ckpt.epoch; ++e) {
      const auto it = ckpt.scalars.find("loss." + std::to_string(e));
      if (it == ckpt.scalars.end())
        return Status::failed_precondition(
            "train_distributed_gcn: checkpoint loss history missing");
      result.epoch_losses.push_back(it->second);
    }
    return {};
  };

  // Resume-on-entry: a same-k checkpoint in the directory means this call
  // is the restarted half of a preempted run — pick up where it left off.
  int epoch = 0;
  if (Expected<nn::Checkpoint> latest = nn::load_latest_checkpoint(
          ft.checkpoint_dir, ft.checkpoint_prefix)) {
    const auto kit = latest->scalars.find("k");
    if (kit != latest->scalars.end() &&
        static_cast<int>(kit->second) == static_cast<int>(shards.size())) {
      const Status rs = restore_ckpt(*latest, /*restore_rng=*/true);
      if (!rs.ok()) return rs;
      // Restored parameters are host tensors; put them back on-device.
      if (const Status ps = place_all(); !ps.ok()) return ps;
      epoch = static_cast<int>(latest->epoch);
      ++result.checkpoints_restored;
    }
  }
  if (epoch == 0) {
    // Epoch-0 checkpoint right after init, so every recovery — including a
    // failure in the very first chunk — restores through the same path.
    const Status s = save_ckpt(0);
    if (!s.ok()) return s;
  }

  while (epoch < config.epochs) {
    Status chunk_status{};
    bool chunk_ok = false;
    for (int attempt = 1; attempt <= ft.max_chunk_attempts; ++attempt) {
      const int chunk_end =
          std::min(epoch + ft.checkpoint_every, config.epochs);
      chunk_status = run_chunk(epoch, chunk_end);
      if (chunk_status.ok()) {
        epoch = chunk_end;
        chunk_ok = true;
        break;
      }
      if (!chunk_status.retryable()) return chunk_status;
      ++result.chunk_restarts;

      // Elastic step: ranks reclaimed for good get their partitions moved
      // to survivors; if there are not enough survivors, shrink the world
      // by re-partitioning METIS across what is left (when allowed).
      bool lost = false;
      for (const int rank : rank_of_part)
        if (!cluster.rank_available(rank)) lost = true;
      if (lost) {
        const std::vector<int> survivors = cluster.active_ranks();
        if (survivors.empty())
          return Status::unavailable(
              "train_distributed_gcn: every rank is preempted");
        const int cur_k = static_cast<int>(shards.size());
        if (static_cast<int>(survivors.size()) >= cur_k) {
          rank_of_part.assign(survivors.begin(), survivors.begin() + cur_k);
        } else if (ft.allow_shrink) {
          const int new_k = static_cast<int>(survivors.size());
          try {
            part = build_partition(dataset, config, new_k);
            result.partition = graph::evaluate_partition(dataset.graph, part);
            shards =
                build_shards(dataset, part, new_k, result.cut_edges_dropped);
            build_replicas();
          } catch (const std::exception& e) {
            return Status::failed_precondition(
                std::string("train_distributed_gcn: re-shard failed: ") +
                e.what());
          }
          rank_of_part = survivors;
          ++result.reshards;
        } else {
          return Status::unavailable(
              "train_distributed_gcn: rank lost with allow_shrink=false: " +
              chunk_status.message());
        }
      }

      Expected<nn::Checkpoint> latest = nn::load_latest_checkpoint(
          ft.checkpoint_dir, ft.checkpoint_prefix);
      if (!latest) return latest.status();
      // After a shrink the checkpoint predates the new shard layout: the
      // parameter/optimizer tensors are shard-independent and carry over,
      // but the per-replica RNG streams do not (fresh seeds; bit-identity
      // is abandoned, as documented on GcnFaultOptions::allow_shrink).
      const auto kit = latest->scalars.find("k");
      const bool same_k =
          kit != latest->scalars.end() &&
          static_cast<int>(kit->second) == static_cast<int>(shards.size());
      const Status rs = restore_ckpt(*latest, /*restore_rng=*/same_k);
      if (!rs.ok()) return rs;
      // Re-place after the remap/re-shard and restore: moved partitions and
      // freshly restored (host) parameters go to their new owning devices.
      if (const Status ps = place_all(); !ps.ok()) return ps;
      epoch = static_cast<int>(latest->epoch);
      ++result.checkpoints_restored;
    }
    if (!chunk_ok)
      return Status::unavailable(
          "train_distributed_gcn: chunk at epoch " + std::to_string(epoch) +
          " failed after " + std::to_string(ft.max_chunk_attempts) +
          " attempts: " + chunk_status.message());
    const Status s = save_ckpt(static_cast<std::uint64_t>(epoch));
    if (!s.ok()) return s;
  }

  return finish();
}

}  // namespace sagesim::core
