// LabRunner: executes a miniature, self-checking version of every weekly
// lab deliverable in Table I, wiring together the same modules a student
// would.  Used by the table1 bench and the course_semester example as the
// integration surface of the whole library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sagesim::core {

struct LabReport {
  int week{0};
  std::string title;
  bool passed{false};
  std::string notes;          ///< one-line result summary
  double sim_gpu_seconds{0.0};  ///< simulated device time the lab consumed
};

class LabRunner {
 public:
  explicit LabRunner(std::uint64_t seed = 2024);

  /// Runs the lab for @p week (1-14; week 7 is the midterm and has no lab).
  /// Throws std::invalid_argument for weeks without labs.
  LabReport run(int week);

  /// Runs every lab in order; never throws on lab *failure* (the report
  /// carries it), only on harness misuse.
  std::vector<LabReport> run_all();

  /// Human-readable titles, indexed by week.
  static std::string title_of(int week);

 private:
  std::uint64_t seed_;
};

}  // namespace sagesim::core
