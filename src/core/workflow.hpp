// The AI-workflow builder: named stages over a shared context, each timed
// and reported — the way the course frames every end-to-end exercise
// ("provision -> stage data -> train -> evaluate -> tear down").
//
// Workflows are DAGs since the runtime unification.  The historical linear
// API is sugar: each `stage(name, fn)` call implicitly depends on the
// previously declared stage.  `stage(name, fn, StageOptions{.after = ...})`
// declares explicit dependencies instead; stages with disjoint ancestry run
// concurrently on the shared task-graph runtime (runtime::Scheduler).
//
// Failure semantics (preserved from the linear builder): a throwing stage
// marks the workflow failed; every stage downstream of a failure is skipped
// unless it was added with `always_run` (teardown).  An always_run stage
// still waits for its dependencies and still passes the failure "poison"
// through to its dependents, so cleanup cannot resurrect a failed pipeline.
#pragma once

#include <any>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloudsim/provisioner.hpp"
#include "gpusim/device_manager.hpp"
#include "runtime/status.hpp"

namespace sagesim::core {

/// Shared state stages communicate through: the simulated GPUs, the cloud
/// control plane, and a typed blackboard.  The blackboard is thread-safe at
/// the operation level (concurrent stages may put/get distinct keys);
/// stages that hand a value from one to another must be ordered with
/// `after` — that dependency edge is what makes the write visible.
class WorkflowContext {
 public:
  WorkflowContext(gpu::DeviceManager& devices, cloud::Provisioner& aws)
      : devices_(&devices), aws_(&aws) {}

  gpu::DeviceManager& devices() { return *devices_; }
  cloud::Provisioner& aws() { return *aws_; }

  /// Stores a value under @p key (overwrites).
  template <typename T>
  void put(const std::string& key, T value) {
    std::lock_guard lock(mutex_);
    blackboard_[key] = std::move(value);
  }

  /// Typed read; throws std::out_of_range for missing keys and
  /// std::bad_any_cast on type mismatch.  The returned reference stays
  /// valid across later put() calls of other keys (node-based map).
  template <typename T>
  T& get(const std::string& key) {
    std::lock_guard lock(mutex_);
    auto it = blackboard_.find(key);
    if (it == blackboard_.end())
      throw std::out_of_range("WorkflowContext: no key '" + key + "'");
    T* value = std::any_cast<T>(&it->second);
    if (value == nullptr) throw std::bad_any_cast();
    return *value;
  }

  bool has(const std::string& key) const {
    std::lock_guard lock(mutex_);
    return blackboard_.contains(key);
  }

 private:
  gpu::DeviceManager* devices_;
  cloud::Provisioner* aws_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::any> blackboard_;
};

/// Result of one stage.  Outcomes are Status-backed: a skipped stage reads
/// kCancelled, a thrown exception is classified by Status::from_exception
/// (so a stage preempted by fault injection reads kPreempted, retryable).
struct StageReport {
  std::string name;
  Status status;                ///< ok, the failure, or kCancelled (skipped)
  int attempts{0};              ///< execution attempts (0 when skipped)
  double sim_gpu_seconds{0.0};  ///< device time the stage consumed

  bool ok() const { return status.ok(); }
  /// Failure/skip message; empty on success.
  const std::string& error() const { return status.message(); }
};

struct WorkflowReport {
  std::vector<StageReport> stages;  ///< declaration order
  Status status;                    ///< first stage failure, or ok
  double total_sim_gpu_seconds{0.0};

  bool ok() const { return status.ok(); }
  const std::string& error() const { return status.message(); }
};

/// Explicit-dependency form of Workflow::stage.
struct StageOptions {
  /// Names of previously declared stages this stage runs after.  Empty
  /// means the stage is a root and may start immediately.
  std::vector<std::string> after;
  /// Teardown semantics: run even when an upstream stage failed.
  bool always_run{false};
  /// Total execution attempts for *retryable* failures (preemption,
  /// deadline, unavailability); non-retryable failures never re-run.
  int max_attempts{1};
};

/// A DAG of named stages (linear pipelines as the degenerate chain).
class Workflow {
 public:
  using StageFn = std::function<void(WorkflowContext&)>;

  explicit Workflow(std::string name) : name_(std::move(name)) {}

  /// Appends a stage that implicitly depends on the previously declared
  /// stage (linear sugar).  @p always_run stages execute even after an
  /// upstream failure (cleanup/teardown semantics).
  Workflow& stage(std::string stage_name, StageFn fn,
                  bool always_run = false);

  /// Appends a stage with explicit dependencies.  Every name in
  /// opts.after must refer to a previously declared stage (throws
  /// std::invalid_argument otherwise); later declarations win when names
  /// repeat.
  Workflow& stage(std::string stage_name, StageFn fn, StageOptions opts);

  /// Runs the DAG against @p ctx.  Independent stages run concurrently on
  /// the shared runtime pool; when the pool has a single worker (or run()
  /// is itself executing on a pool worker), stages execute inline in
  /// declaration order — always a valid topological order, since `after`
  /// can only reference earlier stages.
  WorkflowReport run(WorkflowContext& ctx) const;

  const std::string& name() const { return name_; }
  std::size_t stage_count() const { return stages_.size(); }

 private:
  struct Stage {
    std::string name;
    StageFn fn;
    bool always_run{false};
    int max_attempts{1};
    std::vector<std::size_t> after;  ///< indices of dependency stages
  };

  void run_stage(std::size_t index, WorkflowContext& ctx,
                 WorkflowReport& report,
                 std::vector<std::uint8_t>& failed,
                 std::vector<std::uint8_t>& poisoned) const;

  std::string name_;
  std::vector<Stage> stages_;
  std::unordered_map<std::string, std::size_t> index_of_;  ///< latest wins
};

}  // namespace sagesim::core
