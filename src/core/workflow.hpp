// The AI-workflow builder: named stages over a shared context, each timed
// and reported — the way the course frames every end-to-end exercise
// ("provision -> stage data -> train -> evaluate -> tear down").
#pragma once

#include <any>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloudsim/provisioner.hpp"
#include "gpusim/device_manager.hpp"

namespace sagesim::core {

/// Shared state stages communicate through: the simulated GPUs, the cloud
/// control plane, and a typed blackboard.
class WorkflowContext {
 public:
  WorkflowContext(gpu::DeviceManager& devices, cloud::Provisioner& aws)
      : devices_(&devices), aws_(&aws) {}

  gpu::DeviceManager& devices() { return *devices_; }
  cloud::Provisioner& aws() { return *aws_; }

  /// Stores a value under @p key (overwrites).
  template <typename T>
  void put(const std::string& key, T value) {
    blackboard_[key] = std::move(value);
  }

  /// Typed read; throws std::out_of_range for missing keys and
  /// std::bad_any_cast on type mismatch.
  template <typename T>
  T& get(const std::string& key) {
    auto it = blackboard_.find(key);
    if (it == blackboard_.end())
      throw std::out_of_range("WorkflowContext: no key '" + key + "'");
    T* value = std::any_cast<T>(&it->second);
    if (value == nullptr) throw std::bad_any_cast();
    return *value;
  }

  bool has(const std::string& key) const {
    return blackboard_.contains(key);
  }

 private:
  gpu::DeviceManager* devices_;
  cloud::Provisioner* aws_;
  std::unordered_map<std::string, std::any> blackboard_;
};

/// Result of one stage.
struct StageReport {
  std::string name;
  bool ok{false};
  std::string error;          ///< exception message when !ok
  double sim_gpu_seconds{0.0};  ///< device time the stage consumed
};

struct WorkflowReport {
  std::vector<StageReport> stages;
  bool ok{true};
  double total_sim_gpu_seconds{0.0};
};

/// A linear pipeline of named stages.  Stages run in order; a throwing
/// stage marks the workflow failed and skips the rest (unless the stage
/// was added with `always_run` — teardown stages).
class Workflow {
 public:
  using StageFn = std::function<void(WorkflowContext&)>;

  explicit Workflow(std::string name) : name_(std::move(name)) {}

  /// Appends a stage.  @p always_run stages execute even after a failure
  /// (cleanup/teardown semantics).
  Workflow& stage(std::string stage_name, StageFn fn,
                  bool always_run = false);

  /// Runs all stages against @p ctx.
  WorkflowReport run(WorkflowContext& ctx) const;

  const std::string& name() const { return name_; }
  std::size_t stage_count() const { return stages_.size(); }

 private:
  struct Stage {
    std::string name;
    StageFn fn;
    bool always_run{false};
  };
  std::string name_;
  std::vector<Stage> stages_;
};

}  // namespace sagesim::core
