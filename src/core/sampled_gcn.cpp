#include "core/sampled_gcn.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "ddp/grad_sync.hpp"
#include "graph/prefetch.hpp"
#include "graph/sampler.hpp"
#include "mem/pool.hpp"
#include "nn/checkpoint.hpp"
#include "nn/gcn.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "prof/report.hpp"
#include "runtime/scheduler.hpp"
#include "tensor/ops.hpp"

namespace sagesim::core {

Expected<SampledGcnResult> try_train_sampled_gcn(
    const graph::OocGraphMeta& meta, const graph::OocFeatureSpec& features,
    dflow::Cluster& cluster, const SampledGcnConfig& config) {
  const int k = config.num_ranks;
  if (k < 1)
    throw std::invalid_argument("train_sampled_gcn: num_ranks must be >= 1");
  if (k > cluster.world_size())
    throw std::invalid_argument(
        "train_sampled_gcn: more ranks than cluster workers");
  if (config.epochs < 1)
    throw std::invalid_argument("train_sampled_gcn: epochs must be >= 1");
  if (config.batch_size == 0)
    throw std::invalid_argument("train_sampled_gcn: batch_size must be >= 1");
  if (config.grad_accum_steps == 0)
    throw std::invalid_argument(
        "train_sampled_gcn: grad_accum_steps must be >= 1");
  if (config.prefetch_depth == 0)
    throw std::invalid_argument(
        "train_sampled_gcn: prefetch_depth must be >= 1");
  const GcnFaultOptions& ft = config.fault;
  if (ft.enabled) {
    if (ft.checkpoint_dir.empty())
      throw std::invalid_argument(
          "train_sampled_gcn: fault tolerance needs a checkpoint_dir");
    if (ft.checkpoint_every < 1)
      throw std::invalid_argument(
          "train_sampled_gcn: checkpoint_every must be >= 1");
    if (ft.max_chunk_attempts < 1)
      throw std::invalid_argument(
          "train_sampled_gcn: max_chunk_attempts must be >= 1");
  }

  auto& devices = cluster.devices();
  const double sim_t0 = devices.now_s();
  // Start the high-water mark at current residency, so the reported peak
  // measures what *this run* added (shards, batches, activations).
  mem::reset_process_peak_resident_bytes();

  Expected<graph::ShardStore> opened =
      graph::ShardStore::open(meta, config.max_resident_shards);
  if (!opened) return opened.status();
  graph::ShardStore store = std::move(*opened);

  // --- Rank node ranges: streaming degree-balanced partition. --------------
  const auto ranges = graph::degree_balanced_ranges(store.degrees(), k);

  const std::size_t accum = config.grad_accum_steps;
  std::size_t micro_per_epoch = SIZE_MAX;
  for (const auto& [begin, end] : ranges)
    micro_per_epoch = std::min(
        micro_per_epoch, graph::batches_per_epoch(begin, end,
                                                  config.batch_size));
  std::size_t steps_per_epoch = micro_per_epoch / accum;
  if (config.max_steps_per_epoch != 0)
    steps_per_epoch = std::min(steps_per_epoch, config.max_steps_per_epoch);
  if (steps_per_epoch == 0)
    throw std::invalid_argument(
        "train_sampled_gcn: batch_size * grad_accum_steps exceeds the "
        "smallest rank's node range");
  const std::size_t bpe = steps_per_epoch * accum;  // micro-batches / epoch
  const std::size_t total_steps =
      static_cast<std::size_t>(config.epochs) * steps_per_epoch;

  // --- Replicas, optimizers, DDP synchronizer (broadcast-equivalent init).
  nn::Gcn::Config model_cfg;
  model_cfg.in_features = features.dim;
  model_cfg.hidden = config.hidden;
  model_cfg.num_classes = static_cast<std::size_t>(features.num_classes);
  model_cfg.dropout = config.dropout;
  model_cfg.seed = config.seed;

  // Replicas need *some* operator at construction; every forward installs
  // the current mini-batch's adjacency first.
  const graph::CsrGraph placeholder_graph = graph::CsrGraph::from_edges(1, {});
  const graph::NormalizedAdjacency placeholder =
      graph::normalized_adjacency(placeholder_graph);

  std::vector<std::unique_ptr<nn::Gcn>> replicas;
  std::vector<std::unique_ptr<nn::Sgd>> optimizers;
  for (int r = 0; r < k; ++r) {
    replicas.push_back(std::make_unique<nn::Gcn>(&placeholder, model_cfg));
    optimizers.push_back(std::make_unique<nn::Sgd>(config.learning_rate, 0.9f));
  }
  std::unique_ptr<ddp::GradientSynchronizer> sync;
  if (k > 1) {
    std::vector<std::vector<nn::Param*>> param_sets;
    param_sets.reserve(replicas.size());
    for (auto& r : replicas) param_sets.push_back(r->params());
    ddp::broadcast_params(devices, param_sets);
    sync = std::make_unique<ddp::GradientSynchronizer>(
        devices, param_sets,
        ddp::SyncOptions{.bucket_bytes = config.ddp_bucket_bytes,
                         .overlap = config.ddp_overlap});
  }

  // Rank r trains on cluster lane rank_of_part[r]; identity until a
  // preemption forces a remap onto survivors.
  std::vector<int> rank_of_part(static_cast<std::size_t>(k));
  for (int r = 0; r < k; ++r) rank_of_part[static_cast<std::size_t>(r)] = r;

  auto place_params = [&]() -> Status {
    for (std::size_t r = 0; r < replicas.size(); ++r) {
      auto& dev = devices.device(static_cast<std::size_t>(rank_of_part[r]));
      for (nn::Param* p : replicas[r]->params()) {
        Status s = p->value.to_device(dev);
        if (!s.ok()) return s;
        s = p->grad.to_device(dev);
        if (!s.ok()) return s;
      }
    }
    return {};
  };
  if (const Status s = place_params(); !s.ok()) return s;

  // --- Samplers and prefetch pipelines. ------------------------------------
  // Per-rank seed streams are disjoint (mix64 over the rank) and the store
  // is shared: one LRU cache, one resident bound, concurrent pins.
  std::vector<graph::NeighborSampler> samplers;
  samplers.reserve(static_cast<std::size_t>(k));
  for (int r = 0; r < k; ++r)
    samplers.emplace_back(
        store, features,
        graph::SamplerConfig{
            config.fanouts,
            graph::mix64(config.seed, static_cast<std::uint64_t>(r))});

  // Staging runs on its own small pool: lookahead tasks must keep making
  // progress while every cluster lane is occupied by a pinned training task
  // blocked on its pipeline head — sharing the cluster's scheduler would
  // deadlock exactly there.
  runtime::Scheduler stage_pool(
      static_cast<unsigned>(std::max(2, k)));

  std::vector<std::unique_ptr<graph::PrefetchPipeline>> pipelines(
      static_cast<std::size_t>(k));
  auto rebuild_pipelines = [&](std::size_t start_step) {
    for (std::size_t r = 0; r < pipelines.size(); ++r) {
      pipelines[r].reset();  // drain any in-flight lookahead first
      const auto [begin, end] = ranges[r];
      const std::uint64_t rank_seed =
          graph::mix64(config.seed, static_cast<std::uint64_t>(r));
      pipelines[r] = std::make_unique<graph::PrefetchPipeline>(
          samplers[r],
          [begin, end, rank_seed, bs = config.batch_size](
              std::uint64_t epoch, std::uint64_t index) {
            return graph::schedule_seeds(begin, end, bs, rank_seed, epoch,
                                         index);
          },
          static_cast<std::uint64_t>(config.epochs), bpe, start_step * accum,
          &devices.device(static_cast<std::size_t>(rank_of_part[r])),
          stage_pool,
          graph::PrefetchOptions{.depth = config.prefetch_depth,
                                 .enabled = config.prefetch});
    }
  };

  SampledGcnResult result;
  std::vector<std::size_t> rank_batches(static_cast<std::size_t>(k), 0);
  std::vector<graph::EdgeIdx> rank_edges(static_cast<std::size_t>(k), 0);
  std::vector<std::size_t> rank_h2d(static_cast<std::size_t>(k), 0);

  // --- One optimizer step: per-rank accumulate -> all-reduce -> update. ----
  auto run_chunk = [&](std::size_t s0, std::size_t s1) -> Status {
    if (sync) sync->reset_pending();
    for (std::size_t s = s0; s < s1; ++s) {
      std::vector<dflow::Future> grads;
      grads.reserve(static_cast<std::size_t>(k));
      for (int r = 0; r < k; ++r) {
        grads.push_back(cluster.submit(
            "sampled_gcn_step:" + std::to_string(r),
            [&, r](dflow::WorkerCtx& ctx) -> std::any {
              const auto ri = static_cast<std::size_t>(r);
              auto& model = *replicas[ri];
              model.zero_grad();
              double loss_sum = 0.0;
              for (std::size_t a = 0; a < accum; ++a) {
                Expected<graph::StagedBatch> next = pipelines[ri]->next();
                next.status().throw_if_error();
                graph::StagedBatch staged = std::move(*next);
                // Fence: compute (stream 0) waits for this batch's staged
                // copies on the transfer stream before touching them.
                if (config.prefetch && staged.on_device &&
                    ctx.device != nullptr)
                  ctx.device->wait_event(0, staged.ready);
                model.set_adjacency(&staged.batch.adj);
                tensor::Tensor logits = model.forward(
                    ctx.device, staged.batch.features, /*train=*/true);
                auto loss = nn::masked_softmax_cross_entropy(
                    ctx.device, logits, staged.batch.labels,
                    staged.batch.seed_rows);
                loss_sum += loss.loss;
                if (accum > 1)
                  // Every micro-batch masks the same number of seed rows, so
                  // the accumulated gradient is the uniform mean.
                  tensor::ops::scale(ctx.device, loss.dlogits,
                                     1.0f / static_cast<float>(accum));
                // Sync hooks fire only on the final micro-batch: earlier
                // backwards accumulate locally instead of triggering a
                // partial all-reduce.
                if (sync && a + 1 == accum) {
                  model.backward(ctx.device, loss.dlogits, [&](nn::Param* p) {
                    sync->notify_grad_ready(ri, p);
                  });
                } else {
                  model.backward(ctx.device, loss.dlogits);
                }
                model.set_adjacency(&placeholder);
                ++rank_batches[ri];
                rank_edges[ri] += staged.batch.sampled_edges;
                rank_h2d[ri] += staged.batch.h2d_bytes();
              }
              return loss_sum / static_cast<double>(accum);
            },
            {}, rank_of_part[static_cast<std::size_t>(r)]));
      }

      dflow::Future reduced = cluster.submit(
          "sampled_allreduce",
          [&](dflow::WorkerCtx&) -> std::any {
            if (sync) sync->sync();
            return {};
          },
          grads, /*rank=*/-1);

      std::vector<dflow::Future> updates;
      updates.reserve(static_cast<std::size_t>(k));
      for (int r = 0; r < k; ++r) {
        updates.push_back(cluster.submit(
            "sampled_optim:" + std::to_string(r),
            [&, r](dflow::WorkerCtx& ctx) -> std::any {
              const auto ri = static_cast<std::size_t>(r);
              auto params = replicas[ri]->params();
              optimizers[ri]->step(ctx.device, params);
              return {};
            },
            {reduced}, rank_of_part[static_cast<std::size_t>(r)]));
      }

      Status first{};
      for (const auto& f : updates) {
        const Status st = f.wait_status();
        if (!st.ok() && first.ok()) first = st;
      }
      if (!first.ok()) return first;

      double step_loss = 0.0;
      for (const auto& f : grads) {
        Expected<double> v = f.result<double>();
        if (!v) return v.status();
        step_loss += *v;
      }
      result.step_losses.push_back(step_loss / static_cast<double>(k));
    }
    return {};
  };

  auto finish = [&]() -> Expected<SampledGcnResult> {
    // Drain lookahead before reading any counter the staging tasks touch.
    for (auto& p : pipelines) p.reset();
    result.train_sim_seconds = devices.now_s() - sim_t0;
    for (int r = 0; r < k; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      result.batches += rank_batches[ri];
      result.sampled_edges += rank_edges[ri];
      result.h2d_bytes += rank_h2d[ri];
    }
    const graph::ShardStoreStats st = store.stats();
    result.shard_loads = st.loads;
    result.shard_evictions = st.evictions;
    result.peak_resident_bytes = mem::process_peak_resident_bytes();

    std::vector<int> used = rank_of_part;
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());
    double h2d_s = 0.0;
    double hidden_s = 0.0;
    for (const int rank : used) {
      const prof::TransferOverlap ov =
          prof::transfer_overlap(devices.timeline(), rank);
      h2d_s += ov.h2d_s;
      hidden_s += ov.hidden_s;
    }
    result.h2d_hidden_frac = h2d_s > 0.0 ? hidden_s / h2d_s : 0.0;

    // The trained model leaves the cluster (accounted D2H), then one fixed
    // eval batch — dropout off, no RNG advance — gives a deterministic
    // held-out loss.
    for (nn::Param* p : replicas[0]->params()) {
      const Status s = p->value.to_host();
      if (!s.ok()) return s;
    }
    const std::vector<graph::NodeId> eval_seeds = graph::schedule_seeds(
        ranges[0].first, ranges[0].second, config.batch_size,
        graph::mix64(config.seed, 0), static_cast<std::uint64_t>(config.epochs),
        0);
    Expected<graph::MiniBatch> eval_batch = samplers[0].sample(
        static_cast<std::uint64_t>(config.epochs), 0, eval_seeds);
    if (!eval_batch) return eval_batch.status();
    replicas[0]->set_adjacency(&eval_batch->adj);
    const tensor::Tensor logits = replicas[0]->forward(
        &devices.device(0), eval_batch->features, /*train=*/false);
    result.eval_loss = nn::masked_softmax_cross_entropy(
                           &devices.device(0), logits, eval_batch->labels,
                           eval_batch->seed_rows)
                           .loss;
    replicas[0]->set_adjacency(&placeholder);

    result.final_world = k;
    return result;
  };

  if (!ft.enabled) {
    rebuild_pipelines(0);
    const Status s = run_chunk(0, total_steps);
    if (!s.ok()) return s;
    return finish();
  }

  // --- Fault-tolerant path: step-chunked checkpoint/restart. ---------------
  // Synchronized steps keep parameters and velocity identical across
  // replicas, so the checkpoint stores replica 0's copy once; the dropout
  // RNG streams are per-replica and stored per rank — restoring them is
  // what makes a resumed run bit-identical to an uninterrupted one.  The
  // batch schedule itself needs no state: pipelines re-enter at flat batch
  // step * accum.
  auto save_ckpt = [&](std::uint64_t step) -> Status {
    nn::Checkpoint ckpt;
    ckpt.epoch = step;
    ckpt.scalars["k"] = static_cast<double>(k);
    const auto params0 = replicas[0]->params();
    for (std::size_t p = 0; p < params0.size(); ++p)
      ckpt.put("param" + std::to_string(p), params0[p]->value);
    const auto opt_state = optimizers[0]->state();
    for (std::size_t s = 0; s < opt_state.size(); ++s)
      ckpt.put("opt" + std::to_string(s), opt_state[s]);
    ckpt.scalars["opt_n"] = static_cast<double>(opt_state.size());
    ckpt.scalars["opt_t"] = static_cast<double>(optimizers[0]->step_count());
    for (std::size_t s = 0; s < result.step_losses.size(); ++s)
      ckpt.scalars["loss." + std::to_string(s)] = result.step_losses[s];
    for (std::size_t r = 0; r < replicas.size(); ++r)
      ckpt.blobs["rng" + std::to_string(r)] =
          nn::serialize_engine(replicas[r]->rng().engine());
    const Status s = nn::save_checkpoint(
        nn::checkpoint_path(ft.checkpoint_dir, ft.checkpoint_prefix, step),
        ckpt);
    if (s.ok()) ++result.checkpoints_written;
    return s;
  };

  auto restore_ckpt = [&](const nn::Checkpoint& ckpt) -> Status {
    for (auto& replica : replicas) {
      auto params = replica->params();
      for (std::size_t p = 0; p < params.size(); ++p) {
        const auto it = ckpt.tensors.find("param" + std::to_string(p));
        if (it == ckpt.tensors.end() ||
            !it->second.same_shape(params[p]->value))
          return Status::failed_precondition(
              "train_sampled_gcn: checkpoint parameter mismatch");
        params[p]->value = it->second;
      }
    }
    const auto n_it = ckpt.scalars.find("opt_n");
    const std::size_t opt_n =
        n_it == ckpt.scalars.end() ? 0
                                   : static_cast<std::size_t>(n_it->second);
    std::vector<tensor::Tensor> opt_state;
    opt_state.reserve(opt_n);
    for (std::size_t s = 0; s < opt_n; ++s) {
      const auto it = ckpt.tensors.find("opt" + std::to_string(s));
      if (it == ckpt.tensors.end())
        return Status::failed_precondition(
            "train_sampled_gcn: checkpoint optimizer state missing");
      opt_state.push_back(it->second);
    }
    const auto t_it = ckpt.scalars.find("opt_t");
    for (auto& opt : optimizers) {
      opt->set_state(opt_state);
      if (t_it != ckpt.scalars.end())
        opt->set_step_count(static_cast<std::uint64_t>(t_it->second));
    }
    for (std::size_t r = 0; r < replicas.size(); ++r) {
      const auto it = ckpt.blobs.find("rng" + std::to_string(r));
      if (it == ckpt.blobs.end())
        return Status::failed_precondition(
            "train_sampled_gcn: checkpoint RNG stream missing");
      const Status s =
          nn::deserialize_engine(it->second, replicas[r]->rng().engine());
      if (!s.ok()) return s;
    }
    result.step_losses.clear();
    result.step_losses.reserve(static_cast<std::size_t>(ckpt.epoch));
    for (std::uint64_t s = 0; s < ckpt.epoch; ++s) {
      const auto it = ckpt.scalars.find("loss." + std::to_string(s));
      if (it == ckpt.scalars.end())
        return Status::failed_precondition(
            "train_sampled_gcn: checkpoint loss history missing");
      result.step_losses.push_back(it->second);
    }
    return {};
  };

  // Resume-on-entry: a same-k checkpoint means this call is the restarted
  // half of a preempted run.
  std::size_t step = 0;
  if (Expected<nn::Checkpoint> latest = nn::load_latest_checkpoint(
          ft.checkpoint_dir, ft.checkpoint_prefix)) {
    const auto kit = latest->scalars.find("k");
    if (kit != latest->scalars.end() && static_cast<int>(kit->second) == k) {
      const Status rs = restore_ckpt(*latest);
      if (!rs.ok()) return rs;
      if (const Status ps = place_params(); !ps.ok()) return ps;
      step = static_cast<std::size_t>(latest->epoch);
      ++result.checkpoints_restored;
    }
  }
  if (step == 0) {
    const Status s = save_ckpt(0);
    if (!s.ok()) return s;
  }

  while (step < total_steps) {
    Status chunk_status{};
    bool chunk_ok = false;
    for (int attempt = 1; attempt <= ft.max_chunk_attempts; ++attempt) {
      const std::size_t chunk_end = std::min(
          step + static_cast<std::size_t>(ft.checkpoint_every), total_steps);
      // A failed attempt consumed pipeline batches; re-enter the schedule
      // at the chunk's first batch.
      rebuild_pipelines(step);
      chunk_status = run_chunk(step, chunk_end);
      if (chunk_status.ok()) {
        step = chunk_end;
        chunk_ok = true;
        break;
      }
      if (!chunk_status.retryable()) return chunk_status;
      ++result.chunk_restarts;

      // Ranks reclaimed for good: remap every training range onto the
      // survivors (ranges are storage-free, so a remap moves parameters,
      // not graph data).  Fewer survivors than ranks is fatal — sampled
      // ranges are never re-partitioned.
      bool lost = false;
      for (const int rank : rank_of_part)
        if (!cluster.rank_available(rank)) lost = true;
      if (lost) {
        const std::vector<int> survivors = cluster.active_ranks();
        if (static_cast<int>(survivors.size()) < k)
          return Status::unavailable(
              "train_sampled_gcn: only " +
              std::to_string(survivors.size()) + " of " + std::to_string(k) +
              " ranks available: " + chunk_status.message());
        rank_of_part.assign(survivors.begin(), survivors.begin() + k);
      }

      Expected<nn::Checkpoint> latest = nn::load_latest_checkpoint(
          ft.checkpoint_dir, ft.checkpoint_prefix);
      if (!latest) return latest.status();
      const Status rs = restore_ckpt(*latest);
      if (!rs.ok()) return rs;
      if (const Status ps = place_params(); !ps.ok()) return ps;
      step = static_cast<std::size_t>(latest->epoch);
      ++result.checkpoints_restored;
    }
    if (!chunk_ok)
      return Status::unavailable(
          "train_sampled_gcn: chunk at step " + std::to_string(step) +
          " failed after " + std::to_string(ft.max_chunk_attempts) +
          " attempts: " + chunk_status.message());
    const Status s = save_ckpt(static_cast<std::uint64_t>(step));
    if (!s.ok()) return s;
  }

  return finish();
}

}  // namespace sagesim::core
