// Adapters that package the repo's workloads as schedulable jobs for the
// multi-tenant control plane (src/sched): distributed GCN training, the
// Week-9 DQN lab, and a RAG query session each become a JobSpec whose
// payload runs the real entry point on the leased cluster the manager
// grants — the same code paths the labs run, now admitted, fair-shared,
// billed, and restarted by sched::ClusterManager.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/distributed_gcn.hpp"
#include "graph/generators.hpp"
#include "rag/corpus.hpp"
#include "rag/pipeline.hpp"
#include "rl/dqn.hpp"
#include "sched/job.hpp"

namespace sagesim::core {

/// Distributed GCN training as a gang job: ranks == num_partitions, and
/// when config.fault.enabled the payload resumes bit-identically from
/// config.fault.checkpoint_dir across manager restarts.  The payload
/// returns the final epoch loss.  @p dataset is shared because restarts
/// re-run the payload.
sched::JobSpec make_gcn_job(std::string tenant,
                            std::shared_ptr<const graph::Dataset> dataset,
                            DistributedGcnConfig config,
                            double service_h = 1.0);

/// The DQN lab on a single leased GPU: trains @p episodes episodes on an
/// n x n GridWorld and returns the mean reward of the final quarter.
sched::JobSpec make_dqn_job(std::string tenant, rl::DqnConfig config,
                            int episodes, std::size_t grid_n = 4,
                            double service_h = 1.0);

/// An interactive RAG session: builds a synthetic-corpus pipeline on the
/// leased GPU, answers @p queries in one batch, and returns the mean
/// simulated latency (seconds) per answer.
sched::JobSpec make_rag_job(std::string tenant,
                            rag::SyntheticCorpusParams corpus_params,
                            std::vector<std::string> queries,
                            double service_h = 0.25);

}  // namespace sagesim::core
