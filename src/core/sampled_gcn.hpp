// Out-of-core sampled mini-batch GCN training — Algorithm 1 rebuilt for
// graphs whose edge list never fits in memory:
//
//   1. Shard-by-shard RMAT generation wrote the graph to disk (graph/ooc);
//      only the 4-byte-per-node degree index stays resident.
//   2. Each rank owns a contiguous, degree-balanced node range
//      (degree_balanced_ranges — the streaming fallback for METIS).
//   3. Per optimizer step, each rank trains on `grad_accum_steps` sampled
//      mini-batches (GraphSAGE fixed-fanout subgraphs), accumulating local
//      gradients, then all ranks synchronize through the same bucketed
//      DDP all-reduce the full-batch trainer uses.
//   4. A PrefetchPipeline per rank samples batch i+1 and stages its H2D
//      copies on a dedicated transfer stream while batch i trains — the
//      double-buffering that hides PCIe time under kernel time.
//
// Everything random is counter-based (graph::mix64), so the loss sequence
// is a pure function of the config: bit-identical across worker counts,
// prefetch on/off, and checkpoint/restart — the properties the pipeline
// tests pin.
#pragma once

#include <cstdint>
#include <vector>

#include "core/distributed_gcn.hpp"  // GcnFaultOptions
#include "dflow/cluster.hpp"
#include "graph/ooc.hpp"

namespace sagesim::core {

struct SampledGcnConfig {
  int num_ranks{2};                ///< data-parallel world (<= cluster size)
  int epochs{2};
  std::size_t batch_size{256};     ///< seed nodes per sampled mini-batch
  std::vector<std::uint32_t> fanouts{10, 5};
  /// Micro-batches accumulated per optimizer step (>= 1).  The sampled
  /// analogue of ddp::TrainerOptions::grad_accum_steps: multi-rank step
  /// semantics stay synchronized while per-batch memory stays bounded.
  std::size_t grad_accum_steps{1};
  /// Caps optimizer steps per epoch; 0 trains the full epoch (every rank's
  /// node range, minus the ragged tail, exactly once).
  std::size_t max_steps_per_epoch{0};
  std::size_t hidden{16};
  float dropout{0.3f};
  float learning_rate{0.05f};
  std::uint64_t seed{42};
  bool prefetch{true};             ///< false == synchronous staging control
  std::size_t prefetch_depth{2};   ///< batches in flight per rank
  std::size_t max_resident_shards{8};  ///< ShardStore LRU bound
  std::size_t ddp_bucket_bytes{0};
  bool ddp_overlap{true};
  /// Step-granular checkpoint/restart (checkpoint_every counts optimizer
  /// steps here, not epochs).  allow_shrink is ignored: sampled ranges are
  /// re-mapped onto surviving ranks, never re-partitioned.
  GcnFaultOptions fault;
};

struct SampledGcnResult {
  std::vector<double> step_losses;   ///< mean across ranks, per step
  double train_sim_seconds{0.0};
  std::size_t batches{0};            ///< micro-batches trained, all ranks
  graph::EdgeIdx sampled_edges{0};   ///< subgraph edges across all batches
  std::size_t h2d_bytes{0};          ///< mini-batch payload staged H2D
  /// Fraction of mini-batch H2D time hidden under concurrent kernels
  /// (prof::transfer_overlap over the ranks' devices).
  double h2d_hidden_frac{0.0};
  /// mem::process_peak_resident_bytes() high-water mark over the run — the
  /// quantity the memory-ceiling test pins against
  /// graph::full_materialization_bytes.
  std::uint64_t peak_resident_bytes{0};
  std::uint64_t shard_loads{0};
  std::uint64_t shard_evictions{0};
  /// Deterministic held-out loss: one fixed eval batch, no dropout.
  double eval_loss{0.0};
  // --- fault-tolerance accounting (zero on fault-free runs) ---------------
  std::size_t chunk_restarts{0};
  std::size_t checkpoints_written{0};
  std::size_t checkpoints_restored{0};
  int final_world{0};
};

/// Trains a 2-layer GCN on the out-of-core graph described by @p meta with
/// @p config.num_ranks workers pinned to @p cluster's devices.  Features
/// and labels are the deterministic hashed set described by @p features.
/// Operational failures (missing shards, exhausted chunk attempts) come
/// back as a Status; argument misuse throws.
Expected<SampledGcnResult> try_train_sampled_gcn(
    const graph::OocGraphMeta& meta, const graph::OocFeatureSpec& features,
    dflow::Cluster& cluster, const SampledGcnConfig& config);

}  // namespace sagesim::core
