// Library identity.
#pragma once

namespace sagesim {

/// Semantic version of the sagesim library.
const char* version();

/// One-line description (paper being reproduced).
const char* description();

}  // namespace sagesim
