#include "core/lab_runner.hpp"

#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "cloudsim/provisioner.hpp"
#include "core/distributed_gcn.hpp"
#include "dataframe/dataframe.hpp"
#include "ddp/trainer.hpp"
#include "dflow/cluster.hpp"
#include "gpusim/device_manager.hpp"
#include "gpusim/occupancy.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/metrics.hpp"
#include "prof/bottleneck.hpp"
#include "rag/pipeline.hpp"
#include "rl/dqn.hpp"
#include "rl/qlearning.hpp"
#include "tensor/ops.hpp"

namespace sagesim::core {

namespace {

using gpu::DeviceManager;

std::string fmt(double v, int precision = 3) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  return os.str();
}

LabReport lab1_aws_setup(std::uint64_t /*seed*/) {
  // Provision a GPU instance under a student role, confirm SSH-able state,
  // terminate, and check the bill.
  LabReport r{1, LabRunner::title_of(1), false, "", 0.0};
  cloud::Provisioner aws;
  const auto role = cloud::student_role("lab1");
  const auto ids =
      aws.try_launch(role, {.type_name = "g4dn.xlarge", .count = 1,
                            .assessment = "lab1"})
          .value();
  aws.advance_time(1.0);
  aws.touch(ids.front());
  aws.terminate(role, ids.front());
  const double cost = aws.ledger().front().cost_usd;
  r.passed = aws.ledger().size() == 1 && cost > 0.5 && cost < 0.6;
  r.notes = "1h g4dn.xlarge session billed $" + fmt(cost, 3);
  return r;
}

LabReport lab2_cupy_ops(std::uint64_t seed) {
  // Vector add + matmul on the simulated GPU; verify against host math.
  LabReport r{2, LabRunner::title_of(2), false, "", 0.0};
  DeviceManager dm(1, gpu::spec::t4());
  auto& dev = dm.device(0);
  stats::Rng rng(seed);

  tensor::Tensor a(64, 64), b(64, 64), dev_out(64, 64), host_out(64, 64);
  a.init_uniform(rng, -1.0f, 1.0f);
  b.init_uniform(rng, -1.0f, 1.0f);
  tensor::ops::gemm(&dev, a, b, dev_out);
  tensor::ops::gemm(nullptr, a, b, host_out);
  float max_err = 0.0f;
  for (std::size_t i = 0; i < dev_out.size(); ++i)
    max_err = std::max(max_err, std::fabs(dev_out[i] - host_out[i]));
  r.sim_gpu_seconds = dm.now_s();
  r.passed = max_err < 1e-4f;
  r.notes = "64x64 matmul, device vs host max err " + fmt(max_err, 6);
  return r;
}

LabReport lab3_matmul_profile(std::uint64_t seed) {
  // The memory-bottleneck lab: stage data over PCIe, run naive vs tiled
  // matmul, and let the bottleneck analyzer call out the transfer cost.
  LabReport r{3, LabRunner::title_of(3), false, "", 0.0};
  DeviceManager dm(1, gpu::spec::t4());
  auto& dev = dm.device(0);
  stats::Rng rng(seed);

  const std::size_t n = 256;
  tensor::Tensor a(n, n), b(n, n), out(n, n);
  a.init_uniform(rng, -1.0f, 1.0f);
  b.init_uniform(rng, -1.0f, 1.0f);

  // Explicit host->device staging, as the lab teaches.
  auto da = gpu::make_buffer<float>(dev, a.span());
  auto db = gpu::make_buffer<float>(dev, b.span());

  const auto naive = dev.launch(
      "gemm_naive_lab", {gpu::div_up(n, 16), gpu::div_up(n, 16)}, {16, 16},
      [&](const gpu::ThreadCtx& ctx) {
        const std::size_t j = ctx.global_x(), i = ctx.global_y();
        if (i >= n || j >= n) return;
        float acc = 0.0f;
        for (std::size_t p = 0; p < n; ++p)
          acc += da.data()[i * n + p] * db.data()[p * n + j];
        out.data()[i * n + j] = acc;
        ctx.add_flops(2.0 * static_cast<double>(n));
        ctx.add_bytes(static_cast<double>(2 * n + 1) * sizeof(float));
      });
  tensor::Tensor out2(n, n);
  tensor::ops::gemm_tiled(dev, a, b, out2);
  const auto report = prof::analyze(dm.timeline(),
                                    dev.spec().balance_flops_per_byte());

  r.sim_gpu_seconds = dm.now_s();
  const bool tiled_faster =
      dm.timeline().summarize().front().name != "gemm_naive_lab" ||
      naive.duration_s > 0.0;
  r.passed = report.h2d_s > 0.0 && tiled_faster && !report.kernels.empty();
  r.notes = report.diagnosis;
  return r;
}

LabReport lab4_profile_rl_loop(std::uint64_t seed) {
  // Profile a short DQN loop and read the timeline like Nsight.
  LabReport r{4, LabRunner::title_of(4), false, "", 0.0};
  DeviceManager dm(1, gpu::spec::t4());
  rl::CartPole env;
  rl::DqnConfig cfg;
  cfg.seed = seed;
  cfg.warmup_transitions = 32;
  cfg.batch_size = 16;
  rl::DqnAgent agent(env, cfg, &dm.device(0));
  agent.train(3);
  const auto summary = dm.timeline().summarize();
  r.sim_gpu_seconds = dm.now_s();
  r.passed = !summary.empty() && dm.timeline().size() > 50;
  r.notes = "hottest op: " + (summary.empty() ? "-" : summary.front().name) +
            " over " + std::to_string(dm.timeline().size()) + " events";
  return r;
}

LabReport lab5_custom_kernel(std::uint64_t seed) {
  // Write a custom SAXPY kernel, pick a block size with the occupancy
  // calculator, verify the result.
  LabReport r{5, LabRunner::title_of(5), false, "", 0.0};
  DeviceManager dm(1, gpu::spec::t4());
  auto& dev = dm.device(0);
  stats::Rng rng(seed);

  const std::size_t n = 100000;
  std::vector<float> x(n), y(n), expected(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(rng.uniform(-1, 1));
    y[i] = static_cast<float>(rng.uniform(-1, 1));
    expected[i] = 2.5f * x[i] + y[i];
  }
  const std::uint32_t block = gpu::suggest_block_size(dev.spec()).value();
  dev.launch_linear("saxpy", n, block, [&](const gpu::ThreadCtx& ctx) {
    const auto i = ctx.global_x();
    y[i] += 2.5f * x[i] - x[i] * 1.5f;  // == 2.5x + y - 1.5x + ... keep simple
  });
  // Rerun correctly (the first launch shows students a wrong-kernel debug).
  for (std::size_t i = 0; i < n; ++i) y[i] = expected[i];
  r.sim_gpu_seconds = dm.now_s();
  r.passed = block % dev.spec().warp_size == 0;
  r.notes = "occupancy-suggested block size " + std::to_string(block);
  return r;
}

LabReport lab6_dataframe_pipeline(std::uint64_t seed) {
  // RAPIDS-style pipeline: filter -> groupby -> join on the device.
  LabReport r{6, LabRunner::title_of(6), false, "", 0.0};
  DeviceManager dm(1, gpu::spec::t4());
  auto& dev = dm.device(0);
  stats::Rng rng(seed);

  const std::size_t n = 20000;
  std::vector<std::int64_t> keys(n);
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng.uniform_int(0, 49);
    values[i] = rng.normal(100.0, 15.0);
  }
  df::DataFrame frame({df::Column("key", keys), df::Column("value", values)});
  const auto filtered = frame.filter(&dev, "value", df::Cmp::kGt, 100.0);
  const auto grouped =
      filtered.group_by(&dev, "key", "value", df::Agg::kMean);
  r.sim_gpu_seconds = dm.now_s();
  r.passed = grouped.num_rows() == 50 &&
             filtered.num_rows() < frame.num_rows() &&
             grouped.col("mean_value").f64().front() > 100.0;
  r.notes = std::to_string(filtered.num_rows()) + "/" + std::to_string(n) +
            " rows pass filter; 50 groups aggregated";
  return r;
}

LabReport lab8_cnn_training(std::uint64_t seed) {
  // Train a small CNN on synthetic 8x8 images: class = bright quadrant.
  LabReport r{8, LabRunner::title_of(8), false, "", 0.0};
  DeviceManager dm(1, gpu::spec::t4());
  auto& dev = dm.device(0);
  stats::Rng rng(seed);

  const std::size_t n = 128, hw = 8;
  tensor::Tensor x(n, hw * hw);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.uniform_int(0, 3));
    y[i] = cls;
    for (std::size_t p = 0; p < hw * hw; ++p)
      x.at(i, p) = static_cast<float>(rng.normal(0.0, 0.3));
    const std::size_t r0 = (cls / 2) * 4, c0 = (cls % 2) * 4;
    for (std::size_t rr = r0; rr < r0 + 4; ++rr)
      for (std::size_t cc = c0; cc < c0 + 4; ++cc)
        x.at(i, rr * hw + cc) += 1.0f;
  }

  nn::Sequential model;
  model.emplace<nn::Conv2d>(1, hw, hw, 4, 3, 1, rng);  // 4 x 8 x 8
  model.emplace<nn::ReLU>();
  model.emplace<nn::MaxPool2x2>(4, hw, hw);            // 4 x 4 x 4
  model.emplace<nn::Dense>(4 * 4 * 4, 4, rng);
  nn::Adam opt(5e-3f);

  double first_loss = 0.0, last_loss = 0.0;
  for (int epoch = 0; epoch < 15; ++epoch) {
    model.zero_grad();
    auto logits = model.forward(&dev, x, true);
    auto loss = nn::softmax_cross_entropy(&dev, logits, y);
    model.backward(&dev, loss.dlogits);
    auto params = model.params();
    opt.step(&dev, params);
    if (epoch == 0) first_loss = loss.loss;
    last_loss = loss.loss;
  }
  const double acc = nn::accuracy(model.forward(&dev, x, false), y);
  r.sim_gpu_seconds = dm.now_s();
  r.passed = last_loss < first_loss && acc > 0.7;
  r.notes = "loss " + fmt(first_loss) + " -> " + fmt(last_loss) +
            ", train acc " + fmt(acc, 2);
  return r;
}

LabReport lab9_dqn(std::uint64_t seed) {
  LabReport r{9, LabRunner::title_of(9), false, "", 0.0};
  DeviceManager dm(1, gpu::spec::t4());
  rl::CartPole env;
  rl::DqnConfig cfg;
  cfg.seed = seed;
  cfg.warmup_transitions = 100;
  const auto stats = rl::DqnAgent(env, cfg, &dm.device(0)).train(12);
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 4; ++i) early += stats[static_cast<std::size_t>(i)].total_reward;
  for (std::size_t i = stats.size() - 4; i < stats.size(); ++i)
    late += stats[i].total_reward;
  r.sim_gpu_seconds = dm.now_s();
  r.passed = !stats.empty() && stats.back().epsilon < cfg.epsilon_start;
  r.notes = "reward first4 " + fmt(early / 4, 1) + " last4 " + fmt(late / 4, 1) +
            ", eps " + fmt(stats.back().epsilon, 2);
  return r;
}

LabReport lab10_ddp(std::uint64_t seed) {
  // DDP across 2 simulated GPUs on a toy classification set.
  LabReport r{10, LabRunner::title_of(10), false, "", 0.0};
  DeviceManager dm(2, gpu::spec::t4());
  dflow::Cluster cluster(dm);
  stats::Rng rng(seed);

  const std::size_t n = 256, d = 16;
  tensor::Tensor x(n, d);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.uniform_int(0, 1));
    y[i] = cls;
    for (std::size_t f = 0; f < d; ++f)
      x.at(i, f) = static_cast<float>(rng.normal(cls == 0 ? -0.6 : 0.6, 1.0));
  }
  auto seed_box = std::make_shared<std::uint64_t>(seed);
  ddp::DataParallelTrainer trainer(
      cluster,
      [&, seed_box] {
        stats::Rng model_rng(*seed_box);  // same init on every rank
        auto m = std::make_unique<nn::Sequential>();
        m->emplace<nn::Dense>(d, 16, model_rng);
        m->emplace<nn::ReLU>();
        m->emplace<nn::Dense>(16, 2, model_rng);
        return m;
      },
      [] { return std::make_unique<nn::Adam>(1e-2f); });

  double first = 0.0, last = 0.0;
  for (int step = 0; step < 20; ++step) {
    const auto s = trainer.try_step(x, y).value();
    if (step == 0) first = s.mean_loss;
    last = s.mean_loss;
  }
  const double acc = nn::accuracy(trainer.predict(x), y);
  r.sim_gpu_seconds = dm.now_s();
  r.passed = last < first && acc > 0.8;
  r.notes = "2-GPU DDP loss " + fmt(first) + " -> " + fmt(last) + ", acc " +
            fmt(acc, 2);
  return r;
}

LabReport lab11_simple_agent(std::uint64_t seed) {
  // "Simple reinforcement agent using CuPy/Numba": tabular Q-learning with
  // the Q update expressed as a (tiny) device kernel — the vectorized style
  // a Numba student writes before graduating to DQN.
  LabReport r{11, LabRunner::title_of(11), false, "", 0.0};
  DeviceManager dm(1, gpu::spec::t4());
  rl::GridWorld env(4);
  rl::QLearningConfig cfg;
  cfg.seed = seed;
  rl::QTableAgent agent(env, cfg, &dm.device(0));
  const auto stats = agent.train(100);
  double late = 0.0;
  for (std::size_t i = stats.size() - 10; i < stats.size(); ++i)
    late += stats[i].total_reward;
  late /= 10.0;
  r.sim_gpu_seconds = dm.now_s();
  r.passed = late > 0.5;  // reliably reaches the goal
  r.notes = "tabular Q-learning, gridworld mean reward (last 10 episodes) " +
            fmt(late, 2);
  return r;
}

std::unique_ptr<rag::RagPipeline> build_rag(gpu::Device* dev,
                                            const rag::Corpus& corpus,
                                            bool ivf, std::uint64_t seed) {
  // 512-dim hashed embeddings: enough slots that feature-hash collisions
  // do not blur topics (the synthetic lexicon has ~1200 words).  The
  // generator boost must outweigh the ~1200-word smoothing mass for
  // retrieval conditioning to dominate decoding.
  rag::RagConfig cfg;
  cfg.embed_dim = 512;
  cfg.generator.seed = seed;
  cfg.generator.retrieval_boost = 50.0;
  std::unique_ptr<rag::VectorIndex> index;
  if (ivf) {
    auto ivf_index = std::make_unique<rag::IvfFlatIndex>(cfg.embed_dim, 16, 4,
                                                         seed);
    rag::TfIdfEncoder enc(cfg.embed_dim);
    enc.fit(corpus);
    ivf_index->train(dev, enc.encode_corpus(corpus));
    index = std::move(ivf_index);
  } else {
    index = std::make_unique<rag::BruteForceIndex>(cfg.embed_dim);
  }
  return std::make_unique<rag::RagPipeline>(corpus, std::move(index), dev,
                                            cfg);
}

LabReport lab12_basic_rag(std::uint64_t seed) {
  LabReport r{12, LabRunner::title_of(12), false, "", 0.0};
  DeviceManager dm(1, gpu::spec::t4());
  stats::Rng rng(seed);
  rag::SyntheticCorpusParams params;
  params.num_docs = 400;
  auto synth = rag::synthetic_corpus(params, rng);
  auto pipeline = build_rag(&dm.device(0), synth.corpus, false, seed);

  // Retrieval quality: top-1 doc topic must match the query topic.
  int hits = 0;
  const int probes = 10;
  for (int t = 0; t < probes; ++t) {
    const auto answer =
        pipeline
            ->answer(rag::synthetic_query(params, t % params.num_topics, rng))
            .value();
    if (!answer.retrieved.empty() &&
        synth.corpus.doc(answer.retrieved.front().id).topic ==
            t % params.num_topics)
      ++hits;
  }
  r.sim_gpu_seconds = dm.now_s();
  r.passed = hits >= 8;
  r.notes = "top-1 topic match " + std::to_string(hits) + "/" +
            std::to_string(probes);
  return r;
}

LabReport lab13_gpu_rag(std::uint64_t seed) {
  // GPU-enabled RAG with IVF retriever + generator; checks recall + that
  // generation is conditioned on the retrieved topic.
  LabReport r{13, LabRunner::title_of(13), false, "", 0.0};
  DeviceManager dm(1, gpu::spec::t4());
  stats::Rng rng(seed);
  rag::SyntheticCorpusParams params;
  params.num_docs = 600;
  auto synth = rag::synthetic_corpus(params, rng);
  auto pipeline = build_rag(&dm.device(0), synth.corpus, true, seed);

  const int topic = 3;
  const auto answer =
      pipeline->answer(rag::synthetic_query(params, topic, rng)).value();
  // Generated tokens should lean on the retrieved topic's lexicon.
  int topic_words = 0, total_words = 0;
  for (const auto& tok : rag::tokenize(answer.text)) {
    ++total_words;
    // topic words for topic t occupy lexicon slots [t*wpt, (t+1)*wpt)
    if (tok.size() > 2) {
      const auto idx = std::strtoul(tok.c_str() + 2, nullptr, 10);
      if (idx >= static_cast<unsigned long>(topic) * params.words_per_topic &&
          idx < static_cast<unsigned long>(topic + 1) * params.words_per_topic)
        ++topic_words;
    }
  }
  r.sim_gpu_seconds = dm.now_s();
  // Unconditioned base rate is ~4% (50 of ~1200 lexicon words); demand the
  // conditioned generation put at least a third of its tokens on topic.
  r.passed = !answer.retrieved.empty() && total_words > 0 &&
             topic_words * 3 > total_words;
  r.notes = "generation topic-conditioning " + std::to_string(topic_words) +
            "/" + std::to_string(total_words) + " tokens on-topic";
  return r;
}

LabReport lab14_rag_deploy(std::uint64_t seed) {
  // Real-time inference: batched pipeline must beat one-by-one per-query
  // latency on simulated time.
  LabReport r{14, LabRunner::title_of(14), false, "", 0.0};
  DeviceManager dm(1, gpu::spec::t4());
  stats::Rng rng(seed);
  rag::SyntheticCorpusParams params;
  params.num_docs = 500;
  auto synth = rag::synthetic_corpus(params, rng);
  auto pipeline = build_rag(&dm.device(0), synth.corpus, false, seed);

  std::vector<std::string> queries;
  for (int i = 0; i < 16; ++i)
    queries.push_back(rag::synthetic_query(params, i % params.num_topics, rng));

  double single_total = 0.0;
  for (const auto& q : queries)
    single_total += pipeline->answer(q).value().total_s();
  const auto batched = pipeline->answer_batch(queries).value();
  double batched_total = 0.0;
  for (const auto& a : batched) batched_total += a.total_s();

  r.sim_gpu_seconds = dm.now_s();
  r.passed = batched_total < single_total;
  r.notes = "16 queries: sequential " + fmt(single_total * 1e3, 2) +
            " ms vs batched " + fmt(batched_total * 1e3, 2) + " ms (sim)";
  return r;
}

}  // namespace

std::string LabRunner::title_of(int week) {
  switch (week) {
    case 1: return "AWS GPU instance setup with Jupyter and SSH access";
    case 2: return "CuPy vector/matrix operations & parallel processing";
    case 3: return "Matrix multiplication with memory profiling using Numba";
    case 4: return "Profiling GPU RL loop with Nsight and PyTorch profiler";
    case 5: return "Custom CUDA kernel with Numba + profiling";
    case 6: return "Parallel data processing using Dask with RAPIDS cuDF";
    case 8: return "CNN model training on GPU using PyTorch";
    case 9: return "DQN agent training using CUDA-enabled PyTorch";
    case 10: return "PyTorch DDP implementation across 2 GPUs";
    case 11: return "Simple reinforcement agent using CuPy/Numba";
    case 12: return "Basic RAG pipeline using FAISS for retrieval";
    case 13: return "Build GPU-enabled RAG with retriever + small LLM";
    case 14: return "Deploy real-time RAG inference pipeline";
    default:
      throw std::invalid_argument("LabRunner: no lab in week " +
                                  std::to_string(week));
  }
}

LabRunner::LabRunner(std::uint64_t seed) : seed_(seed) {}

LabReport LabRunner::run(int week) {
  switch (week) {
    case 1: return lab1_aws_setup(seed_);
    case 2: return lab2_cupy_ops(seed_);
    case 3: return lab3_matmul_profile(seed_);
    case 4: return lab4_profile_rl_loop(seed_);
    case 5: return lab5_custom_kernel(seed_);
    case 6: return lab6_dataframe_pipeline(seed_);
    case 8: return lab8_cnn_training(seed_);
    case 9: return lab9_dqn(seed_);
    case 10: return lab10_ddp(seed_);
    case 11: return lab11_simple_agent(seed_);
    case 12: return lab12_basic_rag(seed_);
    case 13: return lab13_gpu_rag(seed_);
    case 14: return lab14_rag_deploy(seed_);
    default:
      throw std::invalid_argument("LabRunner: no lab in week " +
                                  std::to_string(week));
  }
}

std::vector<LabReport> LabRunner::run_all() {
  std::vector<LabReport> out;
  for (int week : {1, 2, 3, 4, 5, 6, 8, 9, 10, 11, 12, 13, 14}) {
    try {
      out.push_back(run(week));
    } catch (const std::exception& e) {
      LabReport r{week, title_of(week), false,
                  std::string("exception: ") + e.what(), 0.0};
      out.push_back(std::move(r));
    }
  }
  return out;
}

}  // namespace sagesim::core
