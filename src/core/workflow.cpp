#include "core/workflow.hpp"

namespace sagesim::core {

Workflow& Workflow::stage(std::string stage_name, StageFn fn,
                          bool always_run) {
  if (!fn) throw std::invalid_argument("Workflow::stage: null stage function");
  stages_.push_back({std::move(stage_name), std::move(fn), always_run});
  return *this;
}

WorkflowReport Workflow::run(WorkflowContext& ctx) const {
  WorkflowReport report;
  bool failed = false;
  for (const auto& s : stages_) {
    StageReport sr;
    sr.name = s.name;
    if (failed && !s.always_run) {
      sr.error = "skipped (earlier stage failed)";
      report.stages.push_back(std::move(sr));
      continue;
    }
    const double t0 = ctx.devices().now_s();
    try {
      s.fn(ctx);
      sr.ok = true;
    } catch (const std::exception& e) {
      sr.error = e.what();
      failed = true;
    }
    sr.sim_gpu_seconds = ctx.devices().now_s() - t0;
    report.total_sim_gpu_seconds += sr.sim_gpu_seconds;
    report.stages.push_back(std::move(sr));
  }
  report.ok = !failed;
  return report;
}

}  // namespace sagesim::core
