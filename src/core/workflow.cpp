#include "core/workflow.hpp"

#include "runtime/scheduler.hpp"

namespace sagesim::core {

Workflow& Workflow::stage(std::string stage_name, StageFn fn,
                          bool always_run) {
  StageOptions opts;
  opts.always_run = always_run;
  if (!stages_.empty()) opts.after.push_back(stages_.back().name);
  return stage(std::move(stage_name), std::move(fn), std::move(opts));
}

Workflow& Workflow::stage(std::string stage_name, StageFn fn,
                          StageOptions opts) {
  if (!fn) throw std::invalid_argument("Workflow::stage: null stage function");
  if (opts.max_attempts < 1)
    throw std::invalid_argument("Workflow::stage: max_attempts must be >= 1");
  Stage s;
  s.fn = std::move(fn);
  s.always_run = opts.always_run;
  s.max_attempts = opts.max_attempts;
  s.after.reserve(opts.after.size());
  for (const auto& dep : opts.after) {
    auto it = index_of_.find(dep);
    if (it == index_of_.end())
      throw std::invalid_argument("Workflow::stage: '" + stage_name +
                                  "' depends on unknown stage '" + dep + "'");
    s.after.push_back(it->second);
  }
  s.name = std::move(stage_name);
  index_of_[s.name] = stages_.size();
  stages_.push_back(std::move(s));
  return *this;
}

void Workflow::run_stage(std::size_t index, WorkflowContext& ctx,
                         WorkflowReport& report,
                         std::vector<std::uint8_t>& failed,
                         std::vector<std::uint8_t>& poisoned) const {
  const Stage& s = stages_[index];
  StageReport& sr = report.stages[index];
  sr.name = s.name;

  // A dependency that failed, was skipped, or carries upstream failure
  // poisons this stage.  always_run stages execute anyway but stay
  // poisoned, so cleanup does not resurrect the pipeline for dependents.
  bool upstream_bad = false;
  for (const std::size_t dep : s.after)
    if (failed[dep] || poisoned[dep]) upstream_bad = true;
  poisoned[index] = upstream_bad ? 1 : 0;
  if (upstream_bad && !s.always_run) {
    sr.status = Status::cancelled("skipped (earlier stage failed)");
    return;
  }

  const double t0 = ctx.devices().now_s();
  for (int attempt = 1; attempt <= s.max_attempts; ++attempt) {
    ++sr.attempts;
    try {
      s.fn(ctx);
      sr.status = Status{};
      break;
    } catch (...) {
      sr.status = Status::from_exception(std::current_exception());
    }
    if (!sr.status.retryable()) break;  // only transient failures re-run
  }
  if (!sr.status.ok()) failed[index] = 1;
  sr.sim_gpu_seconds = ctx.devices().now_s() - t0;
}

WorkflowReport Workflow::run(WorkflowContext& ctx) const {
  WorkflowReport report;
  report.stages.resize(stages_.size());
  std::vector<std::uint8_t> failed(stages_.size(), 0);
  std::vector<std::uint8_t> poisoned(stages_.size(), 0);

  auto& sched = runtime::Scheduler::shared();
  // Declaration order is a topological order (`after` only references
  // earlier stages), so the inline path needs no extra sorting.  It is
  // taken when concurrency cannot help (one worker) or could deadlock
  // (run() already occupies a pool worker, e.g. a workflow nested inside a
  // stage).
  const bool inline_run =
      sched.worker_count() == 1 || sched.current_worker() >= 0;

  if (inline_run) {
    for (std::size_t i = 0; i < stages_.size(); ++i)
      run_stage(i, ctx, report, failed, poisoned);
  } else {
    // Stage tasks never fail at the runtime level (run_stage captures
    // exceptions into the report), so dependency edges are pure ordering:
    // they always fire and run_stage reads its deps' outcomes race-free.
    std::vector<runtime::AnyFuture> handles;
    handles.reserve(stages_.size());
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      runtime::SubmitOptions opts;
      opts.name = name_ + ":" + stages_[i].name;
      for (const std::size_t dep : stages_[i].after)
        opts.deps.push_back(handles[dep]);
      handles.push_back(sched.submit_any(
          std::move(opts), [this, i, &ctx, &report, &failed,
                            &poisoned]() -> std::any {
            run_stage(i, ctx, report, failed, poisoned);
            return {};
          }));
    }
    for (const auto& h : handles) h.wait();
  }

  for (std::size_t i = 0; i < stages_.size(); ++i) {
    report.total_sim_gpu_seconds += report.stages[i].sim_gpu_seconds;
    if (failed[i] && report.status.ok())
      report.status = report.stages[i].status;
  }
  return report;
}

}  // namespace sagesim::core
