#include "core/version.hpp"

namespace sagesim {

const char* version() { return "1.0.0"; }

const char* description() {
  return "sagesim: instructional GPU programming & AI workflow framework "
         "(reproduction of 'GPU Programming for AI Workflow Development on "
         "AWS SageMaker', SC'25)";
}

}  // namespace sagesim
