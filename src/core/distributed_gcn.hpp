// Algorithm 1 of the paper: Distributed GCN Training Using METIS
// Partitioning and Dask.
//
//   1. Load G, X, Y; compute normalized adjacency Â
//   2. Partition G into {G1..Gk} using METIS (or a baseline partitioner)
//   3. Initialize Dask cluster; assign each worker to a GPU
//   4. Distribute Gi, Xi, Yi to worker i; broadcast θ
//   5. Per epoch: local loss+gradients per worker, aggregate gradients,
//      synchronized global update
//
// The trainer reports both simulated wall time and accuracy so the
// Algorithm-1 bench can reproduce the paper's finding: "simply splitting
// the graph and distributing the training yielded minimal performance
// improvement[, but] enhanced prediction accuracy ... compared to
// sequential approaches."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dflow/cluster.hpp"
#include "graph/generators.hpp"
#include "graph/metis_like.hpp"
#include "graph/partition.hpp"
#include "nn/gcn.hpp"

namespace sagesim::core {

enum class PartitionStrategy : std::uint8_t { kMetis, kRandom, kBlock };

const char* to_string(PartitionStrategy s);

/// Fault tolerance for Algorithm 1: epoch-granular checkpoint/restart plus
/// elastic shrink.  When enabled, epochs are submitted in chunks of
/// checkpoint_every; a chunk that fails retryably (injected preemption,
/// reclaimed spot rank) is re-run from the last checkpoint — fault decisions
/// are drawn at submit time, so the re-run consumes fresh draws and
/// converges.  Because the checkpoint carries parameters, optimizer
/// velocity, per-epoch losses *and every replica's dropout RNG stream*, a
/// preempted run resumes bit-identically: same-seed fault-free and
/// fault-injected runs reach the same final loss.
struct GcnFaultOptions {
  bool enabled{false};
  /// Where epoch checkpoints live; required when enabled.
  std::string checkpoint_dir;
  std::string checkpoint_prefix{"gcn"};
  /// Epochs per chunk (checkpoint cadence).
  int checkpoint_every{5};
  /// Re-runs of one chunk before giving up (kUnavailable after).
  int max_chunk_attempts{8};
  /// On permanently lost ranks (Cluster::rank_available false), re-partition
  /// METIS to the surviving ranks and continue with a smaller world instead
  /// of failing.  A shrink abandons bit-identity (different shards).
  bool allow_shrink{false};
};

struct DistributedGcnConfig {
  int num_partitions{2};          ///< k (== number of GPU workers used)
  PartitionStrategy strategy{PartitionStrategy::kMetis};
  int epochs{60};
  std::size_t hidden{16};
  float dropout{0.3f};
  float learning_rate{0.05f};
  std::uint64_t seed{42};
  /// Modeled Dask control-plane cost per dispatched task (~1 ms per task is
  /// the documented dask.distributed overhead); dispatch is serialized on
  /// the scheduler.
  double scheduler_overhead_s{1e-3};
  /// Gradient-bucket size for DDP sync; 0 uses ddp::default_bucket_bytes().
  /// The GCN's parameters are small, so per-layer overlap needs buckets well
  /// below the 4 MiB default.
  std::size_t ddp_bucket_bytes{0};
  /// Overlap bucket allreduce with backward compute on the comm streams.
  bool ddp_overlap{true};
  GcnFaultOptions fault;
};

struct DistributedGcnResult {
  std::vector<double> epoch_losses;      ///< mean across workers
  double train_sim_seconds{0.0};         ///< simulated wall time, all epochs
  double test_accuracy{0.0};             ///< full-graph eval, replica 0
  graph::PartitionQuality partition;     ///< quality of the split used
  std::size_t cut_edges_dropped{0};      ///< boundary edges lost to halos
  std::vector<double> gpu_utilization;   ///< kernel-busy fraction per device
  // --- fault-tolerance accounting (zero on fault-free runs) ---------------
  std::size_t chunk_restarts{0};         ///< chunks re-run from a checkpoint
  std::size_t checkpoints_written{0};
  std::size_t checkpoints_restored{0};   ///< includes the resume-on-entry
  std::size_t reshards{0};               ///< elastic shrink re-partitions
  int final_world{0};                    ///< ranks still training at the end
};

/// Trains on @p dataset with @p k workers pinned to @p cluster's devices.
/// Requires cluster.world_size() >= config.num_partitions >= 1; k == 1
/// degenerates to sequential training on device 0 (the baseline).
/// Operational failures (chunk attempts exhausted, unusable checkpoints)
/// come back as a Status; argument misuse throws.
Expected<DistributedGcnResult> try_train_distributed_gcn(
    const graph::Dataset& dataset, dflow::Cluster& cluster,
    const DistributedGcnConfig& config);

}  // namespace sagesim::core
