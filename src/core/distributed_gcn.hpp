// Algorithm 1 of the paper: Distributed GCN Training Using METIS
// Partitioning and Dask.
//
//   1. Load G, X, Y; compute normalized adjacency Â
//   2. Partition G into {G1..Gk} using METIS (or a baseline partitioner)
//   3. Initialize Dask cluster; assign each worker to a GPU
//   4. Distribute Gi, Xi, Yi to worker i; broadcast θ
//   5. Per epoch: local loss+gradients per worker, aggregate gradients,
//      synchronized global update
//
// The trainer reports both simulated wall time and accuracy so the
// Algorithm-1 bench can reproduce the paper's finding: "simply splitting
// the graph and distributing the training yielded minimal performance
// improvement[, but] enhanced prediction accuracy ... compared to
// sequential approaches."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dflow/cluster.hpp"
#include "graph/generators.hpp"
#include "graph/metis_like.hpp"
#include "graph/partition.hpp"
#include "nn/gcn.hpp"

namespace sagesim::core {

enum class PartitionStrategy : std::uint8_t { kMetis, kRandom, kBlock };

const char* to_string(PartitionStrategy s);

struct DistributedGcnConfig {
  int num_partitions{2};          ///< k (== number of GPU workers used)
  PartitionStrategy strategy{PartitionStrategy::kMetis};
  int epochs{60};
  std::size_t hidden{16};
  float dropout{0.3f};
  float learning_rate{0.05f};
  std::uint64_t seed{42};
  /// Modeled Dask control-plane cost per dispatched task (~1 ms per task is
  /// the documented dask.distributed overhead); dispatch is serialized on
  /// the scheduler.
  double scheduler_overhead_s{1e-3};
};

struct DistributedGcnResult {
  std::vector<double> epoch_losses;      ///< mean across workers
  double train_sim_seconds{0.0};         ///< simulated wall time, all epochs
  double test_accuracy{0.0};             ///< full-graph eval, replica 0
  graph::PartitionQuality partition;     ///< quality of the split used
  std::size_t cut_edges_dropped{0};      ///< boundary edges lost to halos
  std::vector<double> gpu_utilization;   ///< kernel-busy fraction per device
};

/// Trains on @p dataset with @p k workers pinned to @p cluster's devices.
/// Requires cluster.world_size() >= config.num_partitions >= 1; k == 1
/// degenerates to sequential training on device 0 (the baseline).
DistributedGcnResult train_distributed_gcn(const graph::Dataset& dataset,
                                           dflow::Cluster& cluster,
                                           const DistributedGcnConfig& config);

}  // namespace sagesim::core
