#include "core/jobs.hpp"

#include <stdexcept>
#include <utility>

#include "rag/index.hpp"
#include "rl/env.hpp"
#include "stats/rng.hpp"

namespace sagesim::core {

sched::JobSpec make_gcn_job(std::string tenant,
                            std::shared_ptr<const graph::Dataset> dataset,
                            DistributedGcnConfig config, double service_h) {
  if (!dataset) throw std::invalid_argument("make_gcn_job: null dataset");
  if (config.num_partitions < 1)
    throw std::invalid_argument("make_gcn_job: num_partitions must be >= 1");
  sched::JobSpec spec;
  spec.tenant = std::move(tenant);
  spec.kind = sched::JobKind::kGcnTraining;
  spec.ranks = config.num_partitions;
  spec.service_h = service_h;
  spec.priority = config.num_partitions > 1 ? sched::JobClass::kBatch
                                            : sched::JobClass::kNormal;
  spec.checkpoint_dir = config.fault.checkpoint_dir;
  spec.work = [dataset = std::move(dataset),
               config](sched::JobContext& ctx) -> Expected<double> {
    auto result = try_train_distributed_gcn(*dataset, *ctx.cluster, config);
    if (!result) return result.status();
    return result->epoch_losses.empty() ? 0.0 : result->epoch_losses.back();
  };
  return spec;
}

sched::JobSpec make_dqn_job(std::string tenant, rl::DqnConfig config,
                            int episodes, std::size_t grid_n,
                            double service_h) {
  if (episodes < 1)
    throw std::invalid_argument("make_dqn_job: episodes must be >= 1");
  if (grid_n < 2)
    throw std::invalid_argument("make_dqn_job: grid_n must be >= 2");
  sched::JobSpec spec;
  spec.tenant = std::move(tenant);
  spec.kind = sched::JobKind::kDqnLab;
  spec.ranks = 1;
  spec.service_h = service_h;
  spec.priority = sched::JobClass::kNormal;
  spec.work = [config, episodes,
               grid_n](sched::JobContext& ctx) -> Expected<double> {
    rl::GridWorld env(grid_n);
    rl::DqnAgent agent(env, config, &ctx.cluster->devices().device(0));
    const std::vector<rl::EpisodeStats> stats = agent.train(episodes);
    const std::size_t tail = std::max<std::size_t>(1, stats.size() / 4);
    double reward = 0.0;
    for (std::size_t i = stats.size() - tail; i < stats.size(); ++i)
      reward += stats[i].total_reward;
    return reward / static_cast<double>(tail);
  };
  return spec;
}

sched::JobSpec make_rag_job(std::string tenant,
                            rag::SyntheticCorpusParams corpus_params,
                            std::vector<std::string> queries,
                            double service_h) {
  if (queries.empty())
    throw std::invalid_argument("make_rag_job: no queries");
  sched::JobSpec spec;
  spec.tenant = std::move(tenant);
  spec.kind = sched::JobKind::kRagSession;
  spec.ranks = 1;
  spec.service_h = service_h;
  spec.priority = sched::JobClass::kInteractive;
  spec.work = [corpus_params, queries = std::move(queries)](
                  sched::JobContext& ctx) -> Expected<double> {
    stats::Rng rng(7);
    const rag::SyntheticCorpus corpus =
        rag::synthetic_corpus(corpus_params, rng);
    rag::RagConfig config;
    config.top_k = std::min<std::size_t>(4, corpus.corpus.size());
    rag::RagPipeline pipeline(
        corpus.corpus, std::make_unique<rag::BruteForceIndex>(config.embed_dim),
        &ctx.cluster->devices().device(0), config);
    auto answers = pipeline.answer_batch(queries);
    if (!answers) return answers.status();
    double total = 0.0;
    for (const rag::RagAnswer& a : *answers) total += a.total_s();
    return total / static_cast<double>(answers->size());
  };
  return spec;
}

}  // namespace sagesim::core
