#include "dataframe/column.hpp"

#include <stdexcept>

#include "prof/check.hpp"

namespace sagesim::df {

const char* to_string(DType t) {
  switch (t) {
    case DType::kFloat64: return "float64";
    case DType::kInt64: return "int64";
    case DType::kString: return "string";
  }
  return "?";
}

Column::Column(std::string name, std::vector<double> values)
    : name_(std::move(name)), data_(mem::TypedBuffer<double>(values)) {}
Column::Column(std::string name, std::vector<std::int64_t> values)
    : name_(std::move(name)), data_(mem::TypedBuffer<std::int64_t>(values)) {}
Column::Column(std::string name, std::vector<std::string> values)
    : name_(std::move(name)), data_(std::move(values)) {}

DType Column::dtype() const {
  return static_cast<DType>(data_.index());
}

std::size_t Column::size() const {
  return std::visit([](const auto& v) { return v.size(); }, data_);
}

std::span<const double> Column::f64() const {
  if (auto* v = std::get_if<mem::TypedBuffer<double>>(&data_))
    return v->span();
  throw std::logic_error("Column '" + name_ + "' is not float64");
}

std::span<const std::int64_t> Column::i64() const {
  if (auto* v = std::get_if<mem::TypedBuffer<std::int64_t>>(&data_))
    return v->span();
  throw std::logic_error("Column '" + name_ + "' is not int64");
}

std::span<const std::string> Column::str() const {
  if (auto* v = std::get_if<std::vector<std::string>>(&data_)) return *v;
  throw std::logic_error("Column '" + name_ + "' is not string");
}

std::span<double> Column::f64_mut() {
  if (auto* v = std::get_if<mem::TypedBuffer<double>>(&data_))
    return v->span();
  throw std::logic_error("Column '" + name_ + "' is not float64");
}

std::span<std::int64_t> Column::i64_mut() {
  if (auto* v = std::get_if<mem::TypedBuffer<std::int64_t>>(&data_))
    return v->span();
  throw std::logic_error("Column '" + name_ + "' is not int64");
}

double Column::numeric_at(std::size_t row) const {
  switch (dtype()) {
    case DType::kFloat64: return f64()[row];
    case DType::kInt64: return static_cast<double>(i64()[row]);
    case DType::kString:
      throw std::logic_error("Column '" + name_ + "': numeric_at on string");
  }
  return 0.0;
}

namespace {

/// Typed gather loop: bounds check per row, one dtype dispatch per call.
template <typename T>
std::vector<T> gather_values(std::span<const T> src,
                             std::span<const std::size_t> rows) {
  std::vector<T> out;
  out.reserve(rows.size());
  for (std::size_t r : rows) {
    if (r >= src.size())
      throw std::out_of_range("Column::gather: row out of range");
    out.push_back(src[r]);
  }
  return out;
}

}  // namespace

Column Column::gather(std::span<const std::size_t> rows) const {
  // Dispatch on dtype once up front; the per-row loops are monomorphic.
  Column out = [&]() -> Column {
    switch (dtype()) {
      case DType::kFloat64:
        return Column(name_, gather_values<double>(f64(), rows));
      case DType::kInt64:
        return Column(name_, gather_values<std::int64_t>(i64(), rows));
      case DType::kString: {
        const auto src = str();
        std::vector<std::string> vals;
        vals.reserve(rows.size());
        for (std::size_t r : rows) {
          if (r >= src.size())
            throw std::out_of_range("Column::gather: row out of range");
          vals.push_back(src[r]);
        }
        return Column(name_, std::move(vals));
      }
    }
    throw std::logic_error("Column::gather: unknown dtype");
  }();
  SAGESIM_CHECK_MSG(out.size() == rows.size(),
                    "gathered column size must match the index span");
  return out;
}

Column Column::renamed(std::string new_name) const {
  Column c = *this;
  c.name_ = std::move(new_name);
  return c;
}

Status Column::to_device(gpu::Device& device, int stream) {
  if (auto* v = std::get_if<mem::TypedBuffer<double>>(&data_))
    return v->to_device(device, stream);
  if (auto* v = std::get_if<mem::TypedBuffer<std::int64_t>>(&data_))
    return v->to_device(device, stream);
  return Status::failed_precondition("Column '" + name_ +
                                     "': string columns are host-only");
}

Status Column::to_host(int stream) {
  if (auto* v = std::get_if<mem::TypedBuffer<double>>(&data_))
    return v->to_host(stream);
  if (auto* v = std::get_if<mem::TypedBuffer<std::int64_t>>(&data_))
    return v->to_host(stream);
  return Status::failed_precondition("Column '" + name_ +
                                     "': string columns are host-only");
}

mem::Placement Column::placement() const {
  if (auto* v = std::get_if<mem::TypedBuffer<double>>(&data_))
    return v->placement();
  if (auto* v = std::get_if<mem::TypedBuffer<std::int64_t>>(&data_))
    return v->placement();
  return mem::Placement::kHost;
}

}  // namespace sagesim::df
