#include "dataframe/column.hpp"

#include <stdexcept>

namespace sagesim::df {

const char* to_string(DType t) {
  switch (t) {
    case DType::kFloat64: return "float64";
    case DType::kInt64: return "int64";
    case DType::kString: return "string";
  }
  return "?";
}

Column::Column(std::string name, std::vector<double> values)
    : name_(std::move(name)), data_(std::move(values)) {}
Column::Column(std::string name, std::vector<std::int64_t> values)
    : name_(std::move(name)), data_(std::move(values)) {}
Column::Column(std::string name, std::vector<std::string> values)
    : name_(std::move(name)), data_(std::move(values)) {}

DType Column::dtype() const {
  return static_cast<DType>(data_.index());
}

std::size_t Column::size() const {
  return std::visit([](const auto& v) { return v.size(); }, data_);
}

std::span<const double> Column::f64() const {
  if (auto* v = std::get_if<std::vector<double>>(&data_)) return *v;
  throw std::logic_error("Column '" + name_ + "' is not float64");
}

std::span<const std::int64_t> Column::i64() const {
  if (auto* v = std::get_if<std::vector<std::int64_t>>(&data_)) return *v;
  throw std::logic_error("Column '" + name_ + "' is not int64");
}

std::span<const std::string> Column::str() const {
  if (auto* v = std::get_if<std::vector<std::string>>(&data_)) return *v;
  throw std::logic_error("Column '" + name_ + "' is not string");
}

std::span<double> Column::f64_mut() {
  if (auto* v = std::get_if<std::vector<double>>(&data_)) return *v;
  throw std::logic_error("Column '" + name_ + "' is not float64");
}

std::span<std::int64_t> Column::i64_mut() {
  if (auto* v = std::get_if<std::vector<std::int64_t>>(&data_)) return *v;
  throw std::logic_error("Column '" + name_ + "' is not int64");
}

double Column::numeric_at(std::size_t row) const {
  switch (dtype()) {
    case DType::kFloat64: return f64()[row];
    case DType::kInt64: return static_cast<double>(i64()[row]);
    case DType::kString:
      throw std::logic_error("Column '" + name_ + "': numeric_at on string");
  }
  return 0.0;
}

Column Column::gather(std::span<const std::size_t> rows) const {
  return std::visit(
      [&](const auto& v) {
        using Vec = std::decay_t<decltype(v)>;
        Vec out;
        out.reserve(rows.size());
        for (std::size_t r : rows) {
          if (r >= v.size())
            throw std::out_of_range("Column::gather: row out of range");
          out.push_back(v[r]);
        }
        return Column(name_, std::move(out));
      },
      data_);
}

Column Column::renamed(std::string new_name) const {
  Column c = *this;
  c.name_ = std::move(new_name);
  return c;
}

}  // namespace sagesim::df
