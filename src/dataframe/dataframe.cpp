#include "dataframe/dataframe.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace sagesim::df {

const char* to_string(Agg a) {
  switch (a) {
    case Agg::kSum: return "sum";
    case Agg::kMean: return "mean";
    case Agg::kCount: return "count";
    case Agg::kMin: return "min";
    case Agg::kMax: return "max";
  }
  return "?";
}

DataFrame::DataFrame(std::vector<Column> columns)
    : columns_(std::move(columns)) {
  check_rectangular();
  std::set<std::string> names;
  for (const auto& c : columns_)
    if (!names.insert(c.name()).second)
      throw std::invalid_argument("DataFrame: duplicate column '" + c.name() +
                                  "'");
}

void DataFrame::check_rectangular() const {
  if (columns_.empty()) return;
  const std::size_t rows = columns_.front().size();
  for (const auto& c : columns_)
    if (c.size() != rows)
      throw std::invalid_argument("DataFrame: column '" + c.name() +
                                  "' has mismatched length");
}

std::size_t DataFrame::num_rows() const {
  return columns_.empty() ? 0 : columns_.front().size();
}

const Column& DataFrame::col(const std::string& name) const {
  for (const auto& c : columns_)
    if (c.name() == name) return c;
  throw std::invalid_argument("DataFrame: no column '" + name + "'");
}

bool DataFrame::has_col(const std::string& name) const {
  for (const auto& c : columns_)
    if (c.name() == name) return true;
  return false;
}

std::vector<std::string> DataFrame::column_names() const {
  std::vector<std::string> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c.name());
  return out;
}

DataFrame& DataFrame::with_column(Column column) {
  if (!columns_.empty() && column.size() != num_rows())
    throw std::invalid_argument("with_column: length mismatch");
  for (auto& c : columns_) {
    if (c.name() == column.name()) {
      c = std::move(column);
      return *this;
    }
  }
  columns_.push_back(std::move(column));
  return *this;
}

DataFrame DataFrame::select(const std::vector<std::string>& names) const {
  std::vector<Column> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back(col(n));
  return DataFrame(std::move(out));
}

namespace {

bool apply_cmp(double a, Cmp cmp, double b) {
  switch (cmp) {
    case Cmp::kLt: return a < b;
    case Cmp::kLe: return a <= b;
    case Cmp::kGt: return a > b;
    case Cmp::kGe: return a >= b;
    case Cmp::kEq: return a == b;
    case Cmp::kNe: return a != b;
  }
  return false;
}

}  // namespace

DataFrame DataFrame::filter(gpu::Device* dev, const std::string& col_name,
                            Cmp cmp, double value) const {
  const Column& c = col(col_name);
  if (!c.is_numeric())
    throw std::invalid_argument("filter: column '" + col_name +
                                "' is not numeric");
  const std::size_t n = c.size();
  std::vector<std::uint8_t> mask(n, 0);

  auto eval = [&](std::size_t i) {
    mask[i] = apply_cmp(c.numeric_at(i), cmp, value) ? 1 : 0;
  };
  if (dev != nullptr && n > 0) {
    dev->launch_linear("df_filter", n, 256, [&](const gpu::ThreadCtx& ctx) {
      eval(ctx.global_x());
      ctx.add_flops(1.0);
      ctx.add_bytes(static_cast<double>(sizeof(double) + 1));
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) eval(i);
  }

  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < n; ++i)
    if (mask[i] != 0) rows.push_back(i);
  return gather(rows);
}

DataFrame DataFrame::gather(std::span<const std::size_t> rows) const {
  std::vector<Column> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c.gather(rows));
  return DataFrame(std::move(out));
}

namespace {

/// Group keys as strings for unified hashing across key dtypes.
std::vector<std::size_t> group_assignments(const Column& key,
                                           std::vector<std::size_t>& order) {
  std::unordered_map<std::string, std::size_t> group_of;
  std::vector<std::size_t> assign(key.size());
  for (std::size_t i = 0; i < key.size(); ++i) {
    std::string k;
    switch (key.dtype()) {
      case DType::kInt64: k = std::to_string(key.i64()[i]); break;
      case DType::kString: k = key.str()[i]; break;
      case DType::kFloat64:
        throw std::invalid_argument("group_by: float64 keys unsupported");
    }
    auto [it, inserted] = group_of.emplace(std::move(k), group_of.size());
    if (inserted) order.push_back(i);  // first occurrence row
    assign[i] = it->second;
  }
  return assign;
}

}  // namespace

DataFrame DataFrame::group_by(gpu::Device* dev, const std::string& key_name,
                              const std::string& value_name, Agg agg) const {
  const Column& key = col(key_name);
  const Column& value = col(value_name);
  if (!value.is_numeric() && agg != Agg::kCount)
    throw std::invalid_argument("group_by: value column must be numeric");

  std::vector<std::size_t> first_rows;
  const auto assign = group_assignments(key, first_rows);
  const std::size_t groups = first_rows.size();

  std::vector<double> sums(groups, 0.0);
  std::vector<double> mins(groups, std::numeric_limits<double>::infinity());
  std::vector<double> maxs(groups, -std::numeric_limits<double>::infinity());
  std::vector<std::int64_t> counts(groups, 0);

  auto accumulate = [&](std::size_t i) {
    const std::size_t grp = assign[i];
    ++counts[grp];
    if (value.is_numeric()) {
      const double v = value.numeric_at(i);
      sums[grp] += v;
      mins[grp] = std::min(mins[grp], v);
      maxs[grp] = std::max(maxs[grp], v);
    }
  };
  // The scatter-reduce is executed serially (host) for determinism; a real
  // GPU hash aggregate's cost is charged analytically.
  for (std::size_t i = 0; i < key.size(); ++i) accumulate(i);
  if (dev != nullptr && key.size() > 0) {
    const double flops = 3.0 * static_cast<double>(key.size());
    const double bytes =
        static_cast<double>(key.size()) * (sizeof(double) + sizeof(std::int64_t));
    dev->charge("df_groupby", prof::EventKind::kKernel,
                std::max(flops / dev->spec().peak_flops(),
                         bytes / dev->spec().peak_bytes_per_s()) +
                    dev->spec().launch_overhead_us * 1e-6,
                0, {{"flops", flops}, {"bytes", bytes}});
  }

  std::vector<Column> out;
  out.push_back(key.gather(first_rows));
  const std::string out_name =
      std::string(to_string(agg)) + "_" + value_name;
  switch (agg) {
    case Agg::kSum:
      out.emplace_back(out_name, sums);
      break;
    case Agg::kMean: {
      std::vector<double> means(groups);
      for (std::size_t g = 0; g < groups; ++g)
        means[g] = counts[g] > 0 ? sums[g] / static_cast<double>(counts[g])
                                 : 0.0;
      out.emplace_back(out_name, std::move(means));
      break;
    }
    case Agg::kCount:
      out.emplace_back(out_name, counts);
      break;
    case Agg::kMin:
      out.emplace_back(out_name, mins);
      break;
    case Agg::kMax:
      out.emplace_back(out_name, maxs);
      break;
  }
  return DataFrame(std::move(out));
}

DataFrame DataFrame::sort_by(const std::string& col_name,
                             bool ascending) const {
  const Column& c = col(col_name);
  std::vector<std::size_t> order(c.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (c.is_numeric()) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return ascending ? c.numeric_at(a) < c.numeric_at(b)
                                        : c.numeric_at(a) > c.numeric_at(b);
                     });
  } else {
    const auto s = c.str();
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return ascending ? s[a] < s[b] : s[b] < s[a];
                     });
  }
  return gather(order);
}

DataFrame DataFrame::join(gpu::Device* dev, const DataFrame& right,
                          const std::string& key) const {
  const Column& lk = col(key);
  const Column& rk = right.col(key);
  if (lk.dtype() != rk.dtype())
    throw std::invalid_argument("join: key dtype mismatch");
  if (lk.dtype() == DType::kFloat64)
    throw std::invalid_argument("join: float64 keys unsupported");

  auto key_str = [](const Column& c, std::size_t i) {
    return c.dtype() == DType::kInt64 ? std::to_string(c.i64()[i])
                                      : c.str()[i];
  };

  // Build on the smaller side is the real optimization; here build right.
  std::unordered_map<std::string, std::vector<std::size_t>> build;
  for (std::size_t i = 0; i < rk.size(); ++i)
    build[key_str(rk, i)].push_back(i);

  std::vector<std::size_t> left_rows, right_rows;
  for (std::size_t i = 0; i < lk.size(); ++i) {
    auto it = build.find(key_str(lk, i));
    if (it == build.end()) continue;
    for (std::size_t r : it->second) {
      left_rows.push_back(i);
      right_rows.push_back(r);
    }
  }
  if (dev != nullptr) {
    const double bytes = static_cast<double>(lk.size() + rk.size()) * 16.0;
    dev->charge("df_hash_join", prof::EventKind::kKernel,
                bytes / dev->spec().peak_bytes_per_s() +
                    dev->spec().launch_overhead_us * 1e-6,
                0, {{"bytes", bytes}});
  }

  std::vector<Column> out;
  for (const auto& c : columns_) out.push_back(c.gather(left_rows));
  std::set<std::string> names;
  for (const auto& c : out) names.insert(c.name());
  for (const auto& name : right.column_names()) {
    if (name == key) continue;
    Column rc = right.col(name).gather(right_rows);
    if (names.contains(rc.name())) rc = rc.renamed(rc.name() + "_r");
    out.push_back(std::move(rc));
  }
  return DataFrame(std::move(out));
}

double DataFrame::reduce(gpu::Device* dev, const std::string& col_name,
                         Agg agg) const {
  const Column& c = col(col_name);
  if (!c.is_numeric())
    throw std::invalid_argument("reduce: column must be numeric");
  if (c.size() == 0) throw std::invalid_argument("reduce: empty column");

  double sum = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < c.size(); ++i) {
    const double v = c.numeric_at(i);
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  if (dev != nullptr) {
    const double bytes = static_cast<double>(c.size()) * sizeof(double);
    dev->charge("df_reduce", prof::EventKind::kKernel,
                bytes / dev->spec().peak_bytes_per_s() +
                    dev->spec().launch_overhead_us * 1e-6,
                0,
                {{"flops", static_cast<double>(c.size())}, {"bytes", bytes}});
  }
  switch (agg) {
    case Agg::kSum: return sum;
    case Agg::kMean: return sum / static_cast<double>(c.size());
    case Agg::kCount: return static_cast<double>(c.size());
    case Agg::kMin: return mn;
    case Agg::kMax: return mx;
  }
  return 0.0;
}

std::string DataFrame::head(std::size_t n) const {
  std::ostringstream os;
  for (const auto& c : columns_) os << std::setw(14) << c.name();
  os << '\n';
  const std::size_t rows = std::min(n, num_rows());
  for (std::size_t r = 0; r < rows; ++r) {
    for (const auto& c : columns_) {
      switch (c.dtype()) {
        case DType::kFloat64:
          os << std::setw(14) << std::fixed << std::setprecision(3)
             << c.f64()[r];
          break;
        case DType::kInt64: os << std::setw(14) << c.i64()[r]; break;
        case DType::kString: os << std::setw(14) << c.str()[r]; break;
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace sagesim::df
