// cuDF-like columnar dataframe with device-accelerated numeric operations —
// the Week-6 "RAPIDS + Dask for scalable data pipelines" lab substrate.
// Numeric filters and aggregations run as simulated GPU kernels when a
// device is supplied; string operations stay on the host (as in RAPIDS).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dataframe/column.hpp"
#include "gpusim/device.hpp"

namespace sagesim::df {

/// Comparison predicates for numeric filters.
enum class Cmp : std::uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

/// Aggregations for group_by.
enum class Agg : std::uint8_t { kSum, kMean, kCount, kMin, kMax };

const char* to_string(Agg a);

class DataFrame {
 public:
  DataFrame() = default;

  /// Builds from columns; all must share one length and have unique names.
  explicit DataFrame(std::vector<Column> columns);

  std::size_t num_rows() const;
  std::size_t num_cols() const { return columns_.size(); }

  const Column& col(const std::string& name) const;
  bool has_col(const std::string& name) const;
  std::vector<std::string> column_names() const;

  /// Adds (or replaces) a column; length must match.
  DataFrame& with_column(Column column);

  /// Projection.
  DataFrame select(const std::vector<std::string>& names) const;

  /// Numeric filter: keeps rows where `col <cmp> value`.  Runs the
  /// predicate as a device kernel when @p dev != nullptr.
  DataFrame filter(gpu::Device* dev, const std::string& col_name, Cmp cmp,
                   double value) const;

  /// Row gather (all columns).
  DataFrame gather(std::span<const std::size_t> rows) const;

  /// Hash group-by on @p key (int64 or string) aggregating @p value_col.
  /// Output columns: key, "<agg>_<value_col>".  Groups appear in
  /// first-occurrence order.
  DataFrame group_by(gpu::Device* dev, const std::string& key,
                     const std::string& value_col, Agg agg) const;

  /// Sorts by a column (numeric or string).
  DataFrame sort_by(const std::string& col_name, bool ascending = true) const;

  /// Inner hash join on equal-named key column (int64 or string).  Right
  /// columns clashing with left names get an "_r" suffix.
  DataFrame join(gpu::Device* dev, const DataFrame& right,
                 const std::string& key) const;

  /// Full-column reduction on a numeric column (device kernel).
  double reduce(gpu::Device* dev, const std::string& col_name, Agg agg) const;

  /// First @p n rows as a text table.
  std::string head(std::size_t n = 10) const;

 private:
  void check_rectangular() const;
  std::vector<Column> columns_;
};

}  // namespace sagesim::df
