// Typed columns for the cuDF-like dataframe.  Numeric columns store their
// values in mem::TypedBuffer (pooled, placement-aware) so dataframe data is
// visible to the device-memory simulation; string columns stay host-only.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "mem/buffer.hpp"
#include "runtime/status.hpp"

namespace sagesim::gpu {
class Device;
}

namespace sagesim::df {

enum class DType : std::uint8_t { kFloat64, kInt64, kString };

const char* to_string(DType t);

class Column {
 public:
  Column(std::string name, std::vector<double> values);
  Column(std::string name, std::vector<std::int64_t> values);
  Column(std::string name, std::vector<std::string> values);

  const std::string& name() const { return name_; }
  DType dtype() const;
  std::size_t size() const;

  bool is_numeric() const { return dtype() != DType::kString; }

  /// Typed access; throws std::logic_error on dtype mismatch.
  std::span<const double> f64() const;
  std::span<const std::int64_t> i64() const;
  std::span<const std::string> str() const;
  std::span<double> f64_mut();
  std::span<std::int64_t> i64_mut();

  /// Value at @p row as double (int64 widened); throws for string columns.
  double numeric_at(std::size_t row) const;

  /// Gathers rows into a new column (order given by @p rows).
  Column gather(std::span<const std::size_t> rows) const;

  /// Renamed copy.
  Column renamed(std::string new_name) const;

  // --- placement ---------------------------------------------------------

  /// Moves numeric storage to @p device (accounted H2D); string columns
  /// fail with kFailedPrecondition.
  Status to_device(gpu::Device& device, int stream = 0);

  /// Moves numeric storage back to the host (accounted D2H).
  Status to_host(int stream = 0);

  /// kHost for string columns, the buffer placement otherwise.
  mem::Placement placement() const;

 private:
  std::string name_;
  std::variant<mem::TypedBuffer<double>, mem::TypedBuffer<std::int64_t>,
               std::vector<std::string>>
      data_;
};

}  // namespace sagesim::df
