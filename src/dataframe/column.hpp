// Typed columns for the cuDF-like dataframe.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

namespace sagesim::df {

enum class DType : std::uint8_t { kFloat64, kInt64, kString };

const char* to_string(DType t);

class Column {
 public:
  Column(std::string name, std::vector<double> values);
  Column(std::string name, std::vector<std::int64_t> values);
  Column(std::string name, std::vector<std::string> values);

  const std::string& name() const { return name_; }
  DType dtype() const;
  std::size_t size() const;

  bool is_numeric() const { return dtype() != DType::kString; }

  /// Typed access; throws std::logic_error on dtype mismatch.
  std::span<const double> f64() const;
  std::span<const std::int64_t> i64() const;
  std::span<const std::string> str() const;
  std::span<double> f64_mut();
  std::span<std::int64_t> i64_mut();

  /// Value at @p row as double (int64 widened); throws for string columns.
  double numeric_at(std::size_t row) const;

  /// Gathers rows into a new column (order given by @p rows).
  Column gather(std::span<const std::size_t> rows) const;

  /// Renamed copy.
  Column renamed(std::string new_name) const;

 private:
  std::string name_;
  std::variant<std::vector<double>, std::vector<std::int64_t>,
               std::vector<std::string>>
      data_;
};

}  // namespace sagesim::df
