// Minimal CSV read/write for the dataframe (no quoting/escaping — the lab
// datasets are plain numeric/identifier tables).
#pragma once

#include <iosfwd>
#include <string>

#include "dataframe/dataframe.hpp"

namespace sagesim::df {

/// Writes @p frame with a header row.
void write_csv(const DataFrame& frame, std::ostream& os);
void write_csv(const DataFrame& frame, const std::string& path);

/// Reads a CSV with a header row.  Column types are inferred per column:
/// all-int64 -> int64, all-numeric -> float64, otherwise string.
/// Throws std::runtime_error on malformed input.
DataFrame read_csv(std::istream& is);
DataFrame read_csv(const std::string& path);

}  // namespace sagesim::df
