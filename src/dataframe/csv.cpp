#include "dataframe/csv.hpp"

#include <array>
#include <charconv>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace sagesim::df {

namespace {

/// Shortest round-trippable decimal form of @p v (std::to_chars emits the
/// minimal digits that parse back to the same double — locale-independent,
/// unlike operator<<, whose default 6 significant digits lose precision).
std::string format_f64(double v) {
  std::array<char, 32> buf;
  const auto [p, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec != std::errc()) throw std::runtime_error("write_csv: format failed");
  return std::string(buf.data(), p);
}

}  // namespace

void write_csv(const DataFrame& frame, std::ostream& os) {
  const auto names = frame.column_names();
  for (std::size_t i = 0; i < names.size(); ++i)
    os << (i ? "," : "") << names[i];
  os << '\n';
  for (std::size_t r = 0; r < frame.num_rows(); ++r) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i) os << ',';
      const Column& c = frame.col(names[i]);
      switch (c.dtype()) {
        case DType::kFloat64: os << format_f64(c.f64()[r]); break;
        case DType::kInt64: os << c.i64()[r]; break;
        case DType::kString: os << c.str()[r]; break;
      }
    }
    os << '\n';
  }
}

void write_csv(const DataFrame& frame, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path);
  write_csv(frame, out);
}

namespace {

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> out;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) out.push_back(cell);
  if (!line.empty() && line.back() == ',') out.emplace_back();
  return out;
}

bool parse_i64(const std::string& s, std::int64_t& v) {
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [p, ec] = std::from_chars(begin, end, v);
  return ec == std::errc() && p == end && !s.empty();
}

bool parse_f64(const std::string& s, double& v) {
  // std::from_chars, not std::stod: stod honors the global locale (a comma
  // decimal separator silently truncates "1.5" to 1) and throws on
  // non-numeric cells, which the type-sniffing loop below hits constantly.
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [p, ec] = std::from_chars(begin, end, v);
  return ec == std::errc() && p == end && !s.empty();
}

}  // namespace

DataFrame read_csv(std::istream& is) {
  // CRLF input: getline stops at '\n', leaving the '\r' glued to the last
  // cell ("3.14\r" is neither an int nor a float, so a CRLF file silently
  // degrades every numeric column to strings).
  const auto strip_cr = [](std::string& l) {
    if (!l.empty() && l.back() == '\r') l.pop_back();
  };
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("read_csv: empty input");
  strip_cr(line);
  const auto header = split_line(line);
  if (header.empty()) throw std::runtime_error("read_csv: empty header");

  std::vector<std::vector<std::string>> cells(header.size());
  while (std::getline(is, line)) {
    strip_cr(line);
    if (line.empty()) continue;
    const auto row = split_line(line);
    if (row.size() != header.size())
      throw std::runtime_error("read_csv: row with " +
                               std::to_string(row.size()) + " cells, header has " +
                               std::to_string(header.size()));
    for (std::size_t i = 0; i < row.size(); ++i) cells[i].push_back(row[i]);
  }

  std::vector<Column> columns;
  for (std::size_t i = 0; i < header.size(); ++i) {
    bool all_i64 = true, all_f64 = true;
    for (const auto& s : cells[i]) {
      std::int64_t iv;
      double dv;
      if (!parse_i64(s, iv)) all_i64 = false;
      if (!parse_f64(s, dv)) all_f64 = false;
    }
    if (all_i64 && !cells[i].empty()) {
      std::vector<std::int64_t> v;
      v.reserve(cells[i].size());
      for (const auto& s : cells[i]) {
        std::int64_t iv = 0;
        parse_i64(s, iv);
        v.push_back(iv);
      }
      columns.emplace_back(header[i], std::move(v));
    } else if (all_f64 && !cells[i].empty()) {
      std::vector<double> v;
      v.reserve(cells[i].size());
      for (const auto& s : cells[i]) {
        double dv = 0.0;
        parse_f64(s, dv);
        v.push_back(dv);
      }
      columns.emplace_back(header[i], std::move(v));
    } else {
      columns.emplace_back(header[i], std::move(cells[i]));
    }
  }
  return DataFrame(std::move(columns));
}

DataFrame read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  return read_csv(in);
}

}  // namespace sagesim::df
