// Instance-type catalog: the GPU instances the course provisions in
// us-east-1, with public on-demand prices.  §III.A.1 of the paper reports a
// blended average of ~$1.262/hr for single-GPU sessions and ~$2.314/hr for
// multi-GPU (cluster) sessions; the catalog's course mixes reproduce those
// averages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sagesim::cloud {

struct InstanceType {
  std::string name;          ///< e.g. "g4dn.xlarge"
  std::uint32_t vcpus{4};
  double memory_gib{16.0};
  std::uint32_t gpu_count{1};
  std::string gpu_model;     ///< gpusim spec name: "t4", "a10g", "v100"
  double hourly_usd{0.0};    ///< on-demand, us-east-1
};

namespace catalog {

/// All instance types the course uses.
const std::vector<InstanceType>& all();

/// Lookup by name; throws std::invalid_argument for unknown types.
const InstanceType& by_name(const std::string& name);

/// Single-GPU types students pick for individual labs.
std::vector<InstanceType> single_gpu();

/// Types with more than one GPU.
std::vector<InstanceType> multi_gpu();

/// The course's single-GPU session mix: (type, probability) pairs whose
/// blended rate is ~$1.26/hr as reported in §III.A.1.
std::vector<std::pair<InstanceType, double>> course_single_gpu_mix();

/// Blended hourly rate of course_single_gpu_mix().
double course_single_gpu_rate();

/// The course's multi-GPU sessions are clusters of three single-GPU
/// instances inside one VPC (up to 3 GPUs, §III.A.1); blended ~$2.30/hr.
double course_multi_gpu_rate();

}  // namespace catalog
}  // namespace sagesim::cloud
