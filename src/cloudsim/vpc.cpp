#include "cloudsim/vpc.hpp"

#include <memory>
#include <sstream>
#include <stdexcept>

namespace sagesim::cloud {

std::string ip_to_string(std::uint32_t addr) {
  std::ostringstream os;
  os << ((addr >> 24) & 0xff) << '.' << ((addr >> 16) & 0xff) << '.'
     << ((addr >> 8) & 0xff) << '.' << (addr & 0xff);
  return os.str();
}

std::uint32_t parse_ip(const std::string& text) {
  std::uint32_t parts[4];
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size())
      throw std::invalid_argument("parse_ip: malformed address " + text);
    std::size_t next = 0;
    unsigned long v = 0;
    try {
      v = std::stoul(text.substr(pos), &next);
    } catch (const std::exception&) {
      throw std::invalid_argument("parse_ip: malformed address " + text);
    }
    if (v > 255) throw std::invalid_argument("parse_ip: octet > 255 in " + text);
    parts[i] = static_cast<std::uint32_t>(v);
    pos += next;
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.')
        throw std::invalid_argument("parse_ip: malformed address " + text);
      ++pos;
    }
  }
  if (pos != text.size())
    throw std::invalid_argument("parse_ip: trailing characters in " + text);
  return (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3];
}

Cidr Cidr::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos)
    throw std::invalid_argument("Cidr::parse: missing /prefix in " + text);
  const std::uint32_t addr = parse_ip(text.substr(0, slash));
  int prefix = 0;
  try {
    prefix = std::stoi(text.substr(slash + 1));
  } catch (const std::exception&) {
    throw std::invalid_argument("Cidr::parse: malformed prefix in " + text);
  }
  return Cidr(addr, prefix);
}

Cidr::Cidr(std::uint32_t network, int prefix_len)
    : network_(network), prefix_len_(prefix_len) {
  if (prefix_len < 0 || prefix_len > 32)
    throw std::invalid_argument("Cidr: prefix length outside [0, 32]");
  if ((network & ~netmask()) != 0)
    throw std::invalid_argument("Cidr: host bits set below the prefix");
}

std::uint32_t Cidr::netmask() const {
  return prefix_len_ == 0 ? 0u
                          : ~0u << (32 - prefix_len_);
}

std::uint64_t Cidr::address_count() const {
  return 1ull << (32 - prefix_len_);
}

bool Cidr::contains(std::uint32_t addr) const {
  return (addr & netmask()) == network_;
}

bool Cidr::contains(const Cidr& other) const {
  return other.prefix_len_ >= prefix_len_ && contains(other.network_);
}

bool Cidr::overlaps(const Cidr& other) const {
  return contains(other.network_) || other.contains(network_);
}

std::uint32_t Cidr::address_at(std::uint64_t index) const {
  if (index >= address_count())
    throw std::out_of_range("Cidr::address_at: index beyond block");
  return network_ + static_cast<std::uint32_t>(index);
}

std::string Cidr::to_string() const {
  return ip_to_string(network_) + '/' + std::to_string(prefix_len_);
}

Subnet::Subnet(std::string id, Cidr cidr, std::string az)
    : id_(std::move(id)), cidr_(cidr), az_(std::move(az)) {
  if (cidr_.prefix_len() > 28)
    throw std::invalid_argument("Subnet: AWS requires prefix <= /28");
}

std::uint64_t Subnet::free_addresses() const {
  // Last address (broadcast) is also reserved.
  const std::uint64_t usable = cidr_.address_count() - 1;
  return next_offset_ >= usable ? 0 : usable - next_offset_;
}

std::uint32_t Subnet::allocate_address() {
  if (free_addresses() == 0)
    throw std::runtime_error("Subnet " + id_ + ": address space exhausted");
  return cidr_.address_at(next_offset_++);
}

Vpc::Vpc(std::string id, Cidr cidr) : id_(std::move(id)), cidr_(cidr) {
  if (cidr_.prefix_len() < 16 || cidr_.prefix_len() > 28)
    throw std::invalid_argument("Vpc: AWS requires /16 .. /28");
}

Subnet& Vpc::create_subnet(const std::string& cidr_text,
                           const std::string& az) {
  const Cidr sub = Cidr::parse(cidr_text);
  if (!cidr_.contains(sub))
    throw std::invalid_argument("create_subnet: " + sub.to_string() +
                                " is not inside VPC block " +
                                cidr_.to_string());
  for (const auto& existing : subnets_)
    if (existing->cidr().overlaps(sub))
      throw std::invalid_argument("create_subnet: " + sub.to_string() +
                                  " overlaps subnet " + existing->id());
  auto id = "subnet-" + id_ + "-" + std::to_string(next_subnet_++);
  subnets_.push_back(std::make_unique<Subnet>(id, sub, az));
  return *subnets_.back();
}

Subnet& Vpc::subnet(const std::string& id) {
  for (auto& s : subnets_)
    if (s->id() == id) return *s;
  throw std::invalid_argument("Vpc: unknown subnet " + id);
}

bool Vpc::same_network(std::uint32_t a, std::uint32_t b) const {
  return cidr_.contains(a) && cidr_.contains(b);
}

}  // namespace sagesim::cloud
