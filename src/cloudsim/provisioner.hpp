// The simulated control plane: launch/terminate instances under IAM policy
// and budget caps, advance simulated time, reap idle instances, and record
// every billable hour into a ledger — §III.A's infrastructure, including the
// "automated scripts designed to terminate idle resources".
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloudsim/iam.hpp"
#include "cloudsim/instance.hpp"
#include "cloudsim/vpc.hpp"
#include "runtime/status.hpp"

namespace sagesim::cloud {

/// One billed usage record (written at termination).
struct UsageRecord {
  std::string instance_id;
  std::string instance_type;
  std::string owner;
  std::string assessment;  ///< tag "Assessment" if present
  std::uint32_t gpu_count{0};
  double hours{0.0};
  double cost_usd{0.0};
  /// AWS Educate session: provided free of charge and invisible to the
  /// instructor's usage insights (Appendix A excludes these hours).
  bool educate{false};
  /// Billed at a spot rate (tag "Spot"); the tenant ledger splits spend on
  /// this bit.
  bool spot{false};
  /// Lease the instance served (tag "Lease") — empty for directly-owned
  /// instances; set by the sched control plane's fleet.
  std::string lease_id;
};

/// Per-owner budget cap; launches are denied once accrued + projected cost
/// would exceed it (the paper caps each student's usage per assessment and
/// offers a $100/semester ceiling).
struct BudgetCap {
  double limit_usd{100.0};
};

class Provisioner {
 public:
  Provisioner() = default;

  // --- simulated clock ----------------------------------------------------

  double now_h() const { return now_h_; }

  /// Advances simulated time; runs billing-visible effects (idle reaping if
  /// enabled).  @p hours must be >= 0.
  void advance_time(double hours);

  // --- network ------------------------------------------------------------

  /// Creates a VPC owned by the control plane.
  Vpc& create_vpc(const IamRole& role, const std::string& cidr);

  // --- instances ----------------------------------------------------------

  struct LaunchRequest {
    std::string type_name{};
    std::uint32_t count{1};
    std::string vpc_id{};      ///< empty = default VPC (created on demand)
    std::string subnet_id{};   ///< empty = first subnet of the VPC
    std::string assessment{};  ///< tag for cost attribution
    /// Launch through AWS Educate: free of charge, exempt from the budget
    /// cap, tagged so cost reports can exclude it (SIII.A.1).
    bool educate{false};
    /// Spot-market capacity: billed at @p spot_hourly_usd instead of the
    /// catalog's on-demand rate (must be > 0 when set), tagged "Spot" so
    /// the ledger splits spot from on-demand spend.  The interruption
    /// contract lives in SpotFleet; the provisioner only prices it.
    bool spot{false};
    double spot_hourly_usd{0.0};
    /// Lease tag for fleet instances serving multi-tenant workloads; the
    /// tenant ledger (cloudsim/cost) attributes spend through it.
    std::string lease_id{};
  };

  /// Launches instances under @p role with failures as values: budget
  /// denials are
  /// kResourceExhausted (retryable capacity story: free budget or wait),
  /// IAM/placement denials kFailedPrecondition, malformed requests
  /// kInvalidArgument.  The re-acquisition path of elastic training calls
  /// this in a retry loop rather than catching.  Returns instance ids.
  Expected<std::vector<std::string>> try_launch(const IamRole& role,
                                                const LaunchRequest& request);

  /// Terminates an instance (owner or instructor only) and writes its usage
  /// record.
  void terminate(const IamRole& role, const std::string& instance_id);

  /// Marks activity on an instance (keeps the idle reaper away).
  void touch(const std::string& instance_id);

  Instance& instance(const std::string& id);
  const Instance& instance(const std::string& id) const;

  /// All instances (any state).
  const std::vector<std::unique_ptr<Instance>>& instances() const {
    return instances_;
  }

  std::vector<const Instance*> running_instances() const;
  std::uint32_t running_count(const std::string& owner) const;

  // --- cost controls --------------------------------------------------------

  /// Sets the per-owner budget cap (applies to future launches).
  void set_budget_cap(const std::string& owner, BudgetCap cap);

  /// Total accrued cost for @p owner: completed records plus running
  /// instances priced to now.
  double accrued_cost(const std::string& owner) const;

  /// Enables the idle reaper: on every advance_time step, running instances
  /// idle longer than @p idle_threshold_h are terminated automatically.
  void enable_idle_reaper(double idle_threshold_h);

  /// Usage records written so far (terminated instances only).
  const std::vector<UsageRecord>& ledger() const { return ledger_; }

  /// Number of instances the idle reaper has terminated.
  std::size_t reaped_count() const { return reaped_; }

 private:
  /// Throwing body of try_launch (std::runtime_error carrying the denial
  /// reason); try_launch classifies the exceptions into Status codes.
  std::vector<std::string> launch_or_throw(const IamRole& role,
                                           const LaunchRequest& request);
  std::string next_instance_id();
  Vpc& default_vpc();
  void write_usage_record(const Instance& inst);
  void reap_idle();

  double now_h_{0.0};
  int next_id_{0};
  int next_vpc_{0};
  std::vector<std::unique_ptr<Vpc>> vpcs_;
  std::vector<std::unique_ptr<Instance>> instances_;
  std::vector<UsageRecord> ledger_;
  std::map<std::string, BudgetCap> budgets_;
  std::optional<double> idle_threshold_h_;
  std::size_t reaped_{0};
};

}  // namespace sagesim::cloud
