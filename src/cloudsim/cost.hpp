// Cost reporting over the provisioner's usage ledger — Appendix A / Fig. 5
// of the paper: average GPU hours and dollars per student per semester —
// plus the tenant ledger the multi-tenant control plane (src/sched) bills
// through: per-lease records attributing fleet-shared instance hours to the
// tenant whose job held them, with spot and on-demand spend kept separate.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "cloudsim/provisioner.hpp"

namespace sagesim::cloud {

/// Rollup for one grouping key (owner, type, or assessment).
struct CostRow {
  std::string key;
  double hours{0.0};
  double cost_usd{0.0};
  std::size_t sessions{0};
};

/// One lease: a tenant's job holding @p gpu_hours of fleet capacity over
/// [start_h, end_h].  Fleet instances are owned by the control plane, so
/// the instance-level usage ledger alone cannot attribute spend; every
/// billing path (budget caps at admission, mid-job cutoffs, the cost
/// report) reads these records.
struct LeaseRecord {
  std::string lease_id;
  std::string tenant;
  std::string job_id;         ///< submitting job ("job-17"), for drill-down
  std::string instance_type;
  double start_h{0.0};
  double end_h{0.0};
  double gpu_hours{0.0};      ///< instance-hours held (ranks x wall hours)
  double cost_usd{0.0};
  bool spot{false};
};

/// Per-tenant spend rollup with the spot/on-demand split.
struct TenantSpendRow {
  std::string tenant;
  double gpu_hours{0.0};
  double spot_usd{0.0};
  double ondemand_usd{0.0};
  std::size_t leases{0};
  double total_usd() const { return spot_usd + ondemand_usd; }
};

/// Append-only ledger of lease records with per-tenant rollups — the single
/// source of truth for tenant-attributed spend.  Both the sched control
/// plane (fleet leases) and the per-student provisioning path (via
/// lease_view) produce one of these, so budget caps and the fig05 cost
/// tables read the same shape.
class TenantLedger {
 public:
  void add(LeaseRecord record);

  const std::vector<LeaseRecord>& records() const { return records_; }

  /// Total attributed spend for @p tenant (spot + on-demand).
  double spend(const std::string& tenant) const;

  /// GPU-hours attributed to @p tenant.
  double gpu_hours(const std::string& tenant) const;

  /// Rollup by tenant, descending total spend.
  std::vector<TenantSpendRow> by_tenant() const;

  double total_usd() const { return total_usd_; }
  std::size_t tenant_count() const { return by_tenant_.size(); }

 private:
  std::vector<LeaseRecord> records_;
  std::map<std::string, TenantSpendRow> by_tenant_;
  double total_usd_{0.0};
};

/// Projects an instance-level usage ledger into the tenant-ledger shape
/// (owner == tenant, one lease per usage record, Educate records excluded as
/// free).  This is how the fig05 per-student path and the multi-tenant
/// fleet path share one reporting surface.
TenantLedger lease_view(std::span<const UsageRecord> ledger);

/// Aggregated view of a usage ledger.
class CostReport {
 public:
  explicit CostReport(std::span<const UsageRecord> ledger);

  double total_cost() const { return total_cost_; }
  /// Billed hours; AWS Educate hours are excluded, as in Appendix A ("we
  /// did not include the computational hours ... from AWS Educate").
  double total_hours() const { return total_hours_; }
  /// Free Educate hours, tracked separately.
  double educate_hours() const { return educate_hours_; }
  std::size_t record_count() const { return records_; }

  /// Rollup by instance owner, descending cost.
  std::vector<CostRow> by_owner() const;
  /// Rollup by instance type, descending cost.
  std::vector<CostRow> by_type() const;
  /// Rollup by assessment tag, descending cost.
  std::vector<CostRow> by_assessment() const;

  /// Per-tenant rollup with the spot/on-demand split (owner == tenant),
  /// through the same lease_view projection the sched fleet bills with.
  std::vector<TenantSpendRow> by_tenant() const;

  /// Mean hours per distinct owner.
  double mean_hours_per_owner() const;
  /// Mean cost per distinct owner.
  double mean_cost_per_owner() const;

  /// Weighted-average hourly rate over single-GPU records.
  double avg_single_gpu_rate() const;
  /// Weighted-average hourly rate over records from multi-GPU *sessions*
  /// (assessments whose instances total more than one GPU).
  double avg_multi_gpu_session_rate() const;

 private:
  std::vector<UsageRecord> ledger_;
  double total_cost_{0.0};
  double total_hours_{0.0};
  double educate_hours_{0.0};
  std::size_t records_{0};
};

/// Renders a fixed-width table of @p rows with a header @p title.
std::string to_text(const std::string& title, std::span<const CostRow> rows);

/// Renders the tenant rollup (spot/on-demand split) as a fixed-width table.
/// Rows beyond @p max_rows are elided with a summary line (semester-scale
/// ledgers hold thousands of tenants).
std::string to_text(const std::string& title,
                    std::span<const TenantSpendRow> rows,
                    std::size_t max_rows = 20);

}  // namespace sagesim::cloud
