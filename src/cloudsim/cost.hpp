// Cost reporting over the provisioner's usage ledger — Appendix A / Fig. 5
// of the paper: average GPU hours and dollars per student per semester.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "cloudsim/provisioner.hpp"

namespace sagesim::cloud {

/// Rollup for one grouping key (owner, type, or assessment).
struct CostRow {
  std::string key;
  double hours{0.0};
  double cost_usd{0.0};
  std::size_t sessions{0};
};

/// Aggregated view of a usage ledger.
class CostReport {
 public:
  explicit CostReport(std::span<const UsageRecord> ledger);

  double total_cost() const { return total_cost_; }
  /// Billed hours; AWS Educate hours are excluded, as in Appendix A ("we
  /// did not include the computational hours ... from AWS Educate").
  double total_hours() const { return total_hours_; }
  /// Free Educate hours, tracked separately.
  double educate_hours() const { return educate_hours_; }
  std::size_t record_count() const { return records_; }

  /// Rollup by instance owner, descending cost.
  std::vector<CostRow> by_owner() const;
  /// Rollup by instance type, descending cost.
  std::vector<CostRow> by_type() const;
  /// Rollup by assessment tag, descending cost.
  std::vector<CostRow> by_assessment() const;

  /// Mean hours per distinct owner.
  double mean_hours_per_owner() const;
  /// Mean cost per distinct owner.
  double mean_cost_per_owner() const;

  /// Weighted-average hourly rate over single-GPU records.
  double avg_single_gpu_rate() const;
  /// Weighted-average hourly rate over records from multi-GPU *sessions*
  /// (assessments whose instances total more than one GPU).
  double avg_multi_gpu_session_rate() const;

 private:
  std::vector<UsageRecord> ledger_;
  double total_cost_{0.0};
  double total_hours_{0.0};
  double educate_hours_{0.0};
  std::size_t records_{0};
};

/// Renders a fixed-width table of @p rows with a header @p title.
std::string to_text(const std::string& title, std::span<const CostRow> rows);

}  // namespace sagesim::cloud
