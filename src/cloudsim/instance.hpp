// EC2-like instance lifecycle.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "cloudsim/instance_type.hpp"

namespace sagesim::cloud {

enum class InstanceState : std::uint8_t {
  kPending,
  kRunning,
  kStopping,
  kTerminated,
};

const char* to_string(InstanceState s);

class Instance {
 public:
  Instance(std::string id, InstanceType type, std::string owner,
           std::uint32_t private_ip, std::string subnet_id,
           double launched_at_h);

  const std::string& id() const { return id_; }
  const InstanceType& type() const { return type_; }
  const std::string& owner() const { return owner_; }
  std::uint32_t private_ip() const { return private_ip_; }
  const std::string& subnet_id() const { return subnet_id_; }
  InstanceState state() const { return state_; }
  double launched_at_h() const { return launched_at_h_; }
  double terminated_at_h() const { return terminated_at_h_; }
  double last_activity_h() const { return last_activity_h_; }

  /// Tags (Name, Assessment, ...).
  void set_tag(const std::string& key, const std::string& value);
  const std::map<std::string, std::string>& tags() const { return tags_; }

  /// State transitions; invalid transitions throw std::logic_error.
  void mark_running(double now_h);
  void begin_stopping(double now_h);
  void mark_terminated(double now_h);

  /// Records user activity (a lab session touching the instance).
  void touch(double now_h);

  /// Hours since last activity, or 0 when not running.
  double idle_hours(double now_h) const;

  /// Billable hours so far (launch to termination or @p now_h).
  double billable_hours(double now_h) const;

  /// Accrued cost so far.
  double accrued_cost(double now_h) const {
    return billable_hours(now_h) * type_.hourly_usd;
  }

 private:
  std::string id_;
  InstanceType type_;
  std::string owner_;
  std::uint32_t private_ip_;
  std::string subnet_id_;
  InstanceState state_{InstanceState::kPending};
  double launched_at_h_;
  double terminated_at_h_{0.0};
  double last_activity_h_;
  std::map<std::string, std::string> tags_;
};

}  // namespace sagesim::cloud
