#include "cloudsim/iam.hpp"

#include <algorithm>

namespace sagesim::cloud {

const char* to_string(Action a) {
  switch (a) {
    case Action::kRunInstances: return "ec2:RunInstances";
    case Action::kTerminateInstances: return "ec2:TerminateInstances";
    case Action::kDescribeInstances: return "ec2:DescribeInstances";
    case Action::kCreateVpc: return "ec2:CreateVpc";
    case Action::kCreateSubnet: return "ec2:CreateSubnet";
    case Action::kCreateSageMakerNotebook: return "sagemaker:CreateNotebookInstance";
  }
  return "?";
}

Decision IamRole::evaluate(Action action, std::uint32_t requested_gpus,
                           std::uint32_t running) const {
  for (const auto& st : statements_) {
    if (std::find(st.actions.begin(), st.actions.end(), action) ==
        st.actions.end())
      continue;
    if (st.max_gpus_per_request && requested_gpus > *st.max_gpus_per_request)
      return Decision::deny(name_ + ": request for " +
                            std::to_string(requested_gpus) +
                            " GPUs exceeds cap of " +
                            std::to_string(*st.max_gpus_per_request));
    if (st.max_running_instances && running >= *st.max_running_instances)
      return Decision::deny(name_ + ": already at concurrent instance cap (" +
                            std::to_string(*st.max_running_instances) + ")");
    return Decision::allow();
  }
  return Decision::deny(name_ + ": action " + to_string(action) +
                        " not allowed by any policy statement");
}

IamRole student_role(const std::string& student_id) {
  PolicyStatement compute;
  compute.actions = {Action::kRunInstances, Action::kTerminateInstances,
                     Action::kDescribeInstances,
                     Action::kCreateSageMakerNotebook};
  compute.max_gpus_per_request = 3;
  compute.max_running_instances = 3;

  PolicyStatement network;
  network.actions = {Action::kCreateVpc, Action::kCreateSubnet};

  return IamRole("student/" + student_id, {compute, network});
}

IamRole instructor_role() {
  PolicyStatement everything;
  everything.actions = {Action::kRunInstances, Action::kTerminateInstances,
                        Action::kDescribeInstances, Action::kCreateVpc,
                        Action::kCreateSubnet,
                        Action::kCreateSageMakerNotebook};
  return IamRole("instructor", {everything});
}

}  // namespace sagesim::cloud
