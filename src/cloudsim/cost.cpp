#include "cloudsim/cost.hpp"

#include <algorithm>
#include <iomanip>
#include <set>
#include <sstream>

namespace sagesim::cloud {

void TenantLedger::add(LeaseRecord record) {
  auto& row = by_tenant_[record.tenant];
  row.tenant = record.tenant;
  row.gpu_hours += record.gpu_hours;
  (record.spot ? row.spot_usd : row.ondemand_usd) += record.cost_usd;
  ++row.leases;
  total_usd_ += record.cost_usd;
  records_.push_back(std::move(record));
}

double TenantLedger::spend(const std::string& tenant) const {
  auto it = by_tenant_.find(tenant);
  return it == by_tenant_.end() ? 0.0 : it->second.total_usd();
}

double TenantLedger::gpu_hours(const std::string& tenant) const {
  auto it = by_tenant_.find(tenant);
  return it == by_tenant_.end() ? 0.0 : it->second.gpu_hours;
}

std::vector<TenantSpendRow> TenantLedger::by_tenant() const {
  std::vector<TenantSpendRow> out;
  out.reserve(by_tenant_.size());
  for (const auto& [_, row] : by_tenant_) out.push_back(row);
  std::sort(out.begin(), out.end(),
            [](const TenantSpendRow& a, const TenantSpendRow& b) {
              return a.total_usd() > b.total_usd();
            });
  return out;
}

TenantLedger lease_view(std::span<const UsageRecord> ledger) {
  TenantLedger out;
  for (const auto& r : ledger) {
    if (r.educate) continue;  // free — no spend to attribute
    LeaseRecord lease;
    lease.lease_id = r.lease_id.empty() ? r.instance_id : r.lease_id;
    lease.tenant = r.owner;
    lease.instance_type = r.instance_type;
    lease.gpu_hours = r.hours * std::max<std::uint32_t>(r.gpu_count, 1);
    lease.cost_usd = r.cost_usd;
    lease.spot = r.spot;
    out.add(std::move(lease));
  }
  return out;
}

CostReport::CostReport(std::span<const UsageRecord> ledger)
    : ledger_(ledger.begin(), ledger.end()) {
  for (const auto& r : ledger_) {
    ++records_;
    if (r.educate) {
      educate_hours_ += r.hours;
      continue;  // free and invisible to instructor usage insights
    }
    total_cost_ += r.cost_usd;
    total_hours_ += r.hours;
  }
}

namespace {

std::vector<CostRow> rollup(
    const std::vector<UsageRecord>& ledger,
    const std::function<std::string(const UsageRecord&)>& key_of) {
  std::map<std::string, CostRow> agg;
  for (const auto& r : ledger) {
    if (r.educate) continue;
    auto& row = agg[key_of(r)];
    row.key = key_of(r);
    row.hours += r.hours;
    row.cost_usd += r.cost_usd;
    ++row.sessions;
  }
  std::vector<CostRow> out;
  out.reserve(agg.size());
  for (auto& [_, row] : agg) out.push_back(std::move(row));
  std::sort(out.begin(), out.end(), [](const CostRow& a, const CostRow& b) {
    return a.cost_usd > b.cost_usd;
  });
  return out;
}

}  // namespace

std::vector<CostRow> CostReport::by_owner() const {
  return rollup(ledger_, [](const UsageRecord& r) { return r.owner; });
}

std::vector<CostRow> CostReport::by_type() const {
  return rollup(ledger_, [](const UsageRecord& r) { return r.instance_type; });
}

std::vector<CostRow> CostReport::by_assessment() const {
  return rollup(ledger_, [](const UsageRecord& r) {
    return r.assessment.empty() ? std::string("(untagged)") : r.assessment;
  });
}

std::vector<TenantSpendRow> CostReport::by_tenant() const {
  return lease_view(ledger_).by_tenant();
}

double CostReport::mean_hours_per_owner() const {
  std::set<std::string> owners;
  for (const auto& r : ledger_) owners.insert(r.owner);
  return owners.empty() ? 0.0
                        : total_hours_ / static_cast<double>(owners.size());
}

double CostReport::mean_cost_per_owner() const {
  std::set<std::string> owners;
  for (const auto& r : ledger_) owners.insert(r.owner);
  return owners.empty() ? 0.0
                        : total_cost_ / static_cast<double>(owners.size());
}

double CostReport::avg_single_gpu_rate() const {
  double hours = 0.0, cost = 0.0;
  // Single-GPU sessions: assessments where the owner ran exactly one
  // instance with one GPU.  Group records by (owner, assessment).
  std::map<std::pair<std::string, std::string>, std::vector<const UsageRecord*>>
      sessions;
  for (const auto& r : ledger_)
    if (!r.educate) sessions[{r.owner, r.assessment}].push_back(&r);
  for (const auto& [key, recs] : sessions) {
    std::uint32_t gpus = 0;
    for (const auto* r : recs) gpus += r->gpu_count;
    if (gpus != 1) continue;
    for (const auto* r : recs) {
      hours += r->hours;
      cost += r->cost_usd;
    }
  }
  return hours > 0.0 ? cost / hours : 0.0;
}

double CostReport::avg_multi_gpu_session_rate() const {
  // Multi-GPU sessions: grouped per (owner, assessment), total GPUs > 1.
  // The session "rate" is session cost / session wall-hours, where wall
  // hours are the max over the cluster's instances (they run concurrently).
  std::map<std::pair<std::string, std::string>, std::vector<const UsageRecord*>>
      sessions;
  for (const auto& r : ledger_)
    if (!r.educate) sessions[{r.owner, r.assessment}].push_back(&r);
  double wall_hours = 0.0, cost = 0.0;
  for (const auto& [key, recs] : sessions) {
    std::uint32_t gpus = 0;
    double session_wall = 0.0, session_cost = 0.0;
    for (const auto* r : recs) {
      gpus += r->gpu_count;
      session_wall = std::max(session_wall, r->hours);
      session_cost += r->cost_usd;
    }
    if (gpus <= 1) continue;
    wall_hours += session_wall;
    cost += session_cost;
  }
  return wall_hours > 0.0 ? cost / wall_hours : 0.0;
}

std::string to_text(const std::string& title, std::span<const CostRow> rows) {
  std::ostringstream os;
  os << "=== " << title << " ===\n";
  os << std::left << std::setw(28) << "key" << std::right << std::setw(10)
     << "sessions" << std::setw(12) << "hours" << std::setw(12) << "USD"
     << '\n';
  os << std::string(62, '-') << '\n';
  os << std::fixed << std::setprecision(2);
  for (const auto& r : rows)
    os << std::left << std::setw(28) << r.key << std::right << std::setw(10)
       << r.sessions << std::setw(12) << r.hours << std::setw(12) << r.cost_usd
       << '\n';
  return os.str();
}

std::string to_text(const std::string& title,
                    std::span<const TenantSpendRow> rows,
                    std::size_t max_rows) {
  std::ostringstream os;
  os << "=== " << title << " ===\n";
  os << std::left << std::setw(22) << "tenant" << std::right << std::setw(8)
     << "leases" << std::setw(11) << "gpu-h" << std::setw(11) << "spot$"
     << std::setw(11) << "ondem$" << std::setw(11) << "total$" << '\n';
  os << std::string(74, '-') << '\n';
  os << std::fixed << std::setprecision(2);
  std::size_t shown = 0;
  double elided_usd = 0.0;
  for (const auto& r : rows) {
    if (shown < max_rows) {
      os << std::left << std::setw(22) << r.tenant << std::right
         << std::setw(8) << r.leases << std::setw(11) << r.gpu_hours
         << std::setw(11) << r.spot_usd << std::setw(11) << r.ondemand_usd
         << std::setw(11) << r.total_usd() << '\n';
      ++shown;
    } else {
      elided_usd += r.total_usd();
    }
  }
  if (rows.size() > shown)
    os << "... " << rows.size() - shown << " more tenants, $" << elided_usd
       << " total\n";
  return os.str();
}

}  // namespace sagesim::cloud
