#include "cloudsim/cost.hpp"

#include <algorithm>
#include <iomanip>
#include <set>
#include <sstream>

namespace sagesim::cloud {

CostReport::CostReport(std::span<const UsageRecord> ledger)
    : ledger_(ledger.begin(), ledger.end()) {
  for (const auto& r : ledger_) {
    ++records_;
    if (r.educate) {
      educate_hours_ += r.hours;
      continue;  // free and invisible to instructor usage insights
    }
    total_cost_ += r.cost_usd;
    total_hours_ += r.hours;
  }
}

namespace {

std::vector<CostRow> rollup(
    const std::vector<UsageRecord>& ledger,
    const std::function<std::string(const UsageRecord&)>& key_of) {
  std::map<std::string, CostRow> agg;
  for (const auto& r : ledger) {
    if (r.educate) continue;
    auto& row = agg[key_of(r)];
    row.key = key_of(r);
    row.hours += r.hours;
    row.cost_usd += r.cost_usd;
    ++row.sessions;
  }
  std::vector<CostRow> out;
  out.reserve(agg.size());
  for (auto& [_, row] : agg) out.push_back(std::move(row));
  std::sort(out.begin(), out.end(), [](const CostRow& a, const CostRow& b) {
    return a.cost_usd > b.cost_usd;
  });
  return out;
}

}  // namespace

std::vector<CostRow> CostReport::by_owner() const {
  return rollup(ledger_, [](const UsageRecord& r) { return r.owner; });
}

std::vector<CostRow> CostReport::by_type() const {
  return rollup(ledger_, [](const UsageRecord& r) { return r.instance_type; });
}

std::vector<CostRow> CostReport::by_assessment() const {
  return rollup(ledger_, [](const UsageRecord& r) {
    return r.assessment.empty() ? std::string("(untagged)") : r.assessment;
  });
}

double CostReport::mean_hours_per_owner() const {
  std::set<std::string> owners;
  for (const auto& r : ledger_) owners.insert(r.owner);
  return owners.empty() ? 0.0
                        : total_hours_ / static_cast<double>(owners.size());
}

double CostReport::mean_cost_per_owner() const {
  std::set<std::string> owners;
  for (const auto& r : ledger_) owners.insert(r.owner);
  return owners.empty() ? 0.0
                        : total_cost_ / static_cast<double>(owners.size());
}

double CostReport::avg_single_gpu_rate() const {
  double hours = 0.0, cost = 0.0;
  // Single-GPU sessions: assessments where the owner ran exactly one
  // instance with one GPU.  Group records by (owner, assessment).
  std::map<std::pair<std::string, std::string>, std::vector<const UsageRecord*>>
      sessions;
  for (const auto& r : ledger_)
    if (!r.educate) sessions[{r.owner, r.assessment}].push_back(&r);
  for (const auto& [key, recs] : sessions) {
    std::uint32_t gpus = 0;
    for (const auto* r : recs) gpus += r->gpu_count;
    if (gpus != 1) continue;
    for (const auto* r : recs) {
      hours += r->hours;
      cost += r->cost_usd;
    }
  }
  return hours > 0.0 ? cost / hours : 0.0;
}

double CostReport::avg_multi_gpu_session_rate() const {
  // Multi-GPU sessions: grouped per (owner, assessment), total GPUs > 1.
  // The session "rate" is session cost / session wall-hours, where wall
  // hours are the max over the cluster's instances (they run concurrently).
  std::map<std::pair<std::string, std::string>, std::vector<const UsageRecord*>>
      sessions;
  for (const auto& r : ledger_)
    if (!r.educate) sessions[{r.owner, r.assessment}].push_back(&r);
  double wall_hours = 0.0, cost = 0.0;
  for (const auto& [key, recs] : sessions) {
    std::uint32_t gpus = 0;
    double session_wall = 0.0, session_cost = 0.0;
    for (const auto* r : recs) {
      gpus += r->gpu_count;
      session_wall = std::max(session_wall, r->hours);
      session_cost += r->cost_usd;
    }
    if (gpus <= 1) continue;
    wall_hours += session_wall;
    cost += session_cost;
  }
  return wall_hours > 0.0 ? cost / wall_hours : 0.0;
}

std::string to_text(const std::string& title, std::span<const CostRow> rows) {
  std::ostringstream os;
  os << "=== " << title << " ===\n";
  os << std::left << std::setw(28) << "key" << std::right << std::setw(10)
     << "sessions" << std::setw(12) << "hours" << std::setw(12) << "USD"
     << '\n';
  os << std::string(62, '-') << '\n';
  os << std::fixed << std::setprecision(2);
  for (const auto& r : rows)
    os << std::left << std::setw(28) << r.key << std::right << std::setw(10)
       << r.sessions << std::setw(12) << r.hours << std::setw(12) << r.cost_usd
       << '\n';
  return os.str();
}

}  // namespace sagesim::cloud
