// Spot-instance market simulation: price traces, preemption notices with a
// grace window, and capacity re-acquisition — the cloud-side source of the
// fault model (§III.A cost controls taken to their logical end: train on
// interruptible capacity).
//
// A SpotFleet holds one slot per simulated GPU rank and follows a
// step-function price trace.  When the price crosses above the bid, every
// held slot receives a *preemption notice* (the 2-minute warning); after
// grace_window_h the slot is reclaimed.  Once the price falls back to or
// under the bid, reclaimed slots re-acquire capacity after
// reacquire_delay_h.  advance() returns the ordered event stream between
// the previous and the new clock value; dflow::apply_spot_events (see
// dflow/elastic.hpp) folds that stream into Cluster rank membership so a
// rank disappears mid-collective and later rejoins.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/status.hpp"

namespace sagesim::cloud {

/// One step of a spot price trace: price_usd holds from time_h until the
/// next point (step function, sorted ascending by time_h).
struct SpotPricePoint {
  double time_h{0.0};
  double price_usd{0.0};
};

struct SpotFleetConfig {
  std::vector<SpotPricePoint> trace;  ///< must be non-empty and sorted
  double bid_usd{1.0};                ///< preempt while price > bid
  double grace_window_h{0.05};        ///< notice-to-reclaim window
  double reacquire_delay_h{0.1};      ///< price-drop-to-capacity delay
};

enum class SpotSlotState : std::uint8_t {
  kHeld,      ///< capacity attached
  kNoticed,   ///< preemption notice received, grace window running
  kReclaimed  ///< capacity gone
};

const char* to_string(SpotSlotState s);

/// One slot transition, in simulated time order.
struct SpotEvent {
  double time_h{0.0};
  int slot{0};  ///< == the dflow rank the slot backs
  SpotSlotState state{SpotSlotState::kHeld};
};

class SpotFleet {
 public:
  /// @p slots slots, all initially kHeld at the trace origin.  Throws on an
  /// empty or unsorted trace (API misuse).
  SpotFleet(int slots, SpotFleetConfig config);

  /// Price in effect at @p time_h (first point's price before the trace).
  double price_at(double time_h) const;

  /// Advances the market clock to @p to_h (monotonic; going backwards is
  /// invalid_argument) and returns every slot transition in between,
  /// ordered by time.  A notice issued during the window is *final*: the
  /// slot is reclaimed after the grace window even if the price recovers —
  /// matching the real contract.
  Expected<std::vector<SpotEvent>> advance(double to_h);

  SpotSlotState slot_state(int slot) const;
  int held_count() const;
  int slot_count() const { return static_cast<int>(slots_.size()); }
  double now_h() const { return now_h_; }

  /// Totals over the fleet's lifetime (overhead reporting).
  std::size_t preemption_count() const { return preemptions_; }
  std::size_t reacquisition_count() const { return reacquisitions_; }

  const SpotFleetConfig& config() const { return config_; }

 private:
  struct Slot {
    SpotSlotState state{SpotSlotState::kHeld};
    double reclaim_at_h{0.0};    ///< valid while kNoticed
    double reacquire_at_h{0.0};  ///< valid while kReclaimed, 0 == unknown
  };

  SpotFleetConfig config_;
  std::vector<Slot> slots_;
  double now_h_{0.0};
  std::size_t preemptions_{0};
  std::size_t reacquisitions_{0};
};

/// Synthetic price trace: a base price with @p spikes evenly spaced
/// excursions above @p spike_price, each @p spike_width_h long — enough to
/// exercise notice/reclaim/re-acquire cycles without hand-writing traces.
std::vector<SpotPricePoint> synthetic_price_trace(double horizon_h,
                                                  double base_price,
                                                  double spike_price,
                                                  int spikes,
                                                  double spike_width_h);

}  // namespace sagesim::cloud
