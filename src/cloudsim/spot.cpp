#include "cloudsim/spot.hpp"

#include <algorithm>
#include <stdexcept>

namespace sagesim::cloud {

const char* to_string(SpotSlotState s) {
  switch (s) {
    case SpotSlotState::kHeld: return "held";
    case SpotSlotState::kNoticed: return "noticed";
    case SpotSlotState::kReclaimed: return "reclaimed";
  }
  return "?";
}

SpotFleet::SpotFleet(int slots, SpotFleetConfig config)
    : config_(std::move(config)),
      slots_(static_cast<std::size_t>(std::max(slots, 0))) {
  if (slots <= 0)
    throw std::invalid_argument("SpotFleet: need at least one slot");
  if (config_.trace.empty())
    throw std::invalid_argument("SpotFleet: empty price trace");
  if (!std::is_sorted(config_.trace.begin(), config_.trace.end(),
                      [](const SpotPricePoint& a, const SpotPricePoint& b) {
                        return a.time_h < b.time_h;
                      }))
    throw std::invalid_argument("SpotFleet: price trace must be sorted");
  if (config_.grace_window_h < 0.0 || config_.reacquire_delay_h < 0.0)
    throw std::invalid_argument("SpotFleet: negative window/delay");
}

double SpotFleet::price_at(double time_h) const {
  double price = config_.trace.front().price_usd;
  for (const auto& p : config_.trace) {
    if (p.time_h > time_h) break;
    price = p.price_usd;
  }
  return price;
}

Expected<std::vector<SpotEvent>> SpotFleet::advance(double to_h) {
  if (to_h < now_h_)
    return Status::invalid_argument("SpotFleet::advance: clock went backwards");
  std::vector<SpotEvent> events;

  // Applies every transition due at time t; repeats until quiescent so a
  // zero grace window can chain notice -> reclaim at the same instant.
  const auto apply_at = [&](double t) {
    const double price = price_at(t);
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        Slot& slot = slots_[i];
        switch (slot.state) {
          case SpotSlotState::kHeld:
            if (price > config_.bid_usd) {
              slot.state = SpotSlotState::kNoticed;
              slot.reclaim_at_h = t + config_.grace_window_h;
              events.push_back({t, static_cast<int>(i), slot.state});
              changed = true;
            }
            break;
          case SpotSlotState::kNoticed:
            // The notice is final: reclaim fires after the grace window
            // even when the price has recovered meanwhile.
            if (t >= slot.reclaim_at_h) {
              slot.state = SpotSlotState::kReclaimed;
              slot.reacquire_at_h = price <= config_.bid_usd
                                        ? t + config_.reacquire_delay_h
                                        : 0.0;
              ++preemptions_;
              events.push_back({t, static_cast<int>(i), slot.state});
              changed = true;
            }
            break;
          case SpotSlotState::kReclaimed:
            if (slot.reacquire_at_h == 0.0 && price <= config_.bid_usd) {
              slot.reacquire_at_h = t + config_.reacquire_delay_h;
            } else if (slot.reacquire_at_h > 0.0 && t >= slot.reacquire_at_h) {
              if (price <= config_.bid_usd) {
                slot.state = SpotSlotState::kHeld;
                slot.reacquire_at_h = 0.0;
                ++reacquisitions_;
                events.push_back({t, static_cast<int>(i), slot.state});
                changed = true;
              } else {
                slot.reacquire_at_h = 0.0;  // price spiked again: wait
              }
            }
            break;
        }
      }
    }
  };

  double cur = now_h_;
  apply_at(cur);
  while (cur < to_h) {
    double next = to_h;
    for (const auto& p : config_.trace)
      if (p.time_h > cur && p.time_h < next) next = p.time_h;
    for (const auto& slot : slots_) {
      if (slot.state == SpotSlotState::kNoticed && slot.reclaim_at_h > cur &&
          slot.reclaim_at_h < next)
        next = slot.reclaim_at_h;
      if (slot.state == SpotSlotState::kReclaimed &&
          slot.reacquire_at_h > cur && slot.reacquire_at_h < next)
        next = slot.reacquire_at_h;
    }
    cur = next;
    apply_at(cur);
  }
  now_h_ = to_h;
  return events;
}

SpotSlotState SpotFleet::slot_state(int slot) const {
  if (slot < 0 || slot >= slot_count())
    throw std::out_of_range("SpotFleet::slot_state: slot " +
                            std::to_string(slot) + " out of range");
  return slots_[static_cast<std::size_t>(slot)].state;
}

int SpotFleet::held_count() const {
  int n = 0;
  for (const auto& slot : slots_)
    if (slot.state == SpotSlotState::kHeld) ++n;
  return n;
}

std::vector<SpotPricePoint> synthetic_price_trace(double horizon_h,
                                                  double base_price,
                                                  double spike_price,
                                                  int spikes,
                                                  double spike_width_h) {
  if (horizon_h <= 0.0 || spikes < 0 || spike_width_h < 0.0)
    throw std::invalid_argument("synthetic_price_trace: bad shape");
  std::vector<SpotPricePoint> trace{{0.0, base_price}};
  for (int s = 0; s < spikes; ++s) {
    const double start =
        horizon_h * (static_cast<double>(s) + 0.5) / std::max(spikes, 1);
    trace.push_back({start, spike_price});
    trace.push_back({start + spike_width_h, base_price});
  }
  std::sort(trace.begin(), trace.end(),
            [](const SpotPricePoint& a, const SpotPricePoint& b) {
              return a.time_h < b.time_h;
            });
  return trace;
}

}  // namespace sagesim::cloud
