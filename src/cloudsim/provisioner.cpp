#include "cloudsim/provisioner.hpp"

#include <stdexcept>

namespace sagesim::cloud {

void Provisioner::advance_time(double hours) {
  if (hours < 0.0)
    throw std::invalid_argument("advance_time: hours must be >= 0");
  now_h_ += hours;
  if (idle_threshold_h_) reap_idle();
}

Vpc& Provisioner::create_vpc(const IamRole& role, const std::string& cidr) {
  const Decision d = role.evaluate(Action::kCreateVpc);
  if (!d.allowed) throw std::runtime_error(d.reason);
  auto id = "vpc-" + std::to_string(next_vpc_++);
  vpcs_.push_back(std::make_unique<Vpc>(id, Cidr::parse(cidr)));
  return *vpcs_.back();
}

Vpc& Provisioner::default_vpc() {
  if (vpcs_.empty()) {
    vpcs_.push_back(
        std::make_unique<Vpc>("vpc-default", Cidr::parse("10.0.0.0/16")));
    // A /17 default subnet: semester-long simulations launch thousands of
    // instances and addresses are never recycled.
    vpcs_.back()->create_subnet("10.0.0.0/17", "us-east-1a");
  }
  return *vpcs_.front();
}

std::string Provisioner::next_instance_id() {
  return "i-" + std::to_string(1000 + next_id_++);
}

std::vector<std::string> Provisioner::launch_or_throw(
    const IamRole& role, const LaunchRequest& request) {
  if (request.count == 0)
    throw std::invalid_argument("launch: count must be >= 1");
  if (request.spot && request.spot_hourly_usd <= 0.0)
    throw std::invalid_argument("launch: spot requests need spot_hourly_usd > 0");
  InstanceType type = catalog::by_name(request.type_name);
  if (request.spot) type.hourly_usd = request.spot_hourly_usd;

  const std::uint32_t requested_gpus = type.gpu_count * request.count;
  const std::string owner = role.name();
  const Decision d = role.evaluate(Action::kRunInstances, requested_gpus,
                                   running_count(owner));
  if (!d.allowed) throw std::runtime_error(d.reason);

  // Budget check: accrued + one hour of the new instances must fit.
  // Educate sessions are free and therefore exempt.
  if (auto it = budgets_.find(owner);
      it != budgets_.end() && !request.educate) {
    const double projected = accrued_cost(owner) +
                             type.hourly_usd * static_cast<double>(request.count);
    if (projected > it->second.limit_usd)
      throw std::runtime_error(
          owner + ": budget cap $" + std::to_string(it->second.limit_usd) +
          " would be exceeded (projected $" + std::to_string(projected) + ")");
  }

  // Resolve placement.
  Vpc& vpc = [&]() -> Vpc& {
    if (request.vpc_id.empty()) return default_vpc();
    for (auto& v : vpcs_)
      if (v->id() == request.vpc_id) return *v;
    throw std::invalid_argument("launch: unknown VPC " + request.vpc_id);
  }();
  if (vpc.subnets().empty())
    throw std::runtime_error("launch: VPC " + vpc.id() + " has no subnets");
  Subnet& subnet = request.subnet_id.empty() ? *vpc.subnets().front()
                                             : vpc.subnet(request.subnet_id);

  std::vector<std::string> ids;
  ids.reserve(request.count);
  for (std::uint32_t i = 0; i < request.count; ++i) {
    auto inst = std::make_unique<Instance>(
        next_instance_id(), type, owner, subnet.allocate_address(),
        subnet.id(), now_h_);
    if (!request.assessment.empty())
      inst->set_tag("Assessment", request.assessment);
    if (request.educate) inst->set_tag("Educate", "true");
    if (request.spot) inst->set_tag("Spot", "true");
    if (!request.lease_id.empty()) inst->set_tag("Lease", request.lease_id);
    inst->mark_running(now_h_);
    ids.push_back(inst->id());
    instances_.push_back(std::move(inst));
  }
  return ids;
}

Expected<std::vector<std::string>> Provisioner::try_launch(
    const IamRole& role, const LaunchRequest& request) {
  try {
    return launch_or_throw(role, request);
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument(e.what());
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    if (what.find("budget cap") != std::string::npos)
      return Status::error(ErrorCode::kResourceExhausted, what,
                           /*retryable=*/true);  // free budget, then retry
    return Status::failed_precondition(what);
  }
}

Instance& Provisioner::instance(const std::string& id) {
  for (auto& i : instances_)
    if (i->id() == id) return *i;
  throw std::invalid_argument("unknown instance " + id);
}

const Instance& Provisioner::instance(const std::string& id) const {
  for (const auto& i : instances_)
    if (i->id() == id) return *i;
  throw std::invalid_argument("unknown instance " + id);
}

void Provisioner::write_usage_record(const Instance& inst) {
  UsageRecord rec;
  rec.instance_id = inst.id();
  rec.instance_type = inst.type().name;
  rec.owner = inst.owner();
  if (auto it = inst.tags().find("Assessment"); it != inst.tags().end())
    rec.assessment = it->second;
  rec.gpu_count = inst.type().gpu_count;
  rec.hours = inst.billable_hours(now_h_);
  rec.educate = inst.tags().contains("Educate");
  rec.spot = inst.tags().contains("Spot");
  if (auto it = inst.tags().find("Lease"); it != inst.tags().end())
    rec.lease_id = it->second;
  rec.cost_usd = rec.educate ? 0.0 : inst.accrued_cost(now_h_);
  ledger_.push_back(std::move(rec));
}

void Provisioner::terminate(const IamRole& role,
                            const std::string& instance_id) {
  Instance& inst = instance(instance_id);
  if (inst.owner() != role.name() && role.name() != "instructor") {
    throw std::runtime_error(role.name() + ": cannot terminate " +
                             instance_id + " owned by " + inst.owner());
  }
  const Decision d = role.evaluate(Action::kTerminateInstances);
  if (!d.allowed) throw std::runtime_error(d.reason);
  inst.mark_terminated(now_h_);
  write_usage_record(inst);
}

void Provisioner::touch(const std::string& instance_id) {
  instance(instance_id).touch(now_h_);
}

std::vector<const Instance*> Provisioner::running_instances() const {
  std::vector<const Instance*> out;
  for (const auto& i : instances_)
    if (i->state() == InstanceState::kRunning) out.push_back(i.get());
  return out;
}

std::uint32_t Provisioner::running_count(const std::string& owner) const {
  std::uint32_t n = 0;
  for (const auto& i : instances_)
    if (i->state() == InstanceState::kRunning && i->owner() == owner) ++n;
  return n;
}

void Provisioner::set_budget_cap(const std::string& owner, BudgetCap cap) {
  budgets_[owner] = cap;
}

double Provisioner::accrued_cost(const std::string& owner) const {
  double total = 0.0;
  for (const auto& rec : ledger_)
    if (rec.owner == owner) total += rec.cost_usd;
  for (const auto& i : instances_)
    if (i->state() == InstanceState::kRunning && i->owner() == owner &&
        !i->tags().contains("Educate"))
      total += i->accrued_cost(now_h_);
  return total;
}

void Provisioner::enable_idle_reaper(double idle_threshold_h) {
  if (idle_threshold_h <= 0.0)
    throw std::invalid_argument("enable_idle_reaper: threshold must be > 0");
  idle_threshold_h_ = idle_threshold_h;
}

void Provisioner::reap_idle() {
  for (auto& i : instances_) {
    if (i->state() == InstanceState::kRunning &&
        i->idle_hours(now_h_) >= *idle_threshold_h_) {
      // Bill only through the moment the instance went idle past threshold:
      // the reaper fires at (last activity + threshold), not at observation.
      const double reap_time = i->last_activity_h() + *idle_threshold_h_;
      i->mark_terminated(reap_time < now_h_ ? reap_time : now_h_);
      // Temporarily price with the reap timestamp.
      UsageRecord rec;
      rec.instance_id = i->id();
      rec.instance_type = i->type().name;
      rec.owner = i->owner();
      if (auto it = i->tags().find("Assessment"); it != i->tags().end())
        rec.assessment = it->second;
      rec.gpu_count = i->type().gpu_count;
      rec.hours = i->billable_hours(now_h_);
      rec.educate = i->tags().contains("Educate");
      rec.spot = i->tags().contains("Spot");
      if (auto it = i->tags().find("Lease"); it != i->tags().end())
        rec.lease_id = it->second;
      rec.cost_usd = rec.educate ? 0.0 : i->accrued_cost(now_h_);
      ledger_.push_back(std::move(rec));
      ++reaped_;
    }
  }
}

}  // namespace sagesim::cloud
