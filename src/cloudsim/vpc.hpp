// Minimal VPC/subnet model — enough networking for the course's multi-GPU
// labs, where students must place cluster nodes in the same VPC with
// correct subnet addresses (the exact pain point §IV.C / Fig. 4b describes).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace sagesim::cloud {

/// An IPv4 CIDR block, e.g. 10.0.0.0/16.
class Cidr {
 public:
  /// Parses "a.b.c.d/prefix".  Throws std::invalid_argument on malformed
  /// input or host bits set below the prefix.
  static Cidr parse(const std::string& text);

  Cidr(std::uint32_t network, int prefix_len);

  std::uint32_t network() const { return network_; }
  int prefix_len() const { return prefix_len_; }
  std::uint32_t netmask() const;
  std::uint64_t address_count() const;

  bool contains(std::uint32_t addr) const;
  bool contains(const Cidr& other) const;
  /// True when the two blocks share any address.
  bool overlaps(const Cidr& other) const;

  /// Address at offset @p index from the network base; throws
  /// std::out_of_range past the block.
  std::uint32_t address_at(std::uint64_t index) const;

  std::string to_string() const;

 private:
  std::uint32_t network_;
  int prefix_len_;
};

/// Renders a 32-bit address as dotted quad.
std::string ip_to_string(std::uint32_t addr);

/// Parses a dotted quad; throws std::invalid_argument on malformed input.
std::uint32_t parse_ip(const std::string& text);

/// A subnet inside a VPC.  AWS reserves the first four and the last address
/// of every subnet; allocation starts at offset 4.
class Subnet {
 public:
  Subnet(std::string id, Cidr cidr, std::string az);

  const std::string& id() const { return id_; }
  const Cidr& cidr() const { return cidr_; }
  const std::string& availability_zone() const { return az_; }

  /// Number of assignable addresses remaining.
  std::uint64_t free_addresses() const;

  /// Allocates the next free address; throws std::runtime_error when
  /// exhausted.
  std::uint32_t allocate_address();

 private:
  std::string id_;
  Cidr cidr_;
  std::string az_;
  std::uint64_t next_offset_{4};  // AWS reserves .0-.3; broadcast reserved too
};

/// A VPC: a CIDR block plus non-overlapping subnets.
class Vpc {
 public:
  Vpc(std::string id, Cidr cidr);

  const std::string& id() const { return id_; }
  const Cidr& cidr() const { return cidr_; }

  /// Creates a subnet; throws std::invalid_argument when @p cidr is not
  /// inside the VPC block or overlaps an existing subnet.
  Subnet& create_subnet(const std::string& cidr, const std::string& az);

  Subnet& subnet(const std::string& id);
  const std::vector<std::unique_ptr<Subnet>>& subnets() const {
    return subnets_;
  }

  /// True when two addresses can reach each other inside this VPC (both
  /// fall inside the VPC block).
  bool same_network(std::uint32_t a, std::uint32_t b) const;

 private:
  std::string id_;
  Cidr cidr_;
  std::vector<std::unique_ptr<Subnet>> subnets_;
  int next_subnet_{0};
};

}  // namespace sagesim::cloud
