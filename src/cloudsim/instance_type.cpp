#include "cloudsim/instance_type.hpp"

#include <stdexcept>

namespace sagesim::cloud::catalog {

const std::vector<InstanceType>& all() {
  static const std::vector<InstanceType> kTypes = {
      {"g4dn.xlarge", 4, 16.0, 1, "t4", 0.526},
      {"g4dn.2xlarge", 8, 32.0, 1, "t4", 0.752},
      {"g5.xlarge", 4, 16.0, 1, "a10g", 1.006},
      {"g5.2xlarge", 8, 32.0, 1, "a10g", 1.212},
      {"p3.2xlarge", 8, 61.0, 1, "v100", 3.060},
      {"g4dn.12xlarge", 48, 192.0, 4, "t4", 3.912},
      {"g5.12xlarge", 48, 192.0, 4, "a10g", 5.672},
      {"p3.8xlarge", 32, 244.0, 4, "v100", 12.240},
  };
  return kTypes;
}

const InstanceType& by_name(const std::string& name) {
  for (const auto& t : all())
    if (t.name == name) return t;
  throw std::invalid_argument("unknown instance type: " + name);
}

std::vector<InstanceType> single_gpu() {
  std::vector<InstanceType> out;
  for (const auto& t : all())
    if (t.gpu_count == 1) out.push_back(t);
  return out;
}

std::vector<InstanceType> multi_gpu() {
  std::vector<InstanceType> out;
  for (const auto& t : all())
    if (t.gpu_count > 1) out.push_back(t);
  return out;
}

std::vector<std::pair<InstanceType, double>> course_single_gpu_mix() {
  // 42% budget g4dn, 36% g5, 22% p3 — blended rate ~$1.26/hr, matching the
  // ~$1.262/hr average the paper reports for single-GPU sessions.
  return {
      {by_name("g4dn.xlarge"), 0.42},
      {by_name("g5.xlarge"), 0.36},
      {by_name("p3.2xlarge"), 0.22},
  };
}

double course_single_gpu_rate() {
  double rate = 0.0;
  for (const auto& [type, p] : course_single_gpu_mix())
    rate += p * type.hourly_usd;
  return rate;
}

double course_multi_gpu_rate() {
  // Multi-GPU sessions: a three-node cluster of budget single-GPU instances
  // (half g4dn.xlarge, half g5.xlarge) inside one VPC — "up to 3" GPUs.
  return 0.5 * 3.0 * by_name("g4dn.xlarge").hourly_usd +
         0.5 * 3.0 * by_name("g5.xlarge").hourly_usd;
}

}  // namespace sagesim::cloud::catalog
