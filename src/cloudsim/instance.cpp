#include "cloudsim/instance.hpp"

#include <stdexcept>

namespace sagesim::cloud {

const char* to_string(InstanceState s) {
  switch (s) {
    case InstanceState::kPending: return "pending";
    case InstanceState::kRunning: return "running";
    case InstanceState::kStopping: return "stopping";
    case InstanceState::kTerminated: return "terminated";
  }
  return "?";
}

Instance::Instance(std::string id, InstanceType type, std::string owner,
                   std::uint32_t private_ip, std::string subnet_id,
                   double launched_at_h)
    : id_(std::move(id)),
      type_(std::move(type)),
      owner_(std::move(owner)),
      private_ip_(private_ip),
      subnet_id_(std::move(subnet_id)),
      launched_at_h_(launched_at_h),
      last_activity_h_(launched_at_h) {}

void Instance::set_tag(const std::string& key, const std::string& value) {
  tags_[key] = value;
}

void Instance::mark_running(double now_h) {
  if (state_ != InstanceState::kPending)
    throw std::logic_error("Instance " + id_ + ": cannot run from state " +
                           to_string(state_));
  state_ = InstanceState::kRunning;
  last_activity_h_ = now_h;
}

void Instance::begin_stopping(double now_h) {
  if (state_ != InstanceState::kRunning)
    throw std::logic_error("Instance " + id_ + ": cannot stop from state " +
                           to_string(state_));
  state_ = InstanceState::kStopping;
  last_activity_h_ = now_h;
}

void Instance::mark_terminated(double now_h) {
  if (state_ == InstanceState::kTerminated)
    throw std::logic_error("Instance " + id_ + ": already terminated");
  state_ = InstanceState::kTerminated;
  terminated_at_h_ = now_h;
}

void Instance::touch(double now_h) {
  if (state_ != InstanceState::kRunning)
    throw std::logic_error("Instance " + id_ + ": touch while " +
                           to_string(state_));
  last_activity_h_ = now_h;
}

double Instance::idle_hours(double now_h) const {
  if (state_ != InstanceState::kRunning) return 0.0;
  return now_h > last_activity_h_ ? now_h - last_activity_h_ : 0.0;
}

double Instance::billable_hours(double now_h) const {
  const double end =
      state_ == InstanceState::kTerminated ? terminated_at_h_ : now_h;
  return end > launched_at_h_ ? end - launched_at_h_ : 0.0;
}

}  // namespace sagesim::cloud
