// IAM-lite: per-student roles with action policies and resource caps.
// Mirrors §III.A — each student gets a dedicated role that can launch and
// terminate instances, with usage capped per assessment.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sagesim::cloud {

/// Actions the simulated control plane understands.
enum class Action : std::uint8_t {
  kRunInstances,
  kTerminateInstances,
  kDescribeInstances,
  kCreateVpc,
  kCreateSubnet,
  kCreateSageMakerNotebook,
};

const char* to_string(Action a);

/// Allow/deny outcome with a reason for denials.
struct Decision {
  bool allowed{false};
  std::string reason;

  static Decision allow() { return {true, ""}; }
  static Decision deny(std::string why) { return {false, std::move(why)}; }
};

/// One policy statement: a set of allowed actions plus optional caps.
struct PolicyStatement {
  std::vector<Action> actions;
  std::optional<std::uint32_t> max_gpus_per_request;   ///< e.g. 3 for students
  std::optional<std::uint32_t> max_running_instances;  ///< concurrent cap
};

class IamRole {
 public:
  IamRole(std::string name, std::vector<PolicyStatement> statements)
      : name_(std::move(name)), statements_(std::move(statements)) {}

  const std::string& name() const { return name_; }

  /// Evaluates @p action.  @p requested_gpus and @p running are the request
  /// context used against caps.  Default-deny: an action not named by any
  /// statement is denied.
  Decision evaluate(Action action, std::uint32_t requested_gpus = 0,
                    std::uint32_t running = 0) const;

 private:
  std::string name_;
  std::vector<PolicyStatement> statements_;
};

/// The course's standard student role: run/terminate/describe, up to 3 GPUs
/// per request, at most 3 concurrent instances (§III.A.1: clusters of up to
/// three nodes).
IamRole student_role(const std::string& student_id);

/// Instructor role: everything, uncapped.
IamRole instructor_role();

}  // namespace sagesim::cloud
